#!/bin/sh
# Full verification: build, unit + property tests, a smoke table run,
# and a fault-injection smoke run (README "Robustness & fallback
# semantics"). Exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

echo "== smoke: table 2, clean =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10

echo "== smoke: table 2, 20% fault injection =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --fault-rate 0.2 --log-level error

echo "== smoke: table 2, 2 worker domains =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2

echo "== smoke: table 2, 2 worker domains + 5% fault injection =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --jobs 2 --fault-rate 0.05 --log-level error

echo "== smoke: table 2, incremental scoring disabled =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --no-incremental

echo "== smoke: --jobs 2 table output matches sequential =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  > "$tmpdir/seq.out" 2>/dev/null
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2 \
  > "$tmpdir/jobs2.out" 2>/dev/null
diff -u "$tmpdir/seq.out" "$tmpdir/jobs2.out"

echo "== smoke: --no-incremental output matches incremental, jobs 1 and 2 =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --no-incremental > "$tmpdir/noinc.out" 2>/dev/null
diff -u "$tmpdir/seq.out" "$tmpdir/noinc.out"
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2 \
  --no-incremental > "$tmpdir/noinc2.out" 2>/dev/null
diff -u "$tmpdir/jobs2.out" "$tmpdir/noinc2.out"

echo "== smoke: dense backend output matches sparse, jobs 1 and 2 =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --matrix-backend dense > "$tmpdir/dense.out" 2>/dev/null
diff -u "$tmpdir/seq.out" "$tmpdir/dense.out"
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2 \
  --matrix-backend dense > "$tmpdir/dense2.out" 2>/dev/null
diff -u "$tmpdir/jobs2.out" "$tmpdir/dense2.out"

echo "== smoke: dense backend matches sparse under 20% fault injection =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --fault-rate 0.2 --log-level quiet > "$tmpdir/fault_sparse.out" 2>/dev/null
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --fault-rate 0.2 --log-level quiet --matrix-backend dense \
  > "$tmpdir/fault_dense.out" 2>/dev/null
diff -u "$tmpdir/fault_sparse.out" "$tmpdir/fault_dense.out"

echo "== incremental scoring cuts full factorizations at least 2x =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --metrics-json "$tmpdir/m_on.json" > /dev/null 2>&1
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --no-incremental --metrics-json "$tmpdir/m_off.json" > /dev/null 2>&1
f_on=$(sed -n 's/.*"sparse.factorizations": \([0-9]*\).*/\1/p' "$tmpdir/m_on.json")
f_off=$(sed -n 's/.*"sparse.factorizations": \([0-9]*\).*/\1/p' "$tmpdir/m_off.json")
echo "sparse.factorizations: incremental=$f_on, plain=$f_off"
[ -n "$f_on" ] && [ -n "$f_off" ] && [ "$f_off" -ge $((2 * f_on)) ]

echo "== sparse backend replaces >=90% of dense LU factorizations =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --matrix-backend dense --metrics-json "$tmpdir/m_dense.json" > /dev/null 2>&1
sparse_f=$(sed -n 's/.*"sparse.factorizations": \([0-9]*\).*/\1/p' "$tmpdir/m_on.json")
lu_resid=$(sed -n 's/.*"lu.factorizations": \([0-9]*\).*/\1/p' "$tmpdir/m_on.json")
dense_lu=$(sed -n 's/.*"lu.factorizations": \([0-9]*\).*/\1/p' "$tmpdir/m_dense.json")
echo "sparse run: sparse=$sparse_f dense-residual=$lu_resid; dense run: lu=$dense_lu"
[ -n "$sparse_f" ] && [ -n "$dense_lu" ] && [ $((10 * sparse_f)) -ge $((9 * dense_lu)) ]
[ -n "$lu_resid" ] && [ $((10 * lu_resid)) -le "$dense_lu" ]

echo "== committed bench baseline has a valid nontree-bench-v1 schema =="
dune exec bin/obs_check.exe -- BENCH_nontree.json

echo "== smoke: observability manifest is valid, stdout unchanged =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2 \
  --metrics-json "$tmpdir/obs.json" > "$tmpdir/obs.out" 2>/dev/null
dune exec bin/obs_check.exe -- "$tmpdir/obs.json"
diff -u "$tmpdir/seq.out" "$tmpdir/obs.out"

echo "all checks passed"
