#!/bin/sh
# Full verification: build, unit + property tests, a smoke table run,
# and a fault-injection smoke run (README "Robustness & fallback
# semantics"). Exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

echo "== smoke: table 2, clean =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10

echo "== smoke: table 2, 20% fault injection =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --fault-rate 0.2 --log-level error

echo "== smoke: table 2, 2 worker domains =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2

echo "== smoke: table 2, 2 worker domains + 5% fault injection =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --jobs 2 --fault-rate 0.05 --log-level error

echo "== smoke: table 2, incremental scoring disabled =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --no-incremental

echo "== smoke: --jobs 2 table output matches sequential =="
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  > "$tmpdir/seq.out" 2>/dev/null
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2 \
  > "$tmpdir/jobs2.out" 2>/dev/null
diff -u "$tmpdir/seq.out" "$tmpdir/jobs2.out"

echo "== smoke: --no-incremental output matches incremental, jobs 1 and 2 =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --no-incremental > "$tmpdir/noinc.out" 2>/dev/null
diff -u "$tmpdir/seq.out" "$tmpdir/noinc.out"
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2 \
  --no-incremental > "$tmpdir/noinc2.out" 2>/dev/null
diff -u "$tmpdir/jobs2.out" "$tmpdir/noinc2.out"

echo "== incremental scoring cuts LU factorizations at least 2x =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --metrics-json "$tmpdir/m_on.json" > /dev/null 2>&1
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --no-incremental --metrics-json "$tmpdir/m_off.json" > /dev/null 2>&1
lu_on=$(sed -n 's/.*"lu.factorizations": \([0-9]*\).*/\1/p' "$tmpdir/m_on.json")
lu_off=$(sed -n 's/.*"lu.factorizations": \([0-9]*\).*/\1/p' "$tmpdir/m_off.json")
echo "lu.factorizations: incremental=$lu_on, plain=$lu_off"
[ -n "$lu_on" ] && [ -n "$lu_off" ] && [ "$lu_off" -ge $((2 * lu_on)) ]

echo "== smoke: observability manifest is valid, stdout unchanged =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 --jobs 2 \
  --metrics-json "$tmpdir/obs.json" > "$tmpdir/obs.out" 2>/dev/null
dune exec bin/obs_check.exe -- "$tmpdir/obs.json"
diff -u "$tmpdir/seq.out" "$tmpdir/obs.out"

echo "all checks passed"
