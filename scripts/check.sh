#!/bin/sh
# Full verification: build, unit + property tests, a smoke table run,
# and a fault-injection smoke run (README "Robustness & fallback
# semantics"). Exits nonzero on the first failure.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

echo "== smoke: table 2, clean =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10

echo "== smoke: table 2, 20% fault injection =="
dune exec bin/tables.exe -- --table 2 --trials 2 --sizes 5,10 \
  --fault-rate 0.2 --log-level error

echo "all checks passed"
