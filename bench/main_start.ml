(* Wall-clock zero for progress reporting. *)
let t0 = Unix.gettimeofday ()
