(* Benchmark harness: regenerates every table and figure of the paper
   (McCoy & Robins, "Non-Tree Routing", DATE 1994), the Section 5
   extension experiments, and a Bechamel timing section for the core
   algorithm kernels.

     dune exec bench/main.exe                 # everything, paper scale
     dune exec bench/main.exe -- --quick      # reduced scale smoke run
     dune exec bench/main.exe -- --only 2,6   # just Tables 2 and 6
     dune exec bench/main.exe -- --trials 10 --sizes 5,10

   Normalised numbers are expected to match the paper in *shape* (who
   wins, how gains scale with net size), not in absolute nanoseconds:
   the evaluation substrate here is this repository's own MNA transient
   engine rather than Berkeley SPICE2 on 1993 hardware. *)

(* Wall-clock zero for progress reporting. *)
let start_t0 = Unix.gettimeofday ()

let progress fmt =
  Printf.ksprintf
    (fun s ->
      let t = Unix.gettimeofday () in
      Printf.eprintf "[%8.1fs] %s\n%!" (t -. start_t0) s)
    fmt

(* Sections ------------------------------------------------------------- *)

let run_table1 config = print_string (Harness.Runs.table1 config)

let run_table2 config =
  progress "Table 2: LDRG vs MST (SPICE oracle, the expensive one)...";
  let rows = Harness.Runs.table2 config in
  print_string
    (Harness.Table.render ~title:"Table 2: LDRG Algorithm Statistics"
       ~baseline:"the MST routing" rows)

let run_table3 config =
  progress "Table 3: SLDRG vs Steiner tree...";
  let rows = Harness.Runs.table3 config in
  print_string
    (Harness.Table.render ~title:"Table 3: SLDRG Algorithm Statistics"
       ~baseline:"the Iterated-1-Steiner tree" rows)

let run_table4 config =
  progress "Table 4: H1 heuristic...";
  let rows = Harness.Runs.table4 config in
  print_string
    (Harness.Table.render ~title:"Table 4: H1 Heuristic Statistics"
       ~baseline:"the MST routing" rows)

let run_table5 config =
  progress "Table 5: H2 and H3 heuristics...";
  let h2, h3 = Harness.Runs.table5 config in
  print_string
    (Harness.Table.render ~title:"Table 5a: H2 Heuristic Statistics"
       ~baseline:"the MST routing" h2);
  print_newline ();
  print_string
    (Harness.Table.render ~title:"Table 5b: H3 Heuristic Statistics"
       ~baseline:"the MST routing" h3)

let run_table6 config =
  progress "Table 6: ERT vs MST...";
  let rows = Harness.Runs.table6 config in
  print_string
    (Harness.Table.render ~title:"Table 6: Elmore Routing Tree Statistics"
       ~baseline:"the MST routing" rows)

let run_table7 config =
  progress "Table 7: ERT-seeded LDRG vs ERT...";
  let rows = Harness.Runs.table7 config in
  print_string
    (Harness.Table.render
       ~title:"Table 7: ERT-Based LDRG Algorithm Statistics"
       ~baseline:"the ERT routing" rows)

let run_figures config ~svg_dir =
  progress "Figures 1, 2, 3 and 5...";
  (try Unix.mkdir svg_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun fig ->
      let f = fig config in
      print_string (Harness.Runs.render_figure f);
      let paths = Harness.Runs.save_figure_svgs ~dir:svg_dir f in
      List.iter (fun p -> Printf.printf "  svg: %s\n" p) paths;
      print_newline ())
    [ Harness.Runs.figure1; Harness.Runs.figure2; Harness.Runs.figure3;
      Harness.Runs.figure5 ]

let run_extensions config =
  progress "Extension experiments (Section 5)...";
  print_string (Harness.Runs.ext_csorg config);
  print_newline ();
  print_string (Harness.Runs.ext_wsorg config);
  print_newline ();
  print_string (Harness.Runs.ext_oracle config);
  print_newline ();
  print_string (Harness.Runs.ext_rlc config);
  print_newline ();
  print_string (Harness.Runs.ext_trees config);
  print_newline ();
  print_string (Harness.Runs.ext_budget config);
  print_newline ();
  print_string (Harness.Runs.ext_prune config);
  print_newline ();
  print_string (Harness.Runs.ext_sensitivity config)

(* Bechamel timing of the algorithm kernels ------------------------------ *)

let run_bechamel () =
  progress "Bechamel kernel timings...";
  let open Bechamel in
  let tech = Circuit.Technology.table1 in
  let net pins =
    let g = Rng.create 2025 in
    Geom.Netgen.uniform g ~region:(Geom.Rect.square 10_000.0) ~pins
  in
  let net30 = net 30 and net10 = net 10 in
  let mst30 = Routing.mst_of_net net30 in
  let mst10 = Routing.mst_of_net net10 in
  let spice_model = Delay.Model.Spice Delay.Model.fast_spice in
  let tests =
    Test.make_grouped ~name:"kernels"
      [ Test.make ~name:"mst-30pin"
          (Staged.stage (fun () -> ignore (Routing.mst_of_net net30)));
        Test.make ~name:"elmore-30pin"
          (Staged.stage (fun () -> ignore (Delay.Elmore.max_delay ~tech mst30)));
        Test.make ~name:"first-moment-30pin"
          (Staged.stage (fun () ->
               ignore (Delay.Moments.max_delay ~tech mst30)));
        Test.make ~name:"spice-eval-10pin"
          (Staged.stage (fun () ->
               ignore (Delay.Model.max_delay spice_model ~tech mst10)));
        Test.make ~name:"ert-10pin"
          (Staged.stage (fun () -> ignore (Ert.construct ~tech net10)));
        Test.make ~name:"i1steiner-10pin"
          (Staged.stage (fun () ->
               ignore (Steiner.Iterated_1steiner.construct net10)));
        Test.make ~name:"ldrg-moment-10pin"
          (Staged.stage (fun () ->
               ignore
                 (Nontree.Ldrg.run ~model:Delay.Model.First_moment ~tech mst10)))
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "Kernel timings (ns per run, OLS fit):\n";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> Printf.printf "  %-28s %12.0f ns\n" name ns
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    results

(* Dense-vs-sparse backend comparison ------------------------------------ *)

let counter_value name = Obs.Counter.value (Obs.Counter.make name)

type backend_cmp = {
  cmp_size : int;
  cmp_nets : int;
  dense_wall_s : float;
  sparse_wall_s : float;
  dense_factorizations : int;
  sparse_factorizations : int;
}

(* Head-to-head wall clock of the two matrix backends on the heaviest
   workload the bench knows: full-profile SPICE delay evaluation at the
   largest net size. Direct [Delay.Model.max_delay] calls, so neither
   pass can feed the other through the oracle memo cache. *)
let run_backend_compare ~seed ~size =
  progress "Backend comparison: dense vs sparse SPICE eval, %d-pin nets..."
    size;
  let tech = Circuit.Technology.table1 in
  let nets = 4 in
  let routings =
    Array.init nets (fun i ->
        let g = Rng.create (seed + 0xBAC0 + i) in
        Routing.mst_of_net
          (Geom.Netgen.uniform g ~region:(Geom.Rect.square 10_000.0)
             ~pins:size))
  in
  let model = Delay.Model.Spice Delay.Model.default_spice in
  let time kind counter =
    let prev = Numeric.Backend.kind () in
    Numeric.Backend.set_kind kind;
    let c0 = counter_value counter in
    let t0 = Unix.gettimeofday () in
    Array.iter (fun r -> ignore (Delay.Model.max_delay model ~tech r)) routings;
    let wall = Unix.gettimeofday () -. t0 in
    Numeric.Backend.set_kind prev;
    (wall, counter_value counter - c0)
  in
  let dense_wall_s, dense_factorizations =
    time Numeric.Backend.Dense "lu.factorizations"
  in
  let sparse_wall_s, sparse_factorizations =
    time Numeric.Backend.Sparse "sparse.factorizations"
  in
  progress "  dense  %.2fs (%d LU factorizations)" dense_wall_s
    dense_factorizations;
  progress "  sparse %.2fs (%d sparse factorizations), speedup %.2fx"
    sparse_wall_s sparse_factorizations
    (dense_wall_s /. sparse_wall_s);
  { cmp_size = size; cmp_nets = nets; dense_wall_s; sparse_wall_s;
    dense_factorizations; sparse_factorizations }

(* Per-section accounting -------------------------------------------------- *)

(* What BENCH_nontree.json records for each section that ran: wall time,
   how many robust-oracle evaluations it issued, and how the memo cache
   fared. Counter *deltas*, so sections are independent. *)
type section_stats = {
  name : string;
  wall_s : float;
  oracle_calls : int;
  cache_hits : int;
  cache_misses : int;
}

let hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int total

(* The incremental tallies are snapshotted before the backend
   comparison runs, so its extra factorisations don't pollute them. *)
type run_counters = {
  rank1_updates : int;
  inc_hits : int;
  inc_fallbacks : int;
  lu_factorizations : int;
  sparse_factorizations_total : int;
}

let snapshot_counters () =
  { rank1_updates = counter_value "lu.rank1_updates";
    inc_hits = counter_value "oracle.incremental_hits";
    inc_fallbacks = counter_value "oracle.incremental_fallbacks";
    lu_factorizations = counter_value "lu.factorizations";
    sparse_factorizations_total = counter_value "sparse.factorizations" }

let json_of_stats ~jobs ~cache_enabled ~incremental_enabled ~matrix_backend
    ~seed ~trials ~sizes ~total_wall_s ~counters ~backend_cmp sections =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"nontree-bench-v1\",\n";
  Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
  Printf.bprintf buf "  \"cache_enabled\": %b,\n" cache_enabled;
  Printf.bprintf buf "  \"matrix_backend\": %S,\n" matrix_backend;
  Printf.bprintf buf "  \"seed\": %d,\n" seed;
  Printf.bprintf buf "  \"trials\": %d,\n" trials;
  Printf.bprintf buf "  \"sizes\": [%s],\n"
    (String.concat ", " (List.map string_of_int sizes));
  Printf.bprintf buf "  \"total_wall_s\": %.3f,\n" total_wall_s;
  (* Run-level incremental-scoring tallies: how many Woodbury updates
     were built, how many candidate evaluations they served, how often
     the robust path had to take over, and the full factorization count
     they are meant to suppress. *)
  Printf.bprintf buf "  \"incremental\": {\n";
  Printf.bprintf buf "    \"enabled\": %b,\n" incremental_enabled;
  Printf.bprintf buf "    \"rank1_updates\": %d,\n" counters.rank1_updates;
  Printf.bprintf buf "    \"hits\": %d,\n" counters.inc_hits;
  Printf.bprintf buf "    \"fallbacks\": %d,\n" counters.inc_fallbacks;
  Printf.bprintf buf "    \"lu_factorizations\": %d,\n"
    counters.lu_factorizations;
  Printf.bprintf buf "    \"sparse_factorizations\": %d\n"
    counters.sparse_factorizations_total;
  Buffer.add_string buf "  },\n";
  (match backend_cmp with
  | None -> ()
  | Some c ->
      Printf.bprintf buf "  \"backend_comparison\": {\n";
      Printf.bprintf buf "    \"net_size\": %d,\n" c.cmp_size;
      Printf.bprintf buf "    \"nets\": %d,\n" c.cmp_nets;
      Printf.bprintf buf "    \"model\": \"spice-default\",\n";
      Printf.bprintf buf "    \"dense_wall_s\": %.3f,\n" c.dense_wall_s;
      Printf.bprintf buf "    \"sparse_wall_s\": %.3f,\n" c.sparse_wall_s;
      Printf.bprintf buf "    \"speedup\": %.2f,\n"
        (if c.sparse_wall_s > 0.0 then c.dense_wall_s /. c.sparse_wall_s
         else 0.0);
      Printf.bprintf buf "    \"dense_lu_factorizations\": %d,\n"
        c.dense_factorizations;
      Printf.bprintf buf "    \"sparse_factorizations\": %d\n"
        c.sparse_factorizations;
      Buffer.add_string buf "  },\n");
  Buffer.add_string buf "  \"sections\": [\n";
  List.iteri
    (fun i s ->
      Printf.bprintf buf
        "    { \"name\": %S, \"wall_s\": %.3f, \"oracle_calls\": %d, \
         \"cache_hits\": %d, \"cache_misses\": %d, \"cache_hit_rate\": %.4f \
         }%s\n"
        s.name s.wall_s s.oracle_calls s.cache_hits s.cache_misses
        (hit_rate s)
        (if i = List.length sections - 1 then "" else ","))
    sections;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* CLI -------------------------------------------------------------------- *)

let () =
  let trials = ref 50 in
  let sizes = ref "5,10,20,30" in
  let seed = ref 1994 in
  let only = ref "" in
  let quick = ref false in
  let accurate = ref false in
  let svg_dir = ref "figures" in
  let jobs = ref 1 in
  let no_cache = ref false in
  let no_incremental = ref false in
  let bench_json = ref "BENCH_nontree.json" in
  let metrics_json = ref "" in
  let matrix_backend = ref "sparse" in
  let spec =
    [ ("--trials", Arg.Set_int trials, "N  trials per net size (default 50)");
      ("--sizes", Arg.Set_string sizes, "CSV  net sizes (default 5,10,20,30)");
      ("--seed", Arg.Set_int seed, "N  experiment seed (default 1994)");
      ( "--only",
        Arg.Set_string only,
        "LIST  subset to run, e.g. 2,3,figures,ext,bechamel" );
      ("--quick", Arg.Set quick, "  reduced scale (12 trials, sizes 5,10,20)");
      ( "--accurate",
        Arg.Set accurate,
        "  evaluate with the accurate SPICE profile" );
      ("--svg-dir", Arg.Set_string svg_dir, "DIR  figure output (default figures)");
      ( "--jobs",
        Arg.Set_int jobs,
        "N  worker domains; table contents are identical for any value \
         (default 1)" );
      ("--no-cache", Arg.Set no_cache, "  disable the oracle memo cache");
      ( "--no-incremental",
        Arg.Set no_incremental,
        "  disable incremental (Woodbury) candidate scoring" );
      ( "--bench-json",
        Arg.Set_string bench_json,
        "PATH  machine-readable per-section stats (default \
         BENCH_nontree.json; empty string disables)" );
      ( "--matrix-backend",
        Arg.Set_string matrix_backend,
        "KIND  sparse or dense MNA factorisations (default sparse); either \
         prints the same bytes" );
      ( "--metrics-json",
        Arg.Set_string metrics_json,
        "PATH  nontree-obs-v1 run manifest (counters, histograms, trace \
         spans; default off)" )
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "nontree benchmark harness";
  if !quick then begin
    trials := 12;
    sizes := "5,10,20"
  end;
  let size_list =
    String.split_on_char ',' !sizes
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> List.map int_of_string
  in
  let eval_model =
    if !accurate then Delay.Model.Spice Delay.Model.accurate_spice
    else Delay.Model.Spice Delay.Model.fast_spice
  in
  if !jobs < 1 then begin
    prerr_endline "bench: --jobs must be >= 1";
    exit 2
  end;
  (match Numeric.Backend.kind_of_string !matrix_backend with
  | Some k -> Numeric.Backend.set_kind k
  | None ->
      prerr_endline "bench: --matrix-backend must be sparse or dense";
      exit 2);
  let config =
    { Nontree.Experiment.default with
      trials = !trials;
      sizes = size_list;
      seed = !seed;
      eval_model;
      jobs = !jobs }
  in
  (* The bench always records spans: per-section wall time below comes
     from the same span log the manifest serialises, so BENCH_nontree.json
     and --metrics-json report from one source of truth. *)
  Obs.set_enabled true;
  Nontree.Oracle.Cache.reset ();
  Nontree.Oracle.Cache.set_enabled (not !no_cache);
  Nontree.Incremental.set_enabled (not !no_incremental);
  let wanted =
    if !only = "" then
      [ "1"; "2"; "3"; "4"; "5"; "6"; "7"; "figures"; "ext"; "bechamel" ]
    else String.split_on_char ',' !only |> List.map String.trim
  in
  let stats = ref [] in
  let section name f =
    if List.mem name wanted then begin
      (* Wall time comes from the "bench.<name>" span; everything else is
         a counter delta, so the run's global tallies survive intact for
         the manifest. *)
      let e0 = Delay.Robust.evaluation_count () in
      let c0 = Nontree.Oracle.Cache.stats () in
      Obs.span ("bench." ^ name) f;
      let wall_s =
        match Obs.Span.find ("bench." ^ name) with
        | Some sp -> sp.Obs.Span.dur_s
        | None -> 0.0
      in
      let c1 = Nontree.Oracle.Cache.stats () in
      let s =
        { name;
          wall_s;
          oracle_calls = Delay.Robust.evaluation_count () - e0;
          cache_hits = c1.Nontree.Oracle.Cache.hits - c0.Nontree.Oracle.Cache.hits;
          cache_misses =
            c1.Nontree.Oracle.Cache.misses - c0.Nontree.Oracle.Cache.misses }
      in
      stats := s :: !stats;
      progress
        "section %s: %.1fs wall, %d oracle calls, cache %d/%d hits (%.1f%%)"
        name wall_s s.oracle_calls s.cache_hits
        (s.cache_hits + s.cache_misses)
        (100.0 *. hit_rate s);
      print_newline ()
    end
  in
  Printf.printf
    "Non-Tree Routing (McCoy & Robins, DATE 1994) -- reproduction harness\n";
  Printf.printf "seed %d, %d trials per size, sizes [%s], eval model %s\n"
    !seed !trials !sizes
    (Delay.Model.name config.Nontree.Experiment.eval_model);
  Printf.printf
    "jobs %d, oracle cache %s, incremental scoring %s, matrix backend %s\n\n"
    !jobs
    (if !no_cache then "off" else "on")
    (if !no_incremental then "off" else "on")
    !matrix_backend;
  let run_t0 = Unix.gettimeofday () in
  section "1" (fun () -> run_table1 config);
  section "2" (fun () -> run_table2 config);
  section "3" (fun () -> run_table3 config);
  section "4" (fun () -> run_table4 config);
  section "5" (fun () -> run_table5 config);
  section "6" (fun () -> run_table6 config);
  section "7" (fun () -> run_table7 config);
  section "figures" (fun () -> run_figures config ~svg_dir:!svg_dir);
  section "ext" (fun () -> run_extensions config);
  section "bechamel" (fun () -> run_bechamel ());
  let counters = snapshot_counters () in
  let backend_cmp =
    if List.mem "backend" wanted || !only = "" then
      Some
        (run_backend_compare ~seed:!seed
           ~size:(List.fold_left max 5 size_list))
    else None
  in
  let total_wall_s = Unix.gettimeofday () -. run_t0 in
  if !bench_json <> "" then begin
    let json =
      json_of_stats ~jobs:!jobs ~cache_enabled:(not !no_cache)
        ~incremental_enabled:(not !no_incremental)
        ~matrix_backend:!matrix_backend ~seed:!seed
        ~trials:!trials ~sizes:size_list ~total_wall_s ~counters ~backend_cmp
        (List.rev !stats)
    in
    let oc = open_out !bench_json in
    output_string oc json;
    close_out oc;
    progress "wrote %s" !bench_json
  end;
  if !metrics_json <> "" then begin
    let c = Nontree.Oracle.Cache.stats () in
    Obs.Manifest.write ~path:!metrics_json
      ~argv:(Array.to_list Sys.argv)
      ~meta:
        Obs.Json.
          [ ("seed", Int !seed);
            ("jobs", Int !jobs);
            ("trials", Int !trials);
            ("sizes", List (List.map (fun s -> Int s) size_list));
            ("cache_enabled", Bool (not !no_cache));
            ("incremental_enabled", Bool (not !no_incremental));
            ("matrix_backend", String !matrix_backend);
            ("eval_model",
             String (Delay.Model.name config.Nontree.Experiment.eval_model)) ]
      ~extra:
        [ ( "cache",
            Obs.Json.Obj
              [ ("hits", Obs.Json.Int c.Nontree.Oracle.Cache.hits);
                ("misses", Obs.Json.Int c.Nontree.Oracle.Cache.misses);
                ("entries", Obs.Json.Int c.Nontree.Oracle.Cache.entries);
                ("enabled", Obs.Json.Bool (not !no_cache)) ] ) ]
      ();
    progress "wrote %s" !metrics_json
  end;
  progress "done"
