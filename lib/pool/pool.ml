(* A fixed pool of worker domains with work-sharing maps.

   Each [map] call registers one job: an array of tasks claimed by
   index through an atomic counter. The caller immediately starts
   claiming tasks of its own job; idle workers scan the active-job
   list and help with whichever job still has unclaimed tasks. Because
   a map's owner only ever executes items of its own job, an owner can
   never block while its job still has unclaimed work — which is what
   makes nested maps on one pool deadlock-free: every job is driven to
   completion by its owner even if all other domains are busy or
   waiting.

   Determinism: results land in a per-job array slot keyed by item
   index, so collection order equals submission order no matter which
   domain ran what. Visibility of the (non-atomic) result slots is
   anchored by the atomic completed-counter: each slot write precedes
   the worker's fetch-and-add in program order, and the caller only
   reads slots after observing the full count. *)

type job = {
  run : int -> unit;  (* executes task [i]; must not raise *)
  total : int;
  next : int Atomic.t;  (* next unclaimed task index *)
  completed : int Atomic.t;
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* workers: a job was submitted / shutdown *)
  finished : Condition.t;  (* map callers: some job completed *)
  mutable queue : job list;  (* active jobs, oldest first *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let make size =
  { size;
    mutex = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    queue = [];
    stop = false;
    domains = [] }

let sequential = make 1

let size pool = pool.size

(* Claim and run tasks of [job] until every index is taken. *)
let help pool job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      job.run i;
      let finished_tasks = 1 + Atomic.fetch_and_add job.completed 1 in
      if finished_tasks = job.total then begin
        Mutex.lock pool.mutex;
        pool.queue <- List.filter (fun j -> j != job) pool.queue;
        Condition.broadcast pool.finished;
        Mutex.unlock pool.mutex
      end;
      go ()
    end
  in
  go ()

let rec claimable = function
  | [] -> None
  | j :: rest -> if Atomic.get j.next < j.total then Some j else claimable rest

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec await () =
      if pool.stop then None
      else
        match claimable pool.queue with
        | Some _ as job -> job
        | None ->
            Condition.wait pool.work pool.mutex;
            await ()
    in
    let job = await () in
    Mutex.unlock pool.mutex;
    match job with
    | None -> ()
    | Some job ->
        help pool job;
        loop ()
  in
  loop ()

let max_size = 128

let create jobs =
  let size = max 1 (min jobs max_size) in
  let pool = make size in
  pool.domains <-
    List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let shutdown pool =
  if pool.domains <> [] then begin
    Mutex.lock pool.mutex;
    pool.stop <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool ~jobs f =
  let pool = create jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when pool.size <= 1 -> List.map f xs
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let job =
        { total = n;
          next = Atomic.make 0;
          completed = Atomic.make 0;
          run =
            (fun i ->
              let r =
                match f items.(i) with
                | v -> Ok v
                | exception e -> Error (e, Printexc.get_raw_backtrace ())
              in
              results.(i) <- Some r) }
      in
      Mutex.lock pool.mutex;
      pool.queue <- pool.queue @ [ job ];
      Condition.broadcast pool.work;
      Mutex.unlock pool.mutex;
      help pool job;
      Mutex.lock pool.mutex;
      while Atomic.get job.completed < n do
        Condition.wait pool.finished pool.mutex
      done;
      Mutex.unlock pool.mutex;
      List.init n (fun i ->
          match results.(i) with
          | Some (Ok v) -> v
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | None -> assert false)
