(** Fixed Domain-based work pool for the delay-oracle hot paths.

    The greedy routing loops and the experiment harness fan out over
    work items that are mutually independent (candidate edges of one
    LDRG iteration, the 50 nets of a table size). This pool runs such
    fan-outs on OCaml 5 domains while keeping the *results*
    deterministic: {!map} returns results in submission order and
    re-raises the lowest-index exception, so callers that reduce with
    an order-sensitive fold (first-index tie-breaks, float summation
    order) produce output identical to the sequential run.

    Built on the stdlib only ([Domain], [Mutex], [Condition],
    [Atomic]) — no external dependencies.

    Concurrency model: a pool of size [n] consists of [n − 1] worker
    domains plus the calling domain, which participates in every
    {!map} it issues (it only executes items of its *own* map, never
    foreign work). This makes nested maps on the same pool safe: a
    worker that issues an inner {!map} while executing an outer item
    drives its own items to completion instead of blocking, so every
    map's owner guarantees progress and the pool cannot deadlock. Total
    parallelism stays bounded by the pool size regardless of nesting
    depth. *)

type t

val sequential : t
(** A size-1 pool: {!map} degenerates to [List.map] on the calling
    domain — the untouched sequential path. *)

val create : int -> t
(** [create n] spawns [n − 1] worker domains (clamped to [1, 128]).
    [create 1] spawns nothing and behaves like {!sequential}. *)

val size : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], distributing
    items over the pool's domains, and returns the results in the
    order of [xs]. On a size-1 pool (or a 0/1-element list) this is
    exactly [List.map f xs] — same evaluation order, same effects
    order. If any application raises, the exception of the
    lowest-index failing item is re-raised (with its backtrace) after
    all items have finished; this choice is deterministic across
    worker counts and schedules. *)

val shutdown : t -> unit
(** Stops and joins the worker domains. Idempotent. A {!map} issued
    after shutdown still completes (the caller executes every item
    itself). *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool of size [jobs] and
    shuts it down afterwards, also on exceptions. *)
