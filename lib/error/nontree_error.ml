type t =
  | Singular_matrix of { stage : string; column : int }
  | Non_finite of { stage : string; value : float }
  | Probe_never_settled of { probe : string; horizon : float }
  | Invalid_net of string

exception Error of t

let raise_error e = raise (Error e)

let to_string = function
  | Singular_matrix { stage; column } ->
      if column < 0 then
        Printf.sprintf "singular matrix in %s (non-finite entries)" stage
      else Printf.sprintf "singular matrix in %s (pivot column %d)" stage column
  | Non_finite { stage; value } ->
      Printf.sprintf "non-finite value (%s) in %s" (Float.to_string value) stage
  | Probe_never_settled { probe; horizon } ->
      Printf.sprintf "probe %s never settled within %.3g s" probe horizon
  | Invalid_net reason -> "invalid net: " ^ reason

let pp ppf e = Format.pp_print_string ppf (to_string e)

let protect f = try Ok (f ()) with Error e -> Result.Error e

module Counters = struct
  type snapshot = {
    retries : int;
    moment_fallbacks : int;
    elmore_fallbacks : int;
    faults_injected : int;
    faults_survived : int;
    dropped_evaluations : int;
    dropped_nets : int;
    oracle_errors : int;
  }

  let retries = ref 0
  let moment_fallbacks = ref 0
  let elmore_fallbacks = ref 0
  let faults_injected' = ref 0
  let faults_survived = ref 0
  let dropped_evaluations = ref 0
  let dropped_nets = ref 0
  let oracle_errors = ref 0

  let all =
    [ retries; moment_fallbacks; elmore_fallbacks; faults_injected';
      faults_survived; dropped_evaluations; dropped_nets; oracle_errors ]

  let reset () = List.iter (fun r -> r := 0) all
  let any () = List.exists (fun r -> !r <> 0) all

  let snapshot () =
    { retries = !retries;
      moment_fallbacks = !moment_fallbacks;
      elmore_fallbacks = !elmore_fallbacks;
      faults_injected = !faults_injected';
      faults_survived = !faults_survived;
      dropped_evaluations = !dropped_evaluations;
      dropped_nets = !dropped_nets;
      oracle_errors = !oracle_errors }

  let incr_retries () = incr retries
  let incr_moment_fallbacks () = incr moment_fallbacks
  let incr_elmore_fallbacks () = incr elmore_fallbacks
  let incr_faults_injected () = incr faults_injected'
  let add_faults_survived n = faults_survived := !faults_survived + n
  let incr_dropped_evaluations () = incr dropped_evaluations
  let incr_dropped_nets () = incr dropped_nets
  let incr_oracle_errors () = incr oracle_errors

  let faults_injected () = !faults_injected'

  let summary () =
    Printf.sprintf
      "robustness: %d retries, %d fallbacks (%d moment, %d elmore), %d \
       faults injected, %d survived, %d evals dropped, %d nets dropped, %d \
       oracle errors"
      !retries
      (!moment_fallbacks + !elmore_fallbacks)
      !moment_fallbacks !elmore_fallbacks !faults_injected' !faults_survived
      !dropped_evaluations !dropped_nets !oracle_errors
end
