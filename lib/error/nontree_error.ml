type t =
  | Singular_matrix of { stage : string; column : int }
  | Non_finite of { stage : string; value : float }
  | Probe_never_settled of { probe : string; horizon : float }
  | Invalid_net of string

exception Error of t

let raise_error e = raise (Error e)

let to_string = function
  | Singular_matrix { stage; column } ->
      if column < 0 then
        Printf.sprintf "singular matrix in %s (non-finite entries)" stage
      else Printf.sprintf "singular matrix in %s (pivot column %d)" stage column
  | Non_finite { stage; value } ->
      Printf.sprintf "non-finite value (%s) in %s" (Float.to_string value) stage
  | Probe_never_settled { probe; horizon } ->
      Printf.sprintf "probe %s never settled within %.3g s" probe horizon
  | Invalid_net reason -> "invalid net: " ^ reason

let pp ppf e = Format.pp_print_string ppf (to_string e)

let protect f = try Ok (f ()) with Error e -> Result.Error e

module Counters = struct
  type snapshot = {
    retries : int;
    moment_fallbacks : int;
    elmore_fallbacks : int;
    faults_injected : int;
    faults_survived : int;
    dropped_evaluations : int;
    dropped_nets : int;
    oracle_errors : int;
  }

  (* Registered Obs counters (atomics underneath, so the summary stays
     exact when worker domains bump them under --jobs > 1). Living in
     the registry means the robustness tallies appear in every
     nontree-obs-v1 manifest without extra plumbing. *)
  let retries = Obs.Counter.make "oracle.retries"
  let moment_fallbacks = Obs.Counter.make "oracle.fallbacks.moment"
  let elmore_fallbacks = Obs.Counter.make "oracle.fallbacks.elmore"
  let faults_injected' = Obs.Counter.make "faults.injected"
  let faults_survived = Obs.Counter.make "faults.survived"
  let dropped_evaluations = Obs.Counter.make "oracle.evaluations.dropped"
  let dropped_nets = Obs.Counter.make "harness.nets.dropped"
  let oracle_errors = Obs.Counter.make "oracle.errors"

  let all =
    [ retries; moment_fallbacks; elmore_fallbacks; faults_injected';
      faults_survived; dropped_evaluations; dropped_nets; oracle_errors ]

  let reset () = List.iter (fun c -> Obs.Counter.set c 0) all
  let any () = List.exists (fun c -> Obs.Counter.value c <> 0) all

  let snapshot () =
    { retries = Obs.Counter.value retries;
      moment_fallbacks = Obs.Counter.value moment_fallbacks;
      elmore_fallbacks = Obs.Counter.value elmore_fallbacks;
      faults_injected = Obs.Counter.value faults_injected';
      faults_survived = Obs.Counter.value faults_survived;
      dropped_evaluations = Obs.Counter.value dropped_evaluations;
      dropped_nets = Obs.Counter.value dropped_nets;
      oracle_errors = Obs.Counter.value oracle_errors }

  (* One evaluation runs entirely on one domain, so a domain-local
     tally lets Delay.Robust measure the faults injected into *its
     own* evaluation window exactly, even while other domains inject
     concurrently (the global counter alone cannot distinguish them). *)
  let injected_local = Domain.DLS.new_key (fun () -> ref 0)

  let incr_retries () = Obs.Counter.incr retries
  let incr_moment_fallbacks () = Obs.Counter.incr moment_fallbacks
  let incr_elmore_fallbacks () = Obs.Counter.incr elmore_fallbacks

  let incr_faults_injected () =
    Obs.Counter.incr faults_injected';
    incr (Domain.DLS.get injected_local)

  let add_faults_survived n = Obs.Counter.add faults_survived n
  let incr_dropped_evaluations () = Obs.Counter.incr dropped_evaluations
  let incr_dropped_nets () = Obs.Counter.incr dropped_nets
  let incr_oracle_errors () = Obs.Counter.incr oracle_errors

  let faults_injected () = Obs.Counter.value faults_injected'
  let faults_injected_local () = !(Domain.DLS.get injected_local)

  let summary () =
    let s = snapshot () in
    Printf.sprintf
      "robustness: %d retries, %d fallbacks (%d moment, %d elmore), %d \
       faults injected, %d survived, %d evals dropped, %d nets dropped, %d \
       oracle errors"
      s.retries
      (s.moment_fallbacks + s.elmore_fallbacks)
      s.moment_fallbacks s.elmore_fallbacks s.faults_injected
      s.faults_survived s.dropped_evaluations s.dropped_nets s.oracle_errors
end
