type t =
  | Singular_matrix of { stage : string; column : int }
  | Non_finite of { stage : string; value : float }
  | Probe_never_settled of { probe : string; horizon : float }
  | Invalid_net of string

exception Error of t

let raise_error e = raise (Error e)

let to_string = function
  | Singular_matrix { stage; column } ->
      if column < 0 then
        Printf.sprintf "singular matrix in %s (non-finite entries)" stage
      else Printf.sprintf "singular matrix in %s (pivot column %d)" stage column
  | Non_finite { stage; value } ->
      Printf.sprintf "non-finite value (%s) in %s" (Float.to_string value) stage
  | Probe_never_settled { probe; horizon } ->
      Printf.sprintf "probe %s never settled within %.3g s" probe horizon
  | Invalid_net reason -> "invalid net: " ^ reason

let pp ppf e = Format.pp_print_string ppf (to_string e)

let protect f = try Ok (f ()) with Error e -> Result.Error e

module Counters = struct
  type snapshot = {
    retries : int;
    moment_fallbacks : int;
    elmore_fallbacks : int;
    faults_injected : int;
    faults_survived : int;
    dropped_evaluations : int;
    dropped_nets : int;
    oracle_errors : int;
  }

  (* Atomics, not plain refs: the counters are bumped from worker
     domains when the Pool-based evaluation layer is active, and the
     robustness summary must stay exact under --jobs > 1. *)
  let retries = Atomic.make 0
  let moment_fallbacks = Atomic.make 0
  let elmore_fallbacks = Atomic.make 0
  let faults_injected' = Atomic.make 0
  let faults_survived = Atomic.make 0
  let dropped_evaluations = Atomic.make 0
  let dropped_nets = Atomic.make 0
  let oracle_errors = Atomic.make 0

  let all =
    [ retries; moment_fallbacks; elmore_fallbacks; faults_injected';
      faults_survived; dropped_evaluations; dropped_nets; oracle_errors ]

  let reset () = List.iter (fun r -> Atomic.set r 0) all
  let any () = List.exists (fun r -> Atomic.get r <> 0) all

  let snapshot () =
    { retries = Atomic.get retries;
      moment_fallbacks = Atomic.get moment_fallbacks;
      elmore_fallbacks = Atomic.get elmore_fallbacks;
      faults_injected = Atomic.get faults_injected';
      faults_survived = Atomic.get faults_survived;
      dropped_evaluations = Atomic.get dropped_evaluations;
      dropped_nets = Atomic.get dropped_nets;
      oracle_errors = Atomic.get oracle_errors }

  (* One evaluation runs entirely on one domain, so a domain-local
     tally lets Delay.Robust measure the faults injected into *its
     own* evaluation window exactly, even while other domains inject
     concurrently (the global counter alone cannot distinguish them). *)
  let injected_local = Domain.DLS.new_key (fun () -> ref 0)

  let incr_retries () = Atomic.incr retries
  let incr_moment_fallbacks () = Atomic.incr moment_fallbacks
  let incr_elmore_fallbacks () = Atomic.incr elmore_fallbacks

  let incr_faults_injected () =
    Atomic.incr faults_injected';
    incr (Domain.DLS.get injected_local)

  let add_faults_survived n = ignore (Atomic.fetch_and_add faults_survived n)
  let incr_dropped_evaluations () = Atomic.incr dropped_evaluations
  let incr_dropped_nets () = Atomic.incr dropped_nets
  let incr_oracle_errors () = Atomic.incr oracle_errors

  let faults_injected () = Atomic.get faults_injected'
  let faults_injected_local () = !(Domain.DLS.get injected_local)

  let summary () =
    let s = snapshot () in
    Printf.sprintf
      "robustness: %d retries, %d fallbacks (%d moment, %d elmore), %d \
       faults injected, %d survived, %d evals dropped, %d nets dropped, %d \
       oracle errors"
      s.retries
      (s.moment_fallbacks + s.elmore_fallbacks)
      s.moment_fallbacks s.elmore_fallbacks s.faults_injected
      s.faults_survived s.dropped_evaluations s.dropped_nets s.oracle_errors
end
