(** Typed operational errors for the delay-oracle stack.

    The oracle route (LU factorisation → transient engine → delay
    models → LDRG/SLDRG loops) used to abort whole experiment runs with
    bare [failwith]/[invalid_arg] on the first bad net. These variants
    classify every operational failure so callers can retry with a
    refined configuration, degrade to a cheaper model, or drop a single
    net — and so binaries can emit one-line diagnostics instead of
    backtraces.

    Programming errors (wrong argument shapes, unknown probe names)
    remain [Invalid_argument] exceptions; only failures that depend on
    runtime data travel through this type. *)

type t =
  | Singular_matrix of { stage : string; column : int }
      (** LU found no usable pivot; [stage] names the computation
          ("spice.factor", "moments.factor", ...), [column] the pivot
          column ([-1] when the input matrix contained non-finite
          entries). *)
  | Non_finite of { stage : string; value : float }
      (** A NaN or infinity escaped a numeric stage (waveform blow-up,
          diverging solve). *)
  | Probe_never_settled of { probe : string; horizon : float }
      (** A transient probe never crossed its threshold within the
          (extended) simulation window of [horizon] seconds. *)
  | Invalid_net of string
      (** The net or routing itself is unusable (coincident pins, too
          few pins, tree-only oracle on a non-tree routing, ...). Never
          retried: no amount of refinement fixes the input. *)

exception Error of t
(** Carrier used where an exception channel is unavoidable (greedy-loop
    objectives, legacy callers). Catch with {!protect} or match on
    [Error]. *)

val raise_error : t -> 'a

val to_string : t -> string
(** One-line, human-readable rendering — what binaries print before
    exiting nonzero. *)

val pp : Format.formatter -> t -> unit

val protect : (unit -> 'a) -> ('a, t) result
(** [protect f] runs [f], converting a raised {!Error} back into
    [Result]. Other exceptions pass through. *)

(** Per-run robustness counters.

    Global (per-process) tallies of every fault-handling event; reset
    at the start of a run and surfaced by [bin/tables] / the harness as
    a one-line summary. All counters are atomic, so increments from
    worker domains (the [--jobs] evaluation layer) are never lost and
    the summary stays exact under parallel runs. *)
module Counters : sig
  type snapshot = {
    retries : int;  (** refined re-runs of a failed oracle evaluation *)
    moment_fallbacks : int;  (** degradations SPICE → first moment *)
    elmore_fallbacks : int;  (** degradations first moment → Elmore *)
    faults_injected : int;  (** faults the {!Fault} module injected *)
    faults_survived : int;  (** injected faults absorbed by an Ok result *)
    dropped_evaluations : int;
        (** candidate evaluations abandoned inside a greedy loop *)
    dropped_nets : int;  (** whole nets excluded from a table *)
    oracle_errors : int;  (** evaluations that failed even after fallback *)
  }

  val reset : unit -> unit
  val snapshot : unit -> snapshot
  val any : unit -> bool
  (** True when any counter is nonzero. *)

  val incr_retries : unit -> unit
  val incr_moment_fallbacks : unit -> unit
  val incr_elmore_fallbacks : unit -> unit
  val incr_faults_injected : unit -> unit
  val add_faults_survived : int -> unit
  val incr_dropped_evaluations : unit -> unit
  val incr_dropped_nets : unit -> unit
  val incr_oracle_errors : unit -> unit

  val faults_injected : unit -> int
  (** Process-wide injected-fault total (all domains). *)

  val faults_injected_local : unit -> int
  (** Injected-fault tally of the *calling domain* only. An oracle
      evaluation runs entirely on one domain, so reading this before
      and after gives the exact number of faults injected into that
      evaluation even while other domains inject concurrently. *)

  val summary : unit -> string
  (** One line, e.g.
      ["robustness: 3 retries, 2 fallbacks (1 elmore), 5 faults injected, 5 survived, 0 nets dropped"]. *)
end
