(** Routing topologies over a signal net.

    A routing is a connected graph whose vertices are the net's pins
    (vertex 0 = source n0, vertices 1..k = sinks) plus optional Steiner
    points (vertices k+1..). Edge weights are Manhattan distances
    between endpoints — the paper's edge cost d_ij. A spanning *tree*
    is the classical routing; this type also represents the paper's
    non-tree routings, where extra edges create cycles.

    Each edge additionally carries a width (default 1.0) used by the
    wire-sized WSORG formulation (Section 5.2): a width-w wire has
    resistance r/w and area capacitance c·w per unit length. *)

type t

val of_net : Geom.Net.t -> Graphs.Wgraph.t -> t
(** [of_net net g] wraps graph [g] whose vertices are exactly the pins
    of [net] (same indexing).

    @raise Invalid_argument when vertex counts disagree, [g] is
    disconnected, or an edge weight differs from the Manhattan distance
    between its endpoints by more than 1e-6. *)

val mst_of_net : Geom.Net.t -> t
(** The minimum spanning tree routing of a net — the paper's baseline. *)

val with_points : source:int -> num_terminals:int -> Geom.Point.t array
  -> (int * int) list -> t
(** [with_points ~source ~num_terminals points edges] builds a routing
    over explicit points (terminals first, then Steiner points); edge
    weights are computed from the geometry. [source] must currently be
    0 — the paper always roots at n0.

    @raise Invalid_argument when constraints are violated or the result
    is disconnected. *)

(** {1 Accessors} *)

val graph : t -> Graphs.Wgraph.t
val points : t -> Geom.Point.t array
val point : t -> int -> Geom.Point.t
val source : t -> int
val num_vertices : t -> int
val num_terminals : t -> int
(** Pins of the original net (source + sinks); Steiner points are the
    vertices from [num_terminals] up. *)

val sinks : t -> int list
(** Vertex ids 1..k of the net's sinks. *)

val is_tree : t -> bool
val cost : t -> float
(** Total wirelength: sum of Manhattan edge lengths (widths do not
    enter the cost, matching the paper's cost columns, which count
    wirelength). *)

val edge_length : t -> int -> int -> float
(** @raise Not_found when the edge is absent. *)

(** {1 Topology edits} *)

val add_edge : t -> int -> int -> t
(** Adds the straight (Manhattan-metric) connection between two
    existing vertices; the new weight is their Manhattan distance.

    @raise Invalid_argument on self-loops or duplicates. *)

val remove_edge : t -> int -> int -> t
(** @raise Not_found when absent.
    @raise Invalid_argument when removal disconnects the routing. *)

val candidate_edges : t -> (int * int) list
(** All vertex pairs not currently joined by an edge — the search space
    of the LDRG greedy step (step 2 of the algorithm in Figure 4). *)

(** {1 Widths (WSORG)} *)

val width : t -> int -> int -> float
(** Width of an edge; 1.0 unless changed. @raise Not_found if absent. *)

val set_width : t -> int -> int -> float -> t
(** @raise Not_found if the edge is absent.
    @raise Invalid_argument if the width is not positive. *)

val widths : t -> ((int * int) * float) list
(** Widths of all edges (canonical endpoint order). *)

(** {1 Rooted tree view} *)

val rooted : t -> Graphs.Rooted.t
(** Rooted-at-source view for Elmore computations.

    @raise Invalid_argument when the routing is not a tree. *)

val pp : Format.formatter -> t -> unit
