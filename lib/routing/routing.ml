module Emap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  points : Geom.Point.t array;
  num_terminals : int;
  graph : Graphs.Wgraph.t;
  widths : float Emap.t;  (* only edges with width <> 1.0 are stored *)
}

let geometric_tolerance = 1e-6

let canon u v = if u < v then (u, v) else (v, u)

let check_weights points g =
  List.iter
    (fun (e : Graphs.Wgraph.edge) ->
      let d = Geom.Point.manhattan points.(e.u) points.(e.v) in
      if abs_float (d -. e.w) > geometric_tolerance then
        invalid_arg "Routing: edge weight disagrees with Manhattan distance")
    (Graphs.Wgraph.edges g)

let of_net net g =
  let points = Geom.Net.pins net in
  if Graphs.Wgraph.num_vertices g <> Array.length points then
    invalid_arg "Routing.of_net: vertex count mismatch";
  if not (Graphs.Wgraph.is_connected g) then
    invalid_arg "Routing.of_net: disconnected";
  check_weights points g;
  { points; num_terminals = Array.length points; graph = g;
    widths = Emap.empty }

let mst_of_net net =
  let points = Geom.Net.pins net in
  let n = Array.length points in
  let weight i j = Geom.Point.manhattan points.(i) points.(j) in
  let mst = Graphs.Mst.prim_complete ~n ~weight in
  { points; num_terminals = n; graph = mst; widths = Emap.empty }

let with_points ~source ~num_terminals points edges =
  if source <> 0 then
    invalid_arg "Routing.with_points: source must be vertex 0";
  let n = Array.length points in
  if num_terminals < 2 || num_terminals > n then
    invalid_arg "Routing.with_points: bad terminal count";
  let g =
    List.fold_left
      (fun g (u, v) ->
        Graphs.Wgraph.add_edge g u v
          (Geom.Point.manhattan points.(u) points.(v)))
      (Graphs.Wgraph.create n) edges
  in
  if not (Graphs.Wgraph.is_connected g) then
    invalid_arg "Routing.with_points: disconnected";
  { points = Array.copy points; num_terminals; graph = g;
    widths = Emap.empty }

let graph t = t.graph
let points t = Array.copy t.points
let point t i = t.points.(i)
let source _ = 0
let num_vertices t = Array.length t.points
let num_terminals t = t.num_terminals

let sinks t = List.init (t.num_terminals - 1) (fun i -> i + 1)

let is_tree t = Graphs.Wgraph.is_spanning_tree t.graph
let cost t = Graphs.Wgraph.total_weight t.graph

let edge_length t u v = Graphs.Wgraph.weight t.graph u v

let add_edge t u v =
  let w = Geom.Point.manhattan t.points.(u) t.points.(v) in
  { t with graph = Graphs.Wgraph.add_edge t.graph u v w }

let remove_edge t u v =
  let g = Graphs.Wgraph.remove_edge t.graph u v in
  if not (Graphs.Wgraph.is_connected g) then
    invalid_arg "Routing.remove_edge: would disconnect";
  { t with graph = g; widths = Emap.remove (canon u v) t.widths }

let candidate_edges t =
  let n = num_vertices t in
  let acc = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if not (Graphs.Wgraph.mem_edge t.graph u v) then acc := (u, v) :: !acc
    done
  done;
  List.rev !acc

let width t u v =
  if not (Graphs.Wgraph.mem_edge t.graph u v) then raise Not_found;
  match Emap.find_opt (canon u v) t.widths with
  | Some w -> w
  | None -> 1.0

let set_width t u v w =
  if not (Graphs.Wgraph.mem_edge t.graph u v) then raise Not_found;
  if w <= 0.0 then invalid_arg "Routing.set_width: width must be positive";
  { t with widths = Emap.add (canon u v) w t.widths }

let widths t =
  List.map
    (fun (e : Graphs.Wgraph.edge) -> ((e.u, e.v), width t e.u e.v))
    (Graphs.Wgraph.edges t.graph)

let rooted t =
  if not (is_tree t) then invalid_arg "Routing.rooted: not a tree";
  Graphs.Rooted.of_tree t.graph ~root:0

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>routing(%d vertices, %d terminals,@ %d edges,@ cost %.1f):"
    (num_vertices t) t.num_terminals
    (Graphs.Wgraph.num_edges t.graph) (cost t);
  List.iter
    (fun (e : Graphs.Wgraph.edge) ->
      Format.fprintf ppf "@ %d-%d(%.1f)" e.u e.v e.w)
    (Graphs.Wgraph.edges t.graph);
  Format.fprintf ppf "@]"
