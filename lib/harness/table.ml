type iter_row = {
  label : string;
  size : int;
  row : Nontree.Stats.row option;
}

let opt_cell = function
  | None -> "  NA"
  | Some x -> Printf.sprintf "%4.2f" x

let row_cells = function
  | None -> "  NA   NA    NA    NA   NA"
  | Some (r : Nontree.Stats.row) ->
      Printf.sprintf "%4.2f %4.2f  %4.0f  %s %s" r.Nontree.Stats.all_delay
        r.Nontree.Stats.all_cost r.Nontree.Stats.pct_winners
        (opt_cell r.Nontree.Stats.win_delay)
        (opt_cell r.Nontree.Stats.win_cost)

(* Group rows by label at the label's *first occurrence*, keeping row
   order within each group. Merging only adjacent runs would render a
   duplicate header block whenever rows for one stage arrive
   non-contiguously; for already-contiguous input the output is
   identical to the old adjacent-run fold. *)
let group_by_label rows =
  let order = ref [] in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt groups r.label with
      | Some group -> group := r :: !group
      | None ->
          Hashtbl.add groups r.label (ref [ r ]);
          order := r.label :: !order)
    rows;
  List.rev_map
    (fun label -> (label, List.rev !(Hashtbl.find groups label)))
    !order

let render ~title ~baseline rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  Buffer.add_string buf
    (Printf.sprintf "(all values normalised to %s)\n" baseline);
  Buffer.add_string buf
    "                      |    All Cases    | Pct  |  Winners Only\n";
  Buffer.add_string buf
    "                 size | Delay Cost      | Wins | Delay Cost\n";
  Buffer.add_string buf
    "  --------------------+-----------------+------+---------------\n";
  List.iter
    (fun (label, group) ->
      List.iteri
        (fun i r ->
          let tag = if i = 0 then Printf.sprintf "%-17s" label else String.make 17 ' ' in
          Buffer.add_string buf
            (Printf.sprintf "  %s %3d |  %s\n" tag r.size (row_cells r.row)))
        group)
    (group_by_label rows);
  Buffer.contents buf

let render_simple ~title ~baseline rows =
  render ~title ~baseline
    (List.map (fun (size, row) -> { label = ""; size; row = Some row }) rows)

let markdown ~title ~baseline rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "### %s\n\n" title);
  Buffer.add_string buf
    (Printf.sprintf "_Normalised to %s._\n\n" baseline);
  Buffer.add_string buf
    "| Stage | Size | Delay (all) | Cost (all) | % Winners | Delay (winners) | Cost (winners) |\n";
  Buffer.add_string buf "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      match r.row with
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "| %s | %d | NA | NA | NA | NA | NA |\n" r.label
               r.size)
      | Some row ->
          Buffer.add_string buf
            (Printf.sprintf "| %s | %d | %.2f | %.2f | %.0f | %s | %s |\n"
               r.label r.size row.Nontree.Stats.all_delay
               row.Nontree.Stats.all_cost row.Nontree.Stats.pct_winners
               (match row.Nontree.Stats.win_delay with
               | None -> "NA"
               | Some x -> Printf.sprintf "%.2f" x)
               (match row.Nontree.Stats.win_cost with
               | None -> "NA"
               | Some x -> Printf.sprintf "%.2f" x)))
    rows;
  Buffer.contents buf
