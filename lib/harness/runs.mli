(** One entry point per paper artefact (see DESIGN.md experiment index).

    Tables take an {!Nontree.Experiment.config} so trial counts, sizes
    and oracle fidelity can be scaled from the command line; each
    returns rows ready for {!Table.render}. *)

type config = Nontree.Experiment.config

val protect_net : what:string -> (unit -> 'a) -> 'a option
(** Run one net's worth of work; a {!Nontree_error.Error} escaping every
    retry and fallback drops that net (logged, counted) instead of
    aborting the whole table. *)

val robustness_summary : unit -> string option
(** One-line robustness counter summary for the run so far, or [None]
    when nothing noteworthy (no faults, retries, fallbacks or drops)
    happened. *)

val table1 : config -> string
(** The Table 1 technology constants actually in use. *)

val table2 : ?iterations:int -> config -> Table.iter_row list
(** LDRG vs MST, with per-iteration rows: iteration k is the effect of
    the k-th added wire relative to the routing after k−1 additions;
    nets whose greedy loop stopped earlier contribute a 1.0 sample
    (and a row is NA when no net reached that iteration). *)

val table3 : config -> Table.iter_row list
(** SLDRG vs the Iterated-1-Steiner tree. *)

val table4 : ?iterations:int -> config -> Table.iter_row list
(** H1 vs MST, per-iteration as in {!table2}. *)

val table5 : config -> Table.iter_row list * Table.iter_row list
(** (H2 rows, H3 rows), both vs MST. H2/H3 apply their single edge
    unconditionally, so all-cases delay can exceed 1. *)

val table6 : config -> Table.iter_row list
(** ERT vs MST. *)

val table7 : config -> Table.iter_row list
(** ERT-seeded LDRG vs ERT. *)

(** {1 Figures} *)

type figure = {
  id : string;
  description : string;
  net_size : int;
  base_delay : float;  (** seconds, SPICE *)
  base_cost : float;
  final_delay : float;
  final_cost : float;
  stages : (float * float) list;
      (** per-greedy-stage (delay, cost) after each added edge *)
  before : Routing.t;
  after : Routing.t;
  added : (int * int) list;
}

val figure1 : config -> figure
(** A 4-pin net where one extra wire gives a large SPICE delay
    reduction at a small wirelength penalty (the paper's Figure 1 shows
    −23 % delay for +9 % wire); found by deterministic search over the
    config's net stream. *)

val figure2 : config -> figure
(** Same on a 10-pin net (paper: −33.3 % delay, +21.5 % wire). *)

val figure3 : config -> figure
(** A 10-pin LDRG run that performs two iterations, with the delay and
    wirelength trajectory after each added edge (paper's Figure 3). *)

val figure5 : config -> figure
(** SLDRG on a 10-pin net: Steiner baseline, then added wires (paper:
    −32 % delay, +25 % wire). *)

val render_figure : figure -> string

val save_figure_svgs : dir:string -> figure -> string list
(** Writes before/after SVG renderings; returns the paths written. *)

(** {1 Extension experiments (paper Section 5)} *)

val ext_csorg : config -> string
(** Critical-sink routing: one-hot criticality on the farthest sink;
    compares MST, plain LDRG, critical-sink LDRG and the weighted-ERT
    seed on that sink's SPICE delay. *)

val ext_wsorg : config -> string
(** Wire sizing: greedy discrete sizing on the MST and on the LDRG
    graph; reports delay vs MST and silicon area vs MST wirelength. *)

val ext_oracle : config -> string
(** Oracle-fidelity ablation: LDRG steered by the first moment, the
    two-pole estimate, or fast SPICE — all evaluated with SPICE. *)

val ext_rlc : config -> string
(** RC vs RLC ablation: does the 492 fH/µm wire inductance change
    either the measured delays or who wins? *)

val ext_trees : config -> string
(** Starting-tree ablation: seed LDRG with the MST, a Prim–Dijkstra
    tradeoff tree (c = 0.5), a BRBC tree (ε = 0.5) and an ERT, and
    report each seed's delay/cost and how much LDRG still improves it
    — the "non-tree wires help any tree" claim generalised beyond
    Tables 2 and 7. *)

val ext_budget : config -> string
(** Wirelength-budgeted LDRG sweep: the delay/wire tradeoff curve as
    the admissible cost ratio grows from 1.05x to unconstrained. *)

val ext_prune : config -> string
(** LDRG followed by the delay-preserving prune pass: how much of the
    wirelength penalty can be reclaimed for free. *)

val ext_sensitivity : config -> string
(** Driver-strength sweep: where the capacitance/resistance trade that
    powers non-tree routing breaks even. *)
