type config = Nontree.Experiment.config

let log_src =
  Logs.Src.create "nontree.harness" ~doc:"Per-net fault containment"

module Log = (val Logs.src_log log_src)

(* A net whose evaluation still fails after every retry and fallback is
   dropped from the table rather than aborting the whole run. *)
let protect_net ~what f =
  match Nontree_error.protect f with
  | Ok v -> Some v
  | Error e ->
      Nontree_error.Counters.incr_dropped_nets ();
      Log.warn (fun m ->
          m "dropping net (%s): %s" what (Nontree_error.to_string e));
      None

let robustness_summary () =
  if Nontree_error.Counters.any () then
    Some (Nontree_error.Counters.summary ())
  else None

(* Every table/figure/extension entry point opens one pool sized by the
   config and fans the per-net work out over it; nested Pool.map calls
   (candidate scoring inside Ldrg.run) share the same workers. With
   [jobs = 1] the pool is a plain List.map and the sequential code path
   is untouched. *)
let with_pool config f =
  Pool.with_pool ~jobs:config.Nontree.Experiment.jobs f

(* Fan [f] over the nets, in net order, dropping failed nets. Results
   come back in submission order, so aggregation (and float summation)
   order matches the sequential run for any worker count. *)
let map_nets pool ~what f nets =
  List.filter_map Fun.id
    (Pool.map pool (fun net -> protect_net ~what (fun () -> f net))
       (Array.to_list nets))

let measure config r =
  Nontree.Eval.measure ~model:config.Nontree.Experiment.eval_model
    ~tech:config.Nontree.Experiment.tech r

let sample_pair config ~baseline ~routing =
  Nontree.Experiment.sample config ~baseline ~routing

let unit_sample = { Nontree.Stats.delay_ratio = 1.0; cost_ratio = 1.0 }

let table1 config =
  Obs.span "harness.table1" @@ fun () ->
  Format.asprintf
    "Table 1: SPICE model parameters (0.8 um CMOS)@\n%a@."
    Circuit.Technology.pp config.Nontree.Experiment.tech

(* Per-iteration aggregation ------------------------------------------- *)

(* For each net: samples.(k) = effect of edge k+1 relative to the
   routing after k edges; reached.(k) says whether the greedy loop
   actually added that edge. *)
let iteration_samples config ~iterations (trace : Nontree.Ldrg.trace) =
  let steps = List.length trace.Nontree.Ldrg.steps in
  Array.init iterations (fun i ->
      let k = i + 1 in
      if steps >= k then
        ( sample_pair config
            ~baseline:(Nontree.Ldrg.routing_after trace (k - 1))
            ~routing:(Nontree.Ldrg.routing_after trace k),
          true )
      else (unit_sample, false))

let iteration_rows ~iterations ~labels traces =
  List.init iterations (fun i ->
      let per_net = List.map (fun a -> a.(i)) traces in
      let reached = List.exists snd per_net in
      let row =
        if reached then Some (Nontree.Stats.summarize (List.map fst per_net))
        else None
      in
      (List.nth labels i, row))

let per_iteration_table config ~iterations ~labels ~algorithm =
  with_pool config (fun pool ->
      List.concat_map
        (fun size ->
          let nets = Nontree.Experiment.nets config ~size in
          let traces =
            map_nets pool ~what:(Printf.sprintf "size %d" size)
              (fun net ->
                iteration_samples config ~iterations (algorithm pool net))
              nets
          in
          List.map
            (fun (label, row) -> { Table.label; size; row })
            (iteration_rows ~iterations ~labels traces))
        config.Nontree.Experiment.sizes)
  (* Group rows so each iteration block lists every size. *)
  |> List.stable_sort (fun a b ->
         compare
           (List.assoc a.Table.label
              (List.mapi (fun i l -> (l, i)) labels))
           (List.assoc b.Table.label
              (List.mapi (fun i l -> (l, i)) labels)))

let simple_table config ~algorithm =
  with_pool config (fun pool ->
      List.map
        (fun size ->
          let nets = Nontree.Experiment.nets config ~size in
          let samples =
            map_nets pool ~what:(Printf.sprintf "size %d" size)
              (fun net ->
                let baseline, routing = algorithm pool net in
                sample_pair config ~baseline ~routing)
              nets
          in
          let row =
            if samples = [] then None
            else Some (Nontree.Stats.summarize samples)
          in
          { Table.label = ""; size; row })
        config.Nontree.Experiment.sizes)

(* Tables --------------------------------------------------------------- *)

let iteration_labels = [ "Iteration One"; "Iteration Two"; "Iteration Three" ]

let table2 ?(iterations = 2) config =
  Obs.span "harness.table2" @@ fun () ->
  per_iteration_table config ~iterations
    ~labels:iteration_labels
    ~algorithm:(fun pool net ->
      Nontree.Ldrg.run ~pool ~model:config.Nontree.Experiment.search_model
        ~tech:config.Nontree.Experiment.tech
        (Routing.mst_of_net net))

let table3 config =
  Obs.span "harness.table3" @@ fun () ->
  simple_table config ~algorithm:(fun pool net ->
      let trace =
        Nontree.Sldrg.run ~pool ~model:config.Nontree.Experiment.search_model
          ~tech:config.Nontree.Experiment.tech net
      in
      (trace.Nontree.Ldrg.initial, trace.Nontree.Ldrg.final))

let table4 ?(iterations = 2) config =
  Obs.span "harness.table4" @@ fun () ->
  per_iteration_table config ~iterations
    ~labels:iteration_labels
    ~algorithm:(fun _pool net ->
      (* H1 adds at most one predetermined edge per iteration — nothing
         to score in parallel; its speedup comes from the per-net
         fan-out and the oracle cache. *)
      Nontree.Heuristics.h1 ~model:config.Nontree.Experiment.search_model
        ~tech:config.Nontree.Experiment.tech
        (Routing.mst_of_net net))

let table5 config =
  Obs.span "harness.table5" @@ fun () ->
  let run h =
    simple_table config ~algorithm:(fun _pool net ->
        let mst = Routing.mst_of_net net in
        let routed, _ = h ~tech:config.Nontree.Experiment.tech mst in
        (mst, routed))
  in
  (run Nontree.Heuristics.h2, run Nontree.Heuristics.h3)

let table6 config =
  Obs.span "harness.table6" @@ fun () ->
  simple_table config ~algorithm:(fun _pool net ->
      ( Routing.mst_of_net net,
        Ert.construct ~tech:config.Nontree.Experiment.tech net ))

let table7 config =
  Obs.span "harness.table7" @@ fun () ->
  simple_table config ~algorithm:(fun pool net ->
      let ert = Ert.construct ~tech:config.Nontree.Experiment.tech net in
      let trace =
        Nontree.Ldrg.run ~pool ~model:config.Nontree.Experiment.search_model
          ~tech:config.Nontree.Experiment.tech ert
      in
      (ert, trace.Nontree.Ldrg.final))

(* Figures --------------------------------------------------------------- *)

type figure = {
  id : string;
  description : string;
  net_size : int;
  base_delay : float;
  base_cost : float;
  final_delay : float;
  final_cost : float;
  stages : (float * float) list;
  before : Routing.t;
  after : Routing.t;
  added : (int * int) list;
}

let figure_of_trace config ~id ~description (trace : Nontree.Ldrg.trace) =
  let base = measure config trace.Nontree.Ldrg.initial in
  let final = measure config trace.Nontree.Ldrg.final in
  let stages =
    List.mapi
      (fun k _ ->
        let r = Nontree.Ldrg.routing_after trace (k + 1) in
        let m = measure config r in
        (m.Nontree.Eval.delay, m.Nontree.Eval.cost))
      trace.Nontree.Ldrg.steps
  in
  { id;
    description;
    net_size = Routing.num_terminals trace.Nontree.Ldrg.initial;
    base_delay = base.Nontree.Eval.delay;
    base_cost = base.Nontree.Eval.cost;
    final_delay = final.Nontree.Eval.delay;
    final_cost = final.Nontree.Eval.cost;
    stages;
    before = trace.Nontree.Ldrg.initial;
    after = trace.Nontree.Ldrg.final;
    added = List.map (fun s -> s.Nontree.Ldrg.edge) trace.Nontree.Ldrg.steps }

(* Deterministic search over the config's net stream for the most
   figure-worthy instance. *)
let search_nets config ~size ~scan ~score =
  with_pool config (fun pool ->
      let nets =
        Nontree.Experiment.nets { config with trials = scan } ~size
      in
      (* Score every net (in parallel), then pick the winner with the
         same earliest-on-ties fold the sequential scan used. *)
      let scored =
        Pool.map pool
          (fun net ->
            protect_net ~what:"figure search" (fun () -> score pool net))
          (Array.to_list nets)
      in
      let best =
        List.fold_left
          (fun best result ->
            match result with
            | None | Some None -> best
            | Some (Some (s, payload)) -> (
                match best with
                | Some (s', _) when s' <= s -> best
                | _ -> Some (s, payload)))
          None scored
      in
      match best with
      | Some (_, payload) -> payload
      | None -> failwith "Runs: figure search found no instance")

let single_edge_figure config ~id ~size ~scan ~description =
  search_nets config ~size ~scan ~score:(fun pool net ->
      let mst = Routing.mst_of_net net in
      let trace =
        Nontree.Ldrg.run ~pool ~max_edges:1
          ~model:config.Nontree.Experiment.search_model
          ~tech:config.Nontree.Experiment.tech mst
      in
      match trace.Nontree.Ldrg.steps with
      | [] -> None
      | s :: _ ->
          let ratio = s.objective_after /. s.objective_before in
          let cost_ratio = s.cost_after /. s.cost_before in
          (* Prefer the paper's headline shape: a big delay win bought
             with little extra wire. *)
          let score = ratio +. Float.max 0.0 (cost_ratio -. 1.15) in
          Some (score, figure_of_trace config ~id ~description trace))

let figure1 config =
  Obs.span "harness.figure1" @@ fun () ->
  single_edge_figure config ~id:"Figure 1" ~size:4 ~scan:80
    ~description:
      "adding one extra edge to a 4-pin MST trades a small wirelength \
       increase for a large SPICE delay reduction"

let figure2 config =
  Obs.span "harness.figure2" @@ fun () ->
  single_edge_figure config ~id:"Figure 2" ~size:10 ~scan:20
    ~description:
      "a random 10-pin net where a single extra edge substantially \
       reduces SPICE delay"

let figure3 config =
  Obs.span "harness.figure3" @@ fun () ->
  search_nets config ~size:10 ~scan:20 ~score:(fun pool net ->
      let mst = Routing.mst_of_net net in
      let trace =
        Nontree.Ldrg.run ~pool ~model:config.Nontree.Experiment.search_model
          ~tech:config.Nontree.Experiment.tech mst
      in
      if List.length trace.Nontree.Ldrg.steps < 2 then None
      else begin
        let last =
          List.nth trace.Nontree.Ldrg.steps
            (List.length trace.Nontree.Ldrg.steps - 1)
        in
        let first = List.hd trace.Nontree.Ldrg.steps in
        Some
          ( last.objective_after /. first.objective_before,
            figure_of_trace config ~id:"Figure 3"
              ~description:
                "an LDRG execution that adds two or more edges, showing \
                 the per-iteration delay/wirelength trajectory"
              trace )
      end)

let figure5 config =
  Obs.span "harness.figure5" @@ fun () ->
  search_nets config ~size:10 ~scan:12 ~score:(fun pool net ->
      let trace =
        Nontree.Sldrg.run ~pool ~model:config.Nontree.Experiment.search_model
          ~tech:config.Nontree.Experiment.tech net
      in
      match trace.Nontree.Ldrg.steps with
      | [] -> None
      | _ ->
          let final = List.nth trace.Nontree.Ldrg.steps
              (List.length trace.Nontree.Ldrg.steps - 1) in
          let first = List.hd trace.Nontree.Ldrg.steps in
          Some
            ( final.objective_after /. first.objective_before,
              figure_of_trace config ~id:"Figure 5"
                ~description:
                  "SLDRG: the greedy loop applied to an Iterated-1-Steiner \
                   tree (squares are Steiner points)"
                trace ))

let render_figure f =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%s: %s\n" f.id f.description);
  Buffer.add_string buf
    (Printf.sprintf "  net size: %d pins; baseline delay %.2f ns, wirelength %.0f um\n"
       f.net_size (f.base_delay *. 1e9) f.base_cost);
  List.iteri
    (fun i (d, c) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  after edge %d (%s): delay %.2f ns (%+.1f%%), wirelength %.0f um (%+.1f%%)\n"
           (i + 1)
           (let u, v = List.nth f.added i in
            Printf.sprintf "%d-%d" u v)
           (d *. 1e9)
           (100.0 *. ((d /. f.base_delay) -. 1.0))
           c
           (100.0 *. ((c /. f.base_cost) -. 1.0))))
    f.stages;
  Buffer.add_string buf
    (Printf.sprintf
       "  final: delay %.2f ns (%.1f%% improvement), wirelength %.0f um (%.1f%% penalty)\n"
       (f.final_delay *. 1e9)
       (100.0 *. (1.0 -. (f.final_delay /. f.base_delay)))
       f.final_cost
       (100.0 *. ((f.final_cost /. f.base_cost) -. 1.0)));
  Buffer.contents buf

let save_figure_svgs ~dir f =
  let slug =
    String.map (fun c -> if c = ' ' then '_' else Char.lowercase_ascii c) f.id
  in
  let before_path = Filename.concat dir (slug ^ "_before.svg") in
  let after_path = Filename.concat dir (slug ^ "_after.svg") in
  Routing_svg.render_to_file ~title:(f.id ^ " (before)") before_path f.before;
  Routing_svg.render_to_file ~title:(f.id ^ " (after)") ~highlight:f.added
    after_path f.after;
  [ before_path; after_path ]

(* Extensions ------------------------------------------------------------ *)

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* [mean] of an empty list is 0/0 = nan; when fault injection drops
   every net of an extension experiment, say so instead of printing
   "nan". [%.*f] renders non-empty means byte-identically to the
   inline [%.Nf] formats these reports used. *)
let mean_fmt ?(decimals = 3) l =
  if l = [] then "n/a (all nets dropped)"
  else Printf.sprintf "%.*f" decimals (mean l)

let ext_csorg config =
  Obs.span "harness.ext_csorg" @@ fun () ->
  with_pool config @@ fun pool ->
  let tech = config.Nontree.Experiment.tech in
  let size = 10 in
  let nets = Nontree.Experiment.nets config ~size in
  let search = Delay.Model.First_moment in
  let spice_sink_delay r v =
    List.assoc v
      (Delay.Model.sink_delays config.Nontree.Experiment.eval_model ~tech r)
  in
  let ratios_ldrg = ref [] and ratios_cs = ref [] and ratios_ert = ref [] in
  let ratios_sert = ref [] in
  let cost_cs = ref [] in
  List.iter
    (fun (rl, rc, re, rs, cc) ->
      ratios_ldrg := rl :: !ratios_ldrg;
      ratios_cs := rc :: !ratios_cs;
      ratios_ert := re :: !ratios_ert;
      ratios_sert := rs :: !ratios_sert;
      cost_cs := cc :: !cost_cs)
    (map_nets pool ~what:"ext csorg"
       (fun net ->
         (* The critical sink: farthest pin from the source. *)
         let src = Geom.Net.source net in
         let critical = ref 1 in
         for v = 2 to Geom.Net.num_sinks net do
           if
             Geom.Point.manhattan src (Geom.Net.pin net v)
             > Geom.Point.manhattan src (Geom.Net.pin net !critical)
           then critical := v
         done;
         let critical = !critical in
         let alphas = Nontree.Critical_sink.one_hot net ~critical in
         let mst = Routing.mst_of_net net in
         let base = spice_sink_delay mst critical in
         let ldrg =
           (Nontree.Ldrg.run ~pool ~model:search ~tech mst).Nontree.Ldrg.final
         in
         let cs =
           (Nontree.Critical_sink.ldrg ~pool ~model:search ~tech ~alphas mst)
             .Nontree.Ldrg.final
         in
         let ert_w = Nontree.Critical_sink.ert_seed ~tech ~alphas net in
         let sert = Ert.construct_critical ~tech ~critical net in
         ( spice_sink_delay ldrg critical /. base,
           spice_sink_delay cs critical /. base,
           spice_sink_delay ert_w critical /. base,
           spice_sink_delay sert critical /. base,
           Routing.cost cs /. Routing.cost mst ))
       nets);
  Printf.sprintf
    "Extension X1 -- CSORG, critical-sink routing (Section 5.1)\n\
    \  %d nets of %d pins; criticality one-hot on the farthest sink;\n\
    \  values are that sink's SPICE delay normalised to the MST.\n\
    \    plain LDRG (max objective)   : %s\n\
    \    critical-sink LDRG           : %s   (cost ratio %s)\n\
    \    criticality-weighted ERT     : %s\n\
    \    SERT-C (direct first wire)   : %s\n"
    (Array.length nets) size (mean_fmt !ratios_ldrg) (mean_fmt !ratios_cs)
    (mean_fmt ~decimals:2 !cost_cs)
    (mean_fmt !ratios_ert) (mean_fmt !ratios_sert)

let ext_wsorg config =
  Obs.span "harness.ext_wsorg" @@ fun () ->
  with_pool config @@ fun pool ->
  let tech = config.Nontree.Experiment.tech in
  let size = 10 in
  let nets = Nontree.Experiment.nets config ~size in
  let search = Delay.Model.First_moment in
  let delay r = Delay.Model.max_delay config.Nontree.Experiment.eval_model ~tech r in
  let d_sized = ref [] and d_ldrg = ref [] and d_both = ref [] in
  let a_sized = ref [] and a_both = ref [] in
  List.iter
    (fun (ds, dl, db, asz, ab) ->
      d_sized := ds :: !d_sized;
      d_ldrg := dl :: !d_ldrg;
      d_both := db :: !d_both;
      a_sized := asz :: !a_sized;
      a_both := ab :: !a_both)
    (map_nets pool ~what:"ext wsorg"
       (fun net ->
         let mst = Routing.mst_of_net net in
         let base_delay = delay mst in
         let base_len = Routing.cost mst in
         let sized, _ =
           Nontree.Wire_sizing.size_greedy ~model:search ~tech mst
         in
         let ldrg =
           (Nontree.Ldrg.run ~pool ~model:search ~tech mst).Nontree.Ldrg.final
         in
         let both, _ =
           Nontree.Wire_sizing.size_greedy ~model:search ~tech ldrg
         in
         ( delay sized /. base_delay,
           delay ldrg /. base_delay,
           delay both /. base_delay,
           Nontree.Wire_sizing.wire_area sized /. base_len,
           Nontree.Wire_sizing.wire_area both /. base_len ))
       nets);
  Printf.sprintf
    "Extension X2 -- WSORG, wire sizing (Section 5.2)\n\
    \  %d nets of %d pins; widths in {1,2,3}; SPICE delay vs MST, silicon\n\
    \  area (sum of length x width) vs MST wirelength.\n\
    \    MST + greedy sizing          : delay %s, area %s\n\
    \    LDRG graph                   : delay %s\n\
    \    LDRG + greedy sizing         : delay %s, area %s\n"
    (Array.length nets) size (mean_fmt !d_sized)
    (mean_fmt ~decimals:2 !a_sized)
    (mean_fmt !d_ldrg) (mean_fmt !d_both)
    (mean_fmt ~decimals:2 !a_both)

let ext_oracle config =
  Obs.span "harness.ext_oracle" @@ fun () ->
  with_pool config @@ fun pool ->
  let tech = config.Nontree.Experiment.tech in
  let oracles =
    [ ("first moment", Delay.Model.First_moment);
      ("two-pole", Delay.Model.Two_pole);
      ("fast SPICE", Delay.Model.Spice Delay.Model.fast_spice) ]
  in
  let blocks =
    List.map
      (fun size ->
        let nets = Nontree.Experiment.nets config ~size in
        let lines =
          List.map
            (fun (name, oracle) ->
              let delays = ref [] and costs = ref [] and evals = ref [] in
              List.iter
                (fun (d, c, e) ->
                  delays := d :: !delays;
                  costs := c :: !costs;
                  evals := e :: !evals)
                (map_nets pool ~what:"ext oracle"
                   (fun net ->
                     let mst = Routing.mst_of_net net in
                     let trace =
                       Nontree.Ldrg.run ~pool ~model:oracle ~tech mst
                     in
                     let s =
                       sample_pair config ~baseline:mst
                         ~routing:trace.Nontree.Ldrg.final
                     in
                     ( s.Nontree.Stats.delay_ratio,
                       s.Nontree.Stats.cost_ratio,
                       float_of_int trace.Nontree.Ldrg.evaluations ))
                   nets);
              Printf.sprintf
                "    %-14s: delay %s, cost %s, oracle calls %s" name
                (mean_fmt !delays)
                (mean_fmt ~decimals:2 !costs)
                (mean_fmt ~decimals:0 !evals))
            oracles
        in
        Printf.sprintf "  size %d (%d nets):\n%s" size (Array.length nets)
          (String.concat "\n" lines))
      [ 10; 20 ]
  in
  Printf.sprintf
    "Extension X3 -- oracle fidelity inside LDRG (SPICE-evaluated)\n%s\n"
    (String.concat "\n" blocks)

let ext_rlc config =
  Obs.span "harness.ext_rlc" @@ fun () ->
  with_pool config @@ fun pool ->
  let tech = config.Nontree.Experiment.tech in
  let size = 10 in
  let nets = Nontree.Experiment.nets config ~size in
  let rc = Delay.Model.Spice Delay.Model.default_spice in
  let rlc = Delay.Model.Spice Delay.Model.rlc_spice in
  let mst_shift = ref [] and ldrg_shift = ref [] in
  let agree = ref 0 and kept = ref 0 in
  List.iter
    (fun (ms, ls, ag) ->
      mst_shift := ms :: !mst_shift;
      ldrg_shift := ls :: !ldrg_shift;
      incr kept;
      if ag then incr agree)
    (map_nets pool ~what:"ext rlc"
       (fun net ->
         let mst = Routing.mst_of_net net in
         let graph =
           (Nontree.Ldrg.run ~pool
              ~model:config.Nontree.Experiment.search_model ~tech mst)
             .Nontree.Ldrg.final
         in
         let d model r = Delay.Model.max_delay model ~tech r in
         let mst_rc = d rc mst and mst_rlc = d rlc mst in
         let g_rc = d rc graph and g_rlc = d rlc graph in
         ( mst_rlc /. mst_rc,
           g_rlc /. g_rc,
           g_rc < mst_rc = (g_rlc < mst_rlc) ))
       nets);
  Printf.sprintf
    "Extension X4 -- RC vs RLC evaluation (Table 1 inductance, 492 fH/um)\n\
    \  %d nets of %d pins.\n\
    \    RLC/RC delay ratio, MST topologies  : %s\n\
    \    RLC/RC delay ratio, LDRG topologies : %s\n\
    \    LDRG-vs-MST winner agreement        : %d/%d nets\n"
    (Array.length nets) size
    (mean_fmt ~decimals:5 !mst_shift)
    (mean_fmt ~decimals:5 !ldrg_shift)
    !agree !kept

let ext_trees config =
  Obs.span "harness.ext_trees" @@ fun () ->
  with_pool config @@ fun pool ->
  let tech = config.Nontree.Experiment.tech in
  let size = 10 in
  let nets = Nontree.Experiment.nets config ~size in
  let seeds =
    [ ("MST", fun net -> Routing.mst_of_net net);
      ("PD (c=0.5)", fun net -> Trees.Pd.construct ~c:0.5 net);
      ("BRBC (eps=0.5)", fun net -> Trees.Brbc.construct ~epsilon:0.5 net);
      ("ERT", fun net -> Ert.construct ~tech net) ]
  in
  let lines =
    List.map
      (fun (name, build) ->
        let seed_delay = ref [] and seed_cost = ref [] in
        let ldrg_gain = ref [] and win = ref 0 in
        List.iter
          (fun (sd, sc, lg, w) ->
            seed_delay := sd :: !seed_delay;
            seed_cost := sc :: !seed_cost;
            ldrg_gain := lg :: !ldrg_gain;
            if w then incr win)
          (map_nets pool ~what:"ext trees"
             (fun net ->
               let mst = Routing.mst_of_net net in
               let base = measure config mst in
               let seed_tree = build net in
               let sm = measure config seed_tree in
               let trace =
                 Nontree.Ldrg.run ~pool
                   ~model:config.Nontree.Experiment.search_model ~tech
                   seed_tree
               in
               let fm = measure config trace.Nontree.Ldrg.final in
               ( sm.Nontree.Eval.delay /. base.Nontree.Eval.delay,
                 sm.Nontree.Eval.cost /. base.Nontree.Eval.cost,
                 fm.Nontree.Eval.delay /. sm.Nontree.Eval.delay,
                 fm.Nontree.Eval.delay
                 < sm.Nontree.Eval.delay *. (1.0 -. 1e-9) ))
             nets);
        Printf.sprintf
          "    %-15s delay %s cost %s (vs MST) | LDRG on it: x%s delay, wins %d/%d"
          name (mean_fmt !seed_delay)
          (mean_fmt ~decimals:2 !seed_cost)
          (mean_fmt !ldrg_gain) !win (Array.length nets))
      seeds
  in
  Printf.sprintf
    "Extension X5 -- LDRG on different starting trees (%d nets of %d pins)\n%s\n"
    (Array.length nets) size
    (String.concat "\n" lines)

let ext_budget config =
  Obs.span "harness.ext_budget" @@ fun () ->
  with_pool config @@ fun pool ->
  let tech = config.Nontree.Experiment.tech in
  let size = 10 in
  let nets = Nontree.Experiment.nets config ~size in
  let budgets = [ 1.05; 1.1; 1.2; 1.5; infinity ] in
  let lines =
    List.map
      (fun budget ->
        let delays = ref [] and costs = ref [] in
        List.iter
          (fun (d, c) ->
            delays := d :: !delays;
            costs := c :: !costs)
          (map_nets pool ~what:"ext budget"
             (fun net ->
               let mst = Routing.mst_of_net net in
               let trace =
                 if budget = infinity then
                   Nontree.Ldrg.run ~pool
                     ~model:config.Nontree.Experiment.search_model ~tech mst
                 else
                   Nontree.Ldrg.run_budgeted ~pool ~max_cost_ratio:budget
                     ~model:config.Nontree.Experiment.search_model ~tech mst
               in
               let s =
                 sample_pair config ~baseline:mst
                   ~routing:trace.Nontree.Ldrg.final
               in
               (s.Nontree.Stats.delay_ratio, s.Nontree.Stats.cost_ratio))
             nets);
        Printf.sprintf "    budget %-8s delay %s, cost %s"
          (if budget = infinity then "inf" else Printf.sprintf "%.2fx" budget)
          (mean_fmt !delays) (mean_fmt !costs))
      budgets
  in
  Printf.sprintf
    "Extension X6 -- wirelength-budgeted LDRG (%d nets of %d pins)\n\
    \  candidate wires are admitted only while total wirelength stays\n\
    \  within the budget times the MST wirelength.\n%s\n"
    (Array.length nets) size
    (String.concat "\n" lines)

let ext_prune config =
  Obs.span "harness.ext_prune" @@ fun () ->
  with_pool config @@ fun pool ->
  let tech = config.Nontree.Experiment.tech in
  let size = 10 in
  let nets = Nontree.Experiment.nets config ~size in
  let search = config.Nontree.Experiment.search_model in
  let d_ldrg = ref [] and c_ldrg = ref [] in
  let d_pruned = ref [] and c_pruned = ref [] in
  let removed = ref 0 in
  List.iter
    (fun (dl, cl, dp, cp, rm) ->
      d_ldrg := dl :: !d_ldrg;
      c_ldrg := cl :: !c_ldrg;
      d_pruned := dp :: !d_pruned;
      c_pruned := cp :: !c_pruned;
      removed := !removed + rm)
    (map_nets pool ~what:"ext prune"
       (fun net ->
         let mst = Routing.mst_of_net net in
         let base = measure config mst in
         let ldrg =
           (Nontree.Ldrg.run ~pool ~model:search ~tech mst).Nontree.Ldrg.final
         in
         let prune = Nontree.Prune.run ~model:search ~tech ldrg in
         let lm = measure config ldrg in
         let pm = measure config prune.Nontree.Prune.final in
         ( lm.Nontree.Eval.delay /. base.Nontree.Eval.delay,
           lm.Nontree.Eval.cost /. base.Nontree.Eval.cost,
           pm.Nontree.Eval.delay /. base.Nontree.Eval.delay,
           pm.Nontree.Eval.cost /. base.Nontree.Eval.cost,
           List.length prune.Nontree.Prune.removals ))
       nets);
  Printf.sprintf
    "Extension X7 -- delay-preserving pruning after LDRG (%d nets of %d pins)\n\
    \  remove edges while the delay stays within 0.1%%; vs MST.\n\
    \    LDRG            : delay %s, cost %s\n\
    \    LDRG + prune    : delay %s, cost %s  (%.1f edges removed/net)\n"
    (Array.length nets) size (mean_fmt !d_ldrg) (mean_fmt !c_ldrg)
    (mean_fmt !d_pruned) (mean_fmt !c_pruned)
    (float_of_int !removed /. float_of_int (Array.length nets))

let ext_sensitivity config =
  Obs.span "harness.ext_sensitivity" @@ fun () ->
  with_pool config @@ fun pool ->
  let size = 10 in
  let nets = Nontree.Experiment.nets config ~size in
  let base_tech = config.Nontree.Experiment.tech in
  (* Vary the driver strength: strong drivers make wire resistance the
     bottleneck (extra wires pay); weak drivers make total capacitance
     the bottleneck (extra wires hurt). *)
  let drivers = [ 25.0; 50.0; 100.0; 200.0; 400.0; 800.0 ] in
  let lines =
    List.map
      (fun rd ->
        let tech = { base_tech with Circuit.Technology.driver_resistance = rd } in
        let local = { config with Nontree.Experiment.tech = tech } in
        let delays = ref [] and costs = ref [] and wins = ref 0 in
        List.iter
          (fun (d, c, w) ->
            delays := d :: !delays;
            costs := c :: !costs;
            if w then incr wins)
          (map_nets pool ~what:"ext sensitivity"
             (fun net ->
               let mst = Routing.mst_of_net net in
               let trace =
                 Nontree.Ldrg.run ~pool
                   ~model:local.Nontree.Experiment.search_model ~tech mst
               in
               let s =
                 sample_pair local ~baseline:mst
                   ~routing:trace.Nontree.Ldrg.final
               in
               ( s.Nontree.Stats.delay_ratio,
                 s.Nontree.Stats.cost_ratio,
                 Nontree.Stats.winner s ))
             nets);
        Printf.sprintf "    driver %5.0f Ohm : delay %s, cost %s, wins %d/%d"
          rd (mean_fmt !delays) (mean_fmt !costs) !wins (Array.length nets))
      drivers
  in
  Printf.sprintf
    "Extension X8 -- driver-strength sensitivity (%d nets of %d pins)\n\
    \  LDRG vs MST as the driver resistance sweeps around Table 1's 100 Ohm;\n\
    \  wire parameters fixed. Strong drivers reward extra wires, weak\n\
    \  drivers punish the added capacitance.\n%s\n"
    (Array.length nets) size
    (String.concat "\n" lines)
