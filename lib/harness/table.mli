(** Rendering experiment results in the paper's table format. *)

type iter_row = {
  label : string;  (** e.g. "Iteration One" *)
  size : int;
  row : Nontree.Stats.row option;  (** [None] renders the NA row *)
}

val render :
  title:string -> baseline:string -> iter_row list -> string
(** A text table with the paper's columns:
    net size | All-cases Delay/Cost | % Winners | Winners-only Delay/Cost,
    one block per distinct label, noting the normalisation baseline. *)

val render_simple :
  title:string -> baseline:string -> (int * Nontree.Stats.row) list -> string
(** Single-block variant for tables without iteration splits. *)

val markdown :
  title:string -> baseline:string -> iter_row list -> string
(** The same data as a GitHub-flavoured markdown table (used to build
    EXPERIMENTS.md). *)
