let to_string net =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# nontree net file: x y per pin (um); first pin is the source\n";
  Array.iter
    (fun (p : Point.t) ->
      Buffer.add_string buf (Printf.sprintf "%.6g %.6g\n" p.Point.x p.Point.y))
    (Net.pins net);
  Buffer.contents buf

let write path net =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string net))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec parse lineno acc = function
    | [] -> (
        match List.rev acc with
        | [] | [ _ ] -> Error "net file needs at least two pins"
        | pins -> (
            try Ok (Net.of_list pins)
            with Invalid_argument m -> Error m))
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then parse (lineno + 1) acc rest
        else begin
          match
            String.split_on_char ' ' trimmed
            |> List.filter (fun s -> s <> "")
            |> List.map float_of_string_opt
          with
          | [ Some x; Some y ] -> parse (lineno + 1) (Point.make x y :: acc) rest
          | _ -> Error (Printf.sprintf "line %d: expected 'x y'" lineno)
        end
  in
  parse 1 [] lines

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
