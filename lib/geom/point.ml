type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let manhattan p q = abs_float (p.x -. q.x) +. abs_float (p.y -. q.y)

let euclidean p q =
  let dx = p.x -. q.x and dy = p.y -. q.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let equal p q = p.x = q.x && p.y = q.y

let close ?(eps = 1e-9) p q =
  abs_float (p.x -. q.x) <= eps && abs_float (p.y -. q.y) <= eps

let midpoint p q = { x = (p.x +. q.x) /. 2.0; y = (p.y +. q.y) /. 2.0 }

let compare p q =
  let c = Float.compare p.x q.x in
  if c <> 0 then c else Float.compare p.y q.y

let pp ppf p = Format.fprintf ppf "(%g, %g)" p.x p.y

let to_string p = Format.asprintf "%a" pp p
