type t = { x0 : float; y0 : float; x1 : float; y1 : float }

let make xa ya xb yb =
  { x0 = Float.min xa xb;
    y0 = Float.min ya yb;
    x1 = Float.max xa xb;
    y1 = Float.max ya yb }

let square side = make 0.0 0.0 side side

let width r = r.x1 -. r.x0
let height r = r.y1 -. r.y0
let area r = width r *. height r

let contains r (p : Point.t) =
  p.x >= r.x0 && p.x <= r.x1 && p.y >= r.y0 && p.y <= r.y1

let bounding_box points =
  if Array.length points = 0 then invalid_arg "Rect.bounding_box: empty";
  let p0 = points.(0) in
  let r = ref (make p0.Point.x p0.Point.y p0.Point.x p0.Point.y) in
  Array.iter
    (fun (p : Point.t) ->
      r :=
        { x0 = Float.min !r.x0 p.x;
          y0 = Float.min !r.y0 p.y;
          x1 = Float.max !r.x1 p.x;
          y1 = Float.max !r.y1 p.y })
    points;
  !r

let half_perimeter r = width r +. height r

let pp ppf r =
  Format.fprintf ppf "[%g,%g]x[%g,%g]" r.x0 r.x1 r.y0 r.y1
