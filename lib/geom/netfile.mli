(** Plain-text net files, for exchanging pin placements between the
    command-line tools.

    Format: one pin per line as [x y] in µm, [#] comments and blank
    lines ignored; the first pin is the source n0. *)

val to_string : Net.t -> string

val write : string -> Net.t -> unit

val of_string : string -> (Net.t, string) result
(** Parse errors name the offending line. *)

val read : string -> (Net.t, string) result
