(** Axis-aligned rectangles, used for layout regions and bounding boxes. *)

type t = { x0 : float; y0 : float; x1 : float; y1 : float }
(** Invariant: [x0 <= x1] and [y0 <= y1]. *)

val make : float -> float -> float -> float -> t
(** [make x0 y0 x1 y1] normalises the corner order.  *)

val square : float -> t
(** [square side] is the region [\[0,side\] × \[0,side\]]. *)

val width : t -> float
val height : t -> float
val area : t -> float

val contains : t -> Point.t -> bool
(** Closed containment test. *)

val bounding_box : Point.t array -> t
(** Smallest rectangle containing all points.

    @raise Invalid_argument on an empty array. *)

val half_perimeter : t -> float
(** Half-perimeter wirelength lower bound of the box. *)

val pp : Format.formatter -> t -> unit
