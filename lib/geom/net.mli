(** Signal nets: a source pin and a set of sink pins in the Manhattan
    plane. Pin 0 is always the source n0; pins 1..k are sinks, following
    the paper's indexing N = {n0, n1, ..., nk}. *)

type t

val create : Point.t array -> t
(** [create pins] takes pin 0 as the source.

    @raise Invalid_argument if fewer than 2 pins are given or two pins
    coincide exactly. *)

val of_list : Point.t list -> t

val pins : t -> Point.t array
(** All pins; index 0 is the source. The returned array is a copy. *)

val pin : t -> int -> Point.t
val source : t -> Point.t
val size : t -> int
(** Total number of pins, k+1. *)

val num_sinks : t -> int
(** k, the number of sinks. *)

val sinks : t -> Point.t array

val bounding_box : t -> Rect.t

val pp : Format.formatter -> t -> unit
