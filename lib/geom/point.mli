(** Points in the Manhattan (rectilinear) plane.

    Coordinates are in micrometres, matching the units of the paper's
    interconnect technology (Table 1: Ω/µm, fF/µm, a 10 mm × 10 mm
    layout region). *)

type t = { x : float; y : float }

val make : float -> float -> t

val origin : t

val manhattan : t -> t -> float
(** [manhattan p q] is the L1 (rectilinear wiring) distance |px−qx|+|py−qy|,
    i.e. the wirelength of a shortest rectilinear connection of [p] and
    [q]. This is the edge cost d_ij of the paper. *)

val euclidean : t -> t -> float
(** [euclidean p q] is the L2 distance, used only for reporting. *)

val equal : t -> t -> bool
(** Exact coordinate equality. *)

val close : ?eps:float -> t -> t -> bool
(** [close p q] holds when both coordinates agree within [eps]
    (default 1e-9 µm). *)

val midpoint : t -> t -> t

val compare : t -> t -> int
(** Lexicographic order on (x, y); a total order usable in sets/maps. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(x, y)] in µm. *)

val to_string : t -> string
