let fresh_point rng (region : Rect.t) taken =
  (* Coincident pins would create zero-length wires; redraw on collision.
     With float coordinates collisions are essentially impossible, but the
     guard keeps Net.create's invariant unconditional. *)
  let rec draw () =
    let p =
      Point.make
        (Rng.float_in rng region.Rect.x0 region.Rect.x1)
        (Rng.float_in rng region.Rect.y0 region.Rect.y1)
    in
    if List.exists (Point.equal p) taken then draw () else p
  in
  draw ()

let uniform rng ~region ~pins =
  if pins < 2 then invalid_arg "Netgen.uniform: pins < 2";
  let acc = ref [] in
  for _ = 1 to pins do
    acc := fresh_point rng region !acc :: !acc
  done;
  Net.create (Array.of_list !acc)

let uniform_batch ~seed ~region ~pins ~trials =
  let master = Rng.create seed in
  Array.init trials (fun _ ->
      let g = Rng.split master in
      uniform g ~region ~pins)

let clustered rng ~region ~clusters ~pins =
  if pins < 2 then invalid_arg "Netgen.clustered: pins < 2";
  if clusters < 1 then invalid_arg "Netgen.clustered: clusters < 1";
  let spread_x = 0.05 *. Rect.width region
  and spread_y = 0.05 *. Rect.height region in
  let centres =
    Array.init clusters (fun _ -> fresh_point rng region [])
  in
  let clamp v lo hi = Float.max lo (Float.min hi v) in
  let acc = ref [] in
  for _ = 1 to pins do
    let c = Rng.choose rng centres in
    let rec draw () =
      let p =
        Point.make
          (clamp
             (c.Point.x +. Rng.float_in rng (-.spread_x) spread_x)
             region.Rect.x0 region.Rect.x1)
          (clamp
             (c.Point.y +. Rng.float_in rng (-.spread_y) spread_y)
             region.Rect.y0 region.Rect.y1)
      in
      if List.exists (Point.equal p) !acc then draw () else p
    in
    acc := draw () :: !acc
  done;
  Net.create (Array.of_list !acc)
