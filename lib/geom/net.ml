type t = { pins : Point.t array }

let create pins =
  if Array.length pins < 2 then
    invalid_arg "Net.create: a net needs a source and at least one sink";
  Array.iteri
    (fun i p ->
      for j = 0 to i - 1 do
        if Point.equal pins.(j) p then
          invalid_arg "Net.create: coincident pins"
      done)
    pins;
  { pins = Array.copy pins }

let of_list l = create (Array.of_list l)

let pins net = Array.copy net.pins
let pin net i = net.pins.(i)
let source net = net.pins.(0)
let size net = Array.length net.pins
let num_sinks net = Array.length net.pins - 1
let sinks net = Array.sub net.pins 1 (num_sinks net)

let bounding_box net = Rect.bounding_box net.pins

let pp ppf net =
  Format.fprintf ppf "@[<hov 2>net(%d pins):@ src=%a@ sinks=@[%a@]@]"
    (size net) Point.pp (source net)
    (Format.pp_print_array ~pp_sep:Format.pp_print_space Point.pp)
    (sinks net)
