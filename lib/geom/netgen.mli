(** Random net generation.

    The paper's experiments use nets whose pin locations are "randomly
    chosen from a uniform distribution in a square layout region"
    (Section 4), 50 trials per net size. *)

val uniform : Rng.t -> region:Rect.t -> pins:int -> Net.t
(** [uniform rng ~region ~pins] draws [pins] distinct pin locations
    uniformly in [region]; pin 0 is the source.

    @raise Invalid_argument if [pins < 2]. *)

val uniform_batch :
  seed:int -> region:Rect.t -> pins:int -> trials:int -> Net.t array
(** [uniform_batch ~seed ~region ~pins ~trials] generates a reproducible
    batch: trial [i] uses an independent generator split off a master
    generator seeded with [seed], so adding trials never perturbs
    earlier nets. *)

val clustered :
  Rng.t -> region:Rect.t -> clusters:int -> pins:int -> Net.t
(** [clustered rng ~region ~clusters ~pins] places pins around
    [clusters] uniformly-placed cluster centres with a spread of 5 % of
    the region size — a harsher, more realistic pin distribution used by
    the extension experiments.

    @raise Invalid_argument if [pins < 2] or [clusters < 1]. *)
