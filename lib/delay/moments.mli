(** Moment analysis of general (possibly cyclic) RC routing graphs.

    Elmore's tree formula does not apply once extra wires create
    cycles; the paper points to Chan–Karplus-style transformations [6]
    for the general case. This module computes the exact first moment
    of the impulse response directly from the conductance matrix:

    with the step source shorted, G the node conductance matrix
    (wire conductances plus the driver conductance at the source pin)
    and c the vector of node capacitances (pin loads plus half of each
    incident wire's capacitance — the π model), the first moment at
    every node is the solution of G·m = c.

    On trees this coincides exactly with {!Elmore.delays}, which is a
    tested invariant of the repository. *)

val node_capacitances : tech:Circuit.Technology.t -> Routing.t -> float array
(** The right-hand side c: per-vertex capacitance under the π model —
    pin loads plus half of every incident wire's capacitance. Exposed
    for the incremental oracle, which adjusts it by a candidate wire's
    half-capacitances instead of rebuilding. *)

val conductance_matrix :
  tech:Circuit.Technology.t -> Routing.t -> Numeric.Matrix.t
(** The system matrix G: wire conductances plus the driver conductance
    on the source diagonal, over all vertices. A candidate wire is one
    symmetric rank-1 term on top of this — the incremental oracle
    factors it once per greedy round. *)

val first_moments : tech:Circuit.Technology.t -> Routing.t -> float array
(** Per-vertex first moment (the generalised Elmore delay), for any
    connected routing graph.

    @raise Numeric.Lu.Singular on a malformed topology. *)

val sink_delays : tech:Circuit.Technology.t -> Routing.t -> (int * float) list

val max_delay : tech:Circuit.Technology.t -> Routing.t -> float
(** max over sinks of the first moment — the non-tree t_ED analogue. *)

val higher_moments :
  tech:Circuit.Technology.t -> Routing.t -> order:int -> float array array
(** [higher_moments ~tech r ~order] returns moments m_1..m_order (rows)
    of the voltage impulse response at every vertex, via the recursion
    m_{k+1} = G⁻¹·C·m_k. Used by the two-pole delay estimate.

    @raise Invalid_argument when [order < 1]. *)

val two_pole_fit : m1:float array -> m2:float array -> float array
(** The two-pole 50 %-threshold fit from given first and second
    moments — the per-vertex formula {!two_pole_delay} applies, split
    out so incrementally updated moments go through the identical
    arithmetic. *)

val two_pole_delay : tech:Circuit.Technology.t -> Routing.t -> float array
(** 50 %-threshold delay estimate per vertex from the first two
    moments, fitting a single dominant pole with a time-shift
    correction; falls back to ln 2 · m₁ when the fit degenerates.
    More accurate than raw m₁ against SPICE's 50 % metric. *)
