(** Pluggable delay oracles.

    The paper evaluates routings with SPICE but steers some heuristics
    with Elmore delay; the LDRG greedy loop can run against any of
    these oracles, which is how the repository's oracle-fidelity
    ablation (experiment X3 in DESIGN.md) is expressed. *)

type spice_config = {
  options : Spice.Engine.options;
  segmentation : Lumping.segmentation;
  include_inductance : bool;
}

type t =
  | Elmore_tree
      (** O(k) tree formula; raises on non-tree routings *)
  | First_moment
      (** exact first moment from the conductance matrix; any graph *)
  | Two_pole
      (** two-moment 50 % estimate; any graph *)
  | Spice of spice_config
      (** full transient simulation, 50 % threshold *)

val default_spice : spice_config
(** Trapezoidal, per-length segmentation, RC only. *)

val fast_spice : spice_config
(** Coarse stepping and 3 fixed segments per wire — for greedy loops. *)

val accurate_spice : spice_config
(** Fine stepping, 6-segment wires — for reported numbers. *)

val rlc_spice : spice_config
(** Like {!default_spice} with the Table 1 wire inductance included. *)

val name : t -> string
(** Short label for tables ("elmore", "spice", ...). *)

val sink_delays :
  t -> tech:Circuit.Technology.t -> Routing.t -> (int * float) list
(** Delay to every sink, as (vertex, seconds).

    @raise Invalid_argument when [Elmore_tree] is applied to a
    non-tree routing.
    @raise Failure when a SPICE simulation fails to settle. *)

val max_delay : t -> tech:Circuit.Technology.t -> Routing.t -> float
(** The objective t(G) = max over sinks. *)

val spice_horizon : tech:Circuit.Technology.t -> Routing.t -> float
(** Initial transient window used for SPICE runs: a small multiple of
    the slowest first moment (the engine extends it if the estimate is
    short). *)
