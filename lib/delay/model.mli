(** Pluggable delay oracles.

    The paper evaluates routings with SPICE but steers some heuristics
    with Elmore delay; the LDRG greedy loop can run against any of
    these oracles, which is how the repository's oracle-fidelity
    ablation (experiment X3 in DESIGN.md) is expressed.

    The [_result] variants carry operational failures (singular
    matrices, non-finite values, unsettled probes, unusable nets) as
    [Nontree_error.t] instead of exceptions; {!Robust} builds the
    retry-and-degrade policy on top of them. *)

type spice_config = {
  options : Spice.Engine.options;
  segmentation : Lumping.segmentation;
  include_inductance : bool;
}

type t =
  | Elmore_tree
      (** O(k) tree formula; [Invalid_net] on non-tree routings *)
  | First_moment
      (** exact first moment from the conductance matrix; any graph *)
  | Two_pole
      (** two-moment 50 % estimate; any graph *)
  | Spice of spice_config
      (** full transient simulation, 50 % threshold *)

val default_spice : spice_config
(** Trapezoidal, per-length segmentation, RC only. *)

val fast_spice : spice_config
(** Coarse stepping and 3 fixed segments per wire — for greedy loops. *)

val accurate_spice : spice_config
(** Fine stepping, 6-segment wires — for reported numbers. *)

val rlc_spice : spice_config
(** Like {!default_spice} with the Table 1 wire inductance included. *)

val name : t -> string
(** Short label for tables ("elmore", "spice", ...). *)

val sink_delays_result :
  ?horizon_scale:float ->
  t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  ((int * float) list, Nontree_error.t) result
(** Delay to every sink, as (vertex, seconds). All returned delays are
    guaranteed finite; any NaN/Inf, singular factorisation, unsettled
    probe, or tree-only-oracle-on-a-graph condition becomes an [Error].
    [horizon_scale] (default 1) stretches the SPICE transient window —
    the retry-with-refinement lever of {!Robust}. *)

val sink_delays :
  t -> tech:Circuit.Technology.t -> Routing.t -> (int * float) list
(** Legacy variant of {!sink_delays_result}.

    @raise Nontree_error.Error on any operational failure. *)

val max_delay_result :
  ?horizon_scale:float ->
  t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  (float, Nontree_error.t) result
(** The objective t(G) = max over sinks, as a result. *)

val max_delay : t -> tech:Circuit.Technology.t -> Routing.t -> float
(** The objective t(G) = max over sinks.

    @raise Nontree_error.Error on any operational failure. *)

val spice_horizon : tech:Circuit.Technology.t -> Routing.t -> float
(** Initial transient window used for SPICE runs: a small multiple of
    the slowest first moment (the engine extends it if the estimate is
    short). *)
