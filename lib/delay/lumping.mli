(** Lowering a routing topology to a simulatable circuit.

    Following the paper's SPICE model (Section 2): wire resistance and
    capacitance are proportional to length (Table 1 values); each wire
    is expanded into a chain of lumped π-segments; the source pin is
    driven by the driver resistance from an ideal step source; and a
    sink loading capacitance sits at every pin. Wire widths from the
    WSORG formulation scale resistance down and capacitance up. *)

type segmentation =
  | Fixed of int  (** every edge becomes exactly this many π-segments *)
  | Per_length of { unit_length : float; max_segments : int }
      (** one segment per [unit_length] µm, at least 1, at most
          [max_segments] — long wires get more segments *)

val default_segmentation : segmentation
(** [Per_length { unit_length = 1000.0; max_segments = 6 }]. *)

val segments_for : segmentation -> float -> int
(** Number of segments chosen for an edge of a given length. *)

val source_node_name : string
(** Name of the driven source-pin node, ["n0"]. *)

val vertex_node_name : int -> string
(** ["n<i>"] — the circuit node of routing vertex [i]. *)

val pi_segments :
  segmentation:segmentation ->
  tech:Circuit.Technology.t ->
  length:float ->
  width:float ->
  int * float * float
(** [(n_seg, seg_r, seg_c)] for one wire: the segment count and the
    per-segment resistance and capacitance, computed exactly as
    {!circuit_of_routing} stamps them — the incremental oracle uses
    this to stamp an added wire without rebuilding the netlist. *)

val circuit_of_routing :
  ?segmentation:segmentation ->
  ?include_inductance:bool ->
  ?input:Circuit.Waveform.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  Circuit.Netlist.t * string list
(** [circuit_of_routing ~tech r] is the netlist together with the node
    names of the net's sinks (in sink order n1..nk).

    Defaults: {!default_segmentation}, no inductance (the RC model the
    Elmore comparisons assume; pass [~include_inductance:true] for the
    full Table 1 RLC model), and a 0→1 V ideal step at t=0. *)
