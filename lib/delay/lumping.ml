open Circuit

type segmentation =
  | Fixed of int
  | Per_length of { unit_length : float; max_segments : int }

let default_segmentation = Per_length { unit_length = 1000.0; max_segments = 6 }

let segments_for seg length =
  match seg with
  | Fixed n ->
      if n < 1 then invalid_arg "Lumping: segments must be >= 1";
      n
  | Per_length { unit_length; max_segments } ->
      let n = int_of_float (ceil (length /. unit_length)) in
      Int.max 1 (Int.min max_segments n)

let source_node_name = "n0"
let vertex_node_name i = Printf.sprintf "n%d" i

(* The single source of truth for how one wire lowers to π-segments:
   both the full netlist builder below and the incremental stamp-delta
   path must derive bit-identical per-segment R and C values. *)
let pi_segments ~segmentation ~tech ~length ~width =
  let n_seg = segments_for segmentation length in
  let seg_len = length /. float_of_int n_seg in
  let seg_r = Technology.wire_resistance_of tech ~length:seg_len ~width in
  let seg_c = Technology.wire_capacitance_of tech ~length:seg_len ~width in
  (n_seg, seg_r, seg_c)

let default_input = Waveform.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 }

let circuit_of_routing ?(segmentation = default_segmentation)
    ?(include_inductance = false) ?(input = default_input) ~tech r =
  let nl = Netlist.create () in
  let vertex_node =
    Array.init (Routing.num_vertices r) (fun i ->
        Netlist.node nl (vertex_node_name i))
  in
  (* Driver: ideal step through the driver resistance into the source
     pin, as in the paper ("the root of the tree is driven by a
     resistor connected to the source pin"). *)
  let drive = Netlist.node nl "drive" in
  Netlist.vsource nl ~name:"Vin" drive Netlist.ground input;
  Netlist.resistor nl ~name:"Rdrv" drive vertex_node.(0)
    tech.Technology.driver_resistance;
  (* Sink loading capacitance at every pin of the net. *)
  for i = 0 to Routing.num_terminals r - 1 do
    Netlist.capacitor nl
      ~name:(Printf.sprintf "Cpin%d" i)
      vertex_node.(i) Netlist.ground tech.Technology.sink_capacitance
  done;
  (* Wires: chains of pi-segments. Each segment contributes half its
     capacitance at each end, so interior nodes see the full per-segment
     capacitance and edge endpoints see half. *)
  List.iter
    (fun (e : Graphs.Wgraph.edge) ->
      let width = Routing.width r e.u e.v in
      let length = e.w in
      let n_seg, seg_r, seg_c = pi_segments ~segmentation ~tech ~length ~width in
      let seg_len = length /. float_of_int n_seg in
      let seg_l = Technology.wire_inductance_of tech ~length:seg_len in
      let prefix = Printf.sprintf "e%d_%d" e.u e.v in
      let nodes =
        Array.init (n_seg + 1) (fun s ->
            if s = 0 then vertex_node.(e.u)
            else if s = n_seg then vertex_node.(e.v)
            else Netlist.fresh_node nl prefix)
      in
      for s = 0 to n_seg - 1 do
        let a = nodes.(s) and b = nodes.(s + 1) in
        if include_inductance then begin
          let mid = Netlist.fresh_node nl (prefix ^ "l") in
          Netlist.resistor nl ~name:(Printf.sprintf "R%s_%d" prefix s) a mid
            seg_r;
          Netlist.inductor nl ~name:(Printf.sprintf "L%s_%d" prefix s) mid b
            seg_l
        end
        else
          Netlist.resistor nl ~name:(Printf.sprintf "R%s_%d" prefix s) a b seg_r;
        Netlist.capacitor nl
          ~name:(Printf.sprintf "C%s_%da" prefix s)
          a Netlist.ground (seg_c /. 2.0);
        Netlist.capacitor nl
          ~name:(Printf.sprintf "C%s_%db" prefix s)
          b Netlist.ground (seg_c /. 2.0)
      done)
    (Graphs.Wgraph.edges (Routing.graph r));
  let sink_names =
    List.map (fun i -> vertex_node_name i) (Routing.sinks r)
  in
  (nl, sink_names)
