open Circuit

(* Node capacitances under the pi model: pin load plus half of every
   incident wire's capacitance. *)
let node_capacitances ~tech r =
  let n = Routing.num_vertices r in
  let c = Array.make n 0.0 in
  for v = 0 to Routing.num_terminals r - 1 do
    c.(v) <- tech.Technology.sink_capacitance
  done;
  List.iter
    (fun (e : Graphs.Wgraph.edge) ->
      let cap =
        Technology.wire_capacitance_of tech ~length:e.w
          ~width:(Routing.width r e.u e.v)
      in
      c.(e.u) <- c.(e.u) +. (cap /. 2.0);
      c.(e.v) <- c.(e.v) +. (cap /. 2.0))
    (Graphs.Wgraph.edges (Routing.graph r));
  c

(* Conductance matrix with the ideal step source shorted: wire
   conductances between vertices plus the driver conductance on the
   source pin's diagonal. *)
let conductance_matrix ~tech r =
  let n = Routing.num_vertices r in
  let g = Numeric.Matrix.create n n in
  List.iter
    (fun (e : Graphs.Wgraph.edge) ->
      let cond =
        1.0
        /. Technology.wire_resistance_of tech ~length:e.w
             ~width:(Routing.width r e.u e.v)
      in
      Numeric.Matrix.add_to g e.u e.u cond;
      Numeric.Matrix.add_to g e.v e.v cond;
      Numeric.Matrix.add_to g e.u e.v (-.cond);
      Numeric.Matrix.add_to g e.v e.u (-.cond))
    (Graphs.Wgraph.edges (Routing.graph r));
  Numeric.Matrix.add_to g (Routing.source r) (Routing.source r)
    (1.0 /. tech.Technology.driver_resistance);
  g

let first_moments ~tech r =
  let g = conductance_matrix ~tech r in
  let c = node_capacitances ~tech r in
  Numeric.Backend.solve (Numeric.Backend.factor g) c

let sink_delays ~tech r =
  let m = first_moments ~tech r in
  List.map (fun v -> (v, m.(v))) (Routing.sinks r)

let max_delay ~tech r =
  List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 (sink_delays ~tech r)

let higher_moments ~tech r ~order =
  if order < 1 then invalid_arg "Moments.higher_moments: order < 1";
  let g = conductance_matrix ~tech r in
  let lu = Numeric.Backend.factor g in
  let c = node_capacitances ~tech r in
  let n = Array.length c in
  let result = Array.make order [||] in
  (* m_1 = G^-1 c; m_{k+1} = G^-1 (C .* m_k). *)
  let current = ref (Numeric.Backend.solve lu c) in
  result.(0) <- !current;
  for k = 1 to order - 1 do
    let rhs = Array.init n (fun i -> c.(i) *. !current.(i)) in
    current := Numeric.Backend.solve lu rhs;
    result.(k) <- !current
  done;
  result

let two_pole_fit ~m1 ~m2 =
  Array.init (Array.length m1) (fun v ->
      (* Fit exp(-s*delta)/(1+s*tau): matching series coefficients
         gives tau = sqrt(2 m2 - m1^2), delta = m1 - tau. *)
      let disc = (2.0 *. m2.(v)) -. (m1.(v) *. m1.(v)) in
      if disc <= 0.0 then m1.(v) *. log 2.0
      else begin
        let tau = sqrt disc in
        if tau >= m1.(v) then m1.(v) *. log 2.0
        else (m1.(v) -. tau) +. (tau *. log 2.0)
      end)

let two_pole_delay ~tech r =
  let moments = higher_moments ~tech r ~order:2 in
  two_pole_fit ~m1:moments.(0) ~m2:moments.(1)
