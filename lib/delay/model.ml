type spice_config = {
  options : Spice.Engine.options;
  segmentation : Lumping.segmentation;
  include_inductance : bool;
}

type t =
  | Elmore_tree
  | First_moment
  | Two_pole
  | Spice of spice_config

let default_spice =
  { options = Spice.Engine.default_options;
    segmentation = Lumping.default_segmentation;
    include_inductance = false }

let fast_spice =
  { options = Spice.Engine.fast_options;
    segmentation = Lumping.Fixed 2;
    include_inductance = false }

let accurate_spice =
  { options = Spice.Engine.accurate_options;
    segmentation = Lumping.Per_length { unit_length = 500.0; max_segments = 10 };
    include_inductance = false }

let rlc_spice = { default_spice with include_inductance = true }

let name = function
  | Elmore_tree -> "elmore"
  | First_moment -> "moment1"
  | Two_pole -> "two-pole"
  | Spice { include_inductance = true; _ } -> "spice-rlc"
  | Spice _ -> "spice"

let spice_horizon ~tech r =
  (* t50 of a single-pole response is ~0.69 m1; a 4x window comfortably
     covers realistic pole spreads, and the engine doubles on demand. *)
  4.0 *. Moments.max_delay ~tech r

let spice_sink_delays config ~tech r =
  let nl, sink_names =
    Lumping.circuit_of_routing ~segmentation:config.segmentation
      ~include_inductance:config.include_inductance ~tech r
  in
  let horizon = spice_horizon ~tech r in
  let delays =
    Spice.Engine.threshold_delays ~options:config.options nl
      ~probes:sink_names ~horizon
  in
  List.map2
    (fun v (probe, d) ->
      match d with
      | Some t -> (v, t)
      | None ->
          failwith
            (Printf.sprintf "Model: SPICE probe %s never settled" probe))
    (Routing.sinks r) delays

let sink_delays model ~tech r =
  match model with
  | Elmore_tree -> Elmore.sink_delays ~tech r
  | First_moment -> Moments.sink_delays ~tech r
  | Two_pole ->
      let d = Moments.two_pole_delay ~tech r in
      List.map (fun v -> (v, d.(v))) (Routing.sinks r)
  | Spice config -> spice_sink_delays config ~tech r

let max_delay model ~tech r =
  List.fold_left
    (fun acc (_, d) -> Float.max acc d)
    0.0
    (sink_delays model ~tech r)
