type spice_config = {
  options : Spice.Engine.options;
  segmentation : Lumping.segmentation;
  include_inductance : bool;
}

type t =
  | Elmore_tree
  | First_moment
  | Two_pole
  | Spice of spice_config

let default_spice =
  { options = Spice.Engine.default_options;
    segmentation = Lumping.default_segmentation;
    include_inductance = false }

let fast_spice =
  { options = Spice.Engine.fast_options;
    segmentation = Lumping.Fixed 2;
    include_inductance = false }

let accurate_spice =
  { options = Spice.Engine.accurate_options;
    segmentation = Lumping.Per_length { unit_length = 500.0; max_segments = 10 };
    include_inductance = false }

let rlc_spice = { default_spice with include_inductance = true }

let name = function
  | Elmore_tree -> "elmore"
  | First_moment -> "moment1"
  | Two_pole -> "two-pole"
  | Spice { include_inductance = true; _ } -> "spice-rlc"
  | Spice _ -> "spice"

let spice_horizon ~tech r =
  (* t50 of a single-pole response is ~0.69 m1; a 4x window comfortably
     covers realistic pole spreads, and the engine doubles on demand. *)
  4.0 *. Moments.max_delay ~tech r

let ( let* ) = Result.bind

let singular ~stage k =
  if k < 0 then Nontree_error.Non_finite { stage; value = Float.nan }
  else Nontree_error.Singular_matrix { stage; column = k }

let finite_delays ~stage ds =
  let rec go = function
    | [] -> Ok ds
    | (_, d) :: rest ->
        if Float.is_finite d then go rest
        else Error (Nontree_error.Non_finite { stage; value = d })
  in
  go ds

(* Fault injection point for the moment-based oracles (the SPICE oracle
   has its own inside the engine). *)
let injected ~stage =
  match Fault.draw ~stage with
  | None -> None
  | Some Fault.Singular_stamp ->
      Some (Nontree_error.Singular_matrix { stage = stage ^ ".injected"; column = 0 })
  | Some (Fault.Nan_value | Fault.Never_settles) ->
      Some (Nontree_error.Non_finite { stage = stage ^ ".injected"; value = Float.nan })

let spice_sink_delays_result ~horizon_scale config ~tech r =
  match
    let nl, sink_names =
      Lumping.circuit_of_routing ~segmentation:config.segmentation
        ~include_inductance:config.include_inductance ~tech r
    in
    let horizon = spice_horizon ~tech r *. horizon_scale in
    (nl, sink_names, horizon)
  with
  | exception Numeric.Lu.Singular k -> Error (singular ~stage:"spice.horizon" k)
  | nl, sink_names, horizon ->
      if not (Float.is_finite horizon && horizon > 0.0) then
        Error (Nontree_error.Non_finite { stage = "spice.horizon"; value = horizon })
      else
        let* delays =
          Spice.Engine.threshold_delays_result ~options:config.options nl
            ~probes:sink_names ~horizon
        in
        let rec combine acc vs ds =
          match (vs, ds) with
          | [], [] -> Ok (List.rev acc)
          | v :: vs, (_, Some t) :: ds -> combine ((v, t) :: acc) vs ds
          | _ :: _, (probe, None) :: _ ->
              Error (Nontree_error.Probe_never_settled { probe; horizon })
          | _ -> invalid_arg "Model: sink/probe length mismatch"
        in
        let* ds = combine [] (Routing.sinks r) delays in
        finite_delays ~stage:"spice.delays" ds

let sink_delays_result ?(horizon_scale = 1.0) model ~tech r =
  match model with
  | Elmore_tree -> (
      if not (Routing.is_tree r) then
        Error (Nontree_error.Invalid_net "Elmore oracle requires a tree routing")
      else
        match Elmore.sink_delays ~tech r with
        | ds -> finite_delays ~stage:"elmore" ds
        | exception Invalid_argument msg -> Error (Nontree_error.Invalid_net msg))
  | First_moment -> (
      match injected ~stage:"moments" with
      | Some e -> Error e
      | None -> (
          match Moments.sink_delays ~tech r with
          | ds -> finite_delays ~stage:"moments" ds
          | exception Numeric.Lu.Singular k ->
              Error (singular ~stage:"moments" k)))
  | Two_pole -> (
      match injected ~stage:"moments" with
      | Some e -> Error e
      | None -> (
          match Moments.two_pole_delay ~tech r with
          | d ->
              finite_delays ~stage:"two-pole"
                (List.map (fun v -> (v, d.(v))) (Routing.sinks r))
          | exception Numeric.Lu.Singular k ->
              Error (singular ~stage:"two-pole" k)))
  | Spice config -> spice_sink_delays_result ~horizon_scale config ~tech r

let sink_delays model ~tech r =
  match sink_delays_result model ~tech r with
  | Ok ds -> ds
  | Error e -> Nontree_error.raise_error e

let max_delay_result ?horizon_scale model ~tech r =
  let* ds = sink_delays_result ?horizon_scale model ~tech r in
  Ok (List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 ds)

let max_delay model ~tech r =
  List.fold_left
    (fun acc (_, d) -> Float.max acc d)
    0.0
    (sink_delays model ~tech r)
