let src =
  Logs.Src.create "nontree.robust" ~doc:"Fault-tolerant delay-oracle layer"

module Log = (val Logs.src_log src : Logs.LOG)

type policy = { max_attempts : int; allow_fallback : bool }

let default_policy = { max_attempts = 3; allow_fallback = true }

(* Each refined attempt halves the timestep (doubling steps_per_chunk),
   adds pi-segments, and doubles the transient horizon: the three knobs
   that cure a non-settling or numerically rough SPICE probe. *)
let refine_spice (c : Model.spice_config) ~attempt =
  if attempt <= 1 then c
  else begin
    let mult = 1 lsl (attempt - 1) in
    let extra_segments = 2 * (attempt - 1) in
    let options =
      { c.Model.options with
        Spice.Engine.steps_per_chunk =
          c.Model.options.Spice.Engine.steps_per_chunk * mult }
    in
    let segmentation =
      match c.Model.segmentation with
      | Lumping.Fixed n -> Lumping.Fixed (n + extra_segments)
      | Lumping.Per_length { unit_length; max_segments } ->
          Lumping.Per_length
            { unit_length = unit_length /. float_of_int mult;
              max_segments = max_segments + extra_segments }
    in
    { c with Model.options; segmentation }
  end

let refined_model model ~attempt =
  match model with
  | Model.Spice c when attempt > 1 -> Model.Spice (refine_spice c ~attempt)
  | m -> m

let retryable = function
  | Nontree_error.Invalid_net _ -> false
  | Nontree_error.Singular_matrix _ | Nontree_error.Non_finite _
  | Nontree_error.Probe_never_settled _ ->
      true

(* Degradation order: SPICE -> exact first moment -> Elmore (trees
   only). Each step trades fidelity for a strictly simpler numeric
   path; Elmore is a closed-form traversal that cannot fail on a valid
   tree. *)
let fallback_chain model r =
  let elmore = if Routing.is_tree r then [ Model.Elmore_tree ] else [] in
  match model with
  | Model.Spice _ | Model.Two_pole -> Model.First_moment :: elmore
  | Model.First_moment -> elmore
  | Model.Elmore_tree -> []

let count_fallback = function
  | Model.Elmore_tree -> Nontree_error.Counters.incr_elmore_fallbacks ()
  | _ -> Nontree_error.Counters.incr_moment_fallbacks ()

(* Process-wide tally of robust oracle evaluations — the denominator
   the bench harness reports next to cache hit rates. A registry
   counter, so it lands in nontree-obs-v1 manifests as
   "oracle.evaluations". *)
let evaluation_counter = Obs.Counter.make "oracle.evaluations"

(* Wall-time distribution of one robust evaluation (retries, fallback
   and all); populated only while observability is enabled. *)
let evaluation_seconds =
  Obs.Histogram.make "oracle.eval_seconds"
    ~buckets:[| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let evaluation_count () = Obs.Counter.value evaluation_counter
let reset_evaluation_count () = Obs.Counter.set evaluation_counter 0

let sink_delays ?(policy = default_policy) ~model ~tech r =
  if policy.max_attempts < 1 then
    invalid_arg "Robust.sink_delays: max_attempts must be >= 1";
  Obs.Counter.incr evaluation_counter;
  Obs.timed evaluation_seconds @@ fun () ->
  (* Domain-local window: an evaluation runs on one domain, so this
     counts exactly the faults injected into *this* evaluation even
     while other domains inject concurrently. *)
  let injected_before = Nontree_error.Counters.faults_injected_local () in
  let rec attempt n =
    let scale = float_of_int (1 lsl (n - 1)) in
    match
      Model.sink_delays_result ~horizon_scale:scale
        (refined_model model ~attempt:n)
        ~tech r
    with
    | Ok ds -> Ok ds
    | Error e when retryable e && n < policy.max_attempts ->
        Nontree_error.Counters.incr_retries ();
        Log.info (fun f ->
            f "oracle %s attempt %d/%d failed (%s); retrying refined"
              (Model.name model) n policy.max_attempts
              (Nontree_error.to_string e));
        attempt (n + 1)
    | Error e -> Error e
  in
  let result =
    match attempt 1 with
    | Ok ds -> Ok ds
    | Error e when retryable e && policy.allow_fallback ->
        let rec fall last_err = function
          | [] -> Error last_err
          | m :: rest -> (
              count_fallback m;
              Log.warn (fun f ->
                  f "degrading oracle %s -> %s after %s" (Model.name model)
                    (Model.name m)
                    (Nontree_error.to_string last_err));
              match Model.sink_delays_result m ~tech r with
              | Ok ds -> Ok ds
              | Error e' -> fall e' rest)
        in
        fall e (fallback_chain model r)
    | Error e -> Error e
  in
  (match result with
  | Ok _ ->
      let survived =
        Nontree_error.Counters.faults_injected_local () - injected_before
      in
      if survived > 0 then Nontree_error.Counters.add_faults_survived survived
  | Error e ->
      Nontree_error.Counters.incr_oracle_errors ();
      Log.err (fun f ->
          f "oracle %s failed after retries and fallback: %s"
            (Model.name model)
            (Nontree_error.to_string e)));
  result

let sink_delays_exn ?policy ~model ~tech r =
  match sink_delays ?policy ~model ~tech r with
  | Ok ds -> ds
  | Error e -> Nontree_error.raise_error e

let max_delay ?policy ~model ~tech r =
  Result.map
    (List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0)
    (sink_delays ?policy ~model ~tech r)

let max_delay_exn ?policy ~model ~tech r =
  match max_delay ?policy ~model ~tech r with
  | Ok d -> d
  | Error e -> Nontree_error.raise_error e
