(** Fault-tolerant delay evaluation: bounded retry-with-refinement,
    then graceful degradation through cheaper oracles.

    The LDRG/SLDRG loops issue O(k²) SPICE transients per iteration; a
    single non-settling probe or near-singular MNA matrix used to abort
    a whole 50-net × 4-size experiment. This layer guarantees that one
    bad evaluation costs at most a logged fallback:

    + the primary oracle is attempted up to [max_attempts] times, each
      retry with halved timestep, extra π-segments and a doubled
      transient horizon ({!refine_spice});
    + on continued failure it degrades SPICE → first moment → Elmore
      (trees only), recording each degradation in
      {!Nontree_error.Counters};
    + [Invalid_net] errors are never retried — no refinement fixes a
      broken input.

    With fault injection disabled and a healthy net, the first attempt
    runs the unmodified oracle, so results are bit-identical to calling
    {!Model.sink_delays} directly. Diagnostics go to the [nontree.robust]
    [Logs] source. *)

type policy = {
  max_attempts : int;  (** attempts with the primary oracle, >= 1 *)
  allow_fallback : bool;  (** degrade to cheaper oracles on failure *)
}

val default_policy : policy
(** 3 attempts, fallback enabled. *)

val refine_spice : Model.spice_config -> attempt:int -> Model.spice_config
(** The refinement schedule (exposed for tests): attempt [n] runs with
    [steps_per_chunk × 2^(n-1)], segmentation deepened by [2(n-1)]
    segments, and — via [horizon_scale] — a [2^(n-1)]× transient
    window. Attempt 1 is the unmodified configuration. *)

val fallback_chain : Model.t -> Routing.t -> Model.t list
(** The degradation order tried after the primary oracle is exhausted;
    Elmore appears only for tree routings. *)

val sink_delays :
  ?policy:policy ->
  model:Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  ((int * float) list, Nontree_error.t) result

val sink_delays_exn :
  ?policy:policy ->
  model:Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  (int * float) list
(** @raise Nontree_error.Error when retries and fallback are exhausted. *)

val max_delay :
  ?policy:policy ->
  model:Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  (float, Nontree_error.t) result

val max_delay_exn :
  ?policy:policy ->
  model:Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  float
(** @raise Nontree_error.Error when retries and fallback are exhausted. *)

val evaluation_count : unit -> int
(** Process-wide number of robust oracle evaluations ({!sink_delays}
    entries, across all domains) since the last
    {!reset_evaluation_count} — the oracle-call count the bench
    harness records next to wall time and cache hit rates. *)

val reset_evaluation_count : unit -> unit
