open Circuit

let pin_capacitance tech r v =
  if v < Routing.num_terminals r then tech.Technology.sink_capacitance else 0.0

let edge_r tech r rooted v =
  let parent = rooted.Graphs.Rooted.parent.(v) in
  Technology.wire_resistance_of tech
    ~length:rooted.Graphs.Rooted.edge_weight.(v)
    ~width:(Routing.width r parent v)

let edge_c tech r rooted v =
  let parent = rooted.Graphs.Rooted.parent.(v) in
  Technology.wire_capacitance_of tech
    ~length:rooted.Graphs.Rooted.edge_weight.(v)
    ~width:(Routing.width r parent v)

let delays ~tech r =
  let rooted = Routing.rooted r in
  let n = Routing.num_vertices r in
  (* Subtree capacitances: each vertex carries its pin load plus the
     full capacitance of its parent edge, so the subtree sum at v is
     C_v plus that edge's own capacitance — the formula then charges
     only half the edge cap through its own resistance via the c/2
     term, and the structure below through the full sum. *)
  let own v =
    pin_capacitance tech r v
    +. if v = rooted.Graphs.Rooted.root then 0.0 else edge_c tech r rooted v
  in
  let subtree = Graphs.Rooted.fold_subtree_sums rooted own in
  let rd = tech.Technology.driver_resistance in
  let t = Array.make n 0.0 in
  (* subtree.(root) is C_n0, the whole net's capacitance. *)
  t.(rooted.Graphs.Rooted.root) <- rd *. subtree.(rooted.Graphs.Rooted.root);
  Array.iter
    (fun v ->
      if v <> rooted.Graphs.Rooted.root then begin
        let parent = rooted.Graphs.Rooted.parent.(v) in
        let r_e = edge_r tech r rooted v in
        let c_e = edge_c tech r rooted v in
        (* C_j in the paper's formula excludes e_j itself: subtract the
           edge capacitance folded into the subtree sum. *)
        let c_below = subtree.(v) -. c_e in
        t.(v) <- t.(parent) +. (r_e *. ((c_e /. 2.0) +. c_below))
      end)
    rooted.Graphs.Rooted.order;
  t

let sink_delays ~tech r =
  let t = delays ~tech r in
  List.map (fun v -> (v, t.(v))) (Routing.sinks r)

let max_delay ~tech r =
  List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 (sink_delays ~tech r)

let total_capacitance ~tech r =
  let wire =
    List.fold_left
      (fun acc (e : Graphs.Wgraph.edge) ->
        acc
        +. Technology.wire_capacitance_of tech ~length:e.w
             ~width:(Routing.width r e.u e.v))
      0.0
      (Graphs.Wgraph.edges (Routing.graph r))
  in
  wire
  +. (float_of_int (Routing.num_terminals r) *. tech.Technology.sink_capacitance)
