(** Elmore delay for routing trees (Section 2, equation 1).

    With the net rooted at the source n0, edge e_i joining pin n_i to
    its parent, r/c proportional to wirelength, C_i the total
    capacitance of the subtree below n_i (sink loads plus wire
    capacitance), and r_d the driver resistance:

    t_ED(n_i) = r_d·C_n0 + Σ_{e_j ∈ path(n0,n_i)} r_ej·(c_ej/2 + C_j)

    Computed in O(k) as Rubinstein–Penfield–Horowitz observed. Only
    defined for trees; the non-tree generalisation is {!Moments}. *)

val delays : tech:Circuit.Technology.t -> Routing.t -> float array
(** Per-vertex Elmore delay (seconds), index-aligned with the routing's
    vertices; the source reads the common r_d·C_n0 term.

    @raise Invalid_argument when the routing is not a tree. *)

val sink_delays : tech:Circuit.Technology.t -> Routing.t -> (int * float) list
(** Delays restricted to the net's sinks, as (vertex, delay) pairs. *)

val max_delay : tech:Circuit.Technology.t -> Routing.t -> float
(** The tree objective t_ED(T) = max over sinks. *)

val total_capacitance : tech:Circuit.Technology.t -> Routing.t -> float
(** C_n0: all wire capacitance plus every pin's load capacitance. *)
