(** Elmore Routing Tree construction.

    The ERT algorithm of Boese, Kahng, McCoy and Robins ("Towards
    Optimal Routing Trees" [4]) grows a tree Prim-style from the
    source: at every step it connects some unconnected pin to some
    tree pin, choosing the attachment that minimises the maximum
    Elmore delay of the resulting partial tree. Boese et al. found the
    resulting trees within ~2 % of delay-optimal on average, making ERT
    the strongest tree baseline the paper compares against (Tables 6
    and 7).

    [construct_weighted] generalises the objective to the
    criticality-weighted sum Σ αᵢ·t(nᵢ) of the critical-sink
    formulation (Section 5.1). *)

val construct : tech:Circuit.Technology.t -> Geom.Net.t -> Routing.t
(** The max-delay ERT over a net (vertex indices = pin indices). *)

val construct_critical :
  tech:Circuit.Technology.t -> critical:int -> Geom.Net.t -> Routing.t
(** SERT-C-style construction for a single identified critical sink
    (Boese, Kahng & Robins [5]): the critical sink is connected to the
    source *first*, by a direct wire, and the remaining pins are then
    attached greedily so as to least increase the critical sink's
    Elmore delay (with a tiny average-delay tie-break).

    @raise Invalid_argument unless [critical] is a sink index 1..k. *)

val construct_weighted :
  tech:Circuit.Technology.t -> alphas:float array -> Geom.Net.t -> Routing.t
(** ERT growth minimising Σ αᵢ·t(nᵢ) over connected sinks; [alphas]
    has one non-negative weight per sink (index 0 = sink n1). A tiny
    uniform tie-breaking weight (10⁻⁶ of the largest α) is added to
    every sink so that sparse criticality vectors still produce
    sensible trees for the unweighted sinks.

    @raise Invalid_argument when the weight count differs from the
    sink count or any weight is negative. *)
