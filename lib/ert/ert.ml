open Circuit

(* Partial-tree state grown one pin at a time. Insertion order is a
   topological order (parents precede children), which makes each
   candidate evaluation a pair of linear sweeps. *)
type state = {
  points : Geom.Point.t array;
  rd : float;
  r_per_um : float;
  c_per_um : float;
  c_pin : float;
  parent : int array;
  lens : float array;  (* edge length to parent *)
  in_tree : bool array;
  order : int array;
  mutable size : int;
  (* scratch *)
  cap : float array;
  delay : float array;
}

let make_state ~tech net =
  let points = Geom.Net.pins net in
  let n = Array.length points in
  let lens = Array.make n 0.0 in
  { points;
    rd = tech.Technology.driver_resistance;
    r_per_um = tech.Technology.wire_resistance;
    c_per_um = tech.Technology.wire_capacitance;
    c_pin = tech.Technology.sink_capacitance;
    parent = Array.make n (-1);
    lens;
    in_tree =
      (let a = Array.make n false in
       a.(0) <- true;
       a);
    order =
      (let a = Array.make n 0 in
       a.(0) <- 0;
       a);
    size = 1;
    cap = Array.make n 0.0;
    delay = Array.make n 0.0 }

(* Evaluate the objective of the current tree with candidate pin [v]
   attached to tree pin [u] by an edge of length [lv]. [objective]
   folds over (sink, delay) of every connected sink including v. *)
let eval_candidate st ~u ~v ~lv ~objective =
  let cw l = st.c_per_um *. l in
  let rw l = st.r_per_um *. l in
  (* Subtree capacitances, with the candidate folded into u's chain of
     ancestors. own(w) includes w's parent-edge wire capacitance. *)
  for i = 0 to st.size - 1 do
    let w = st.order.(i) in
    st.cap.(w) <- st.c_pin +. (if w = 0 then 0.0 else cw st.lens.(w))
  done;
  for i = st.size - 1 downto 1 do
    let w = st.order.(i) in
    st.cap.(st.parent.(w)) <- st.cap.(st.parent.(w)) +. st.cap.(w)
  done;
  let cand_cap = st.c_pin +. cw lv in
  let rec bump w =
    st.cap.(w) <- st.cap.(w) +. cand_cap;
    if w <> 0 then bump st.parent.(w)
  in
  bump u;
  (* Delays root-down. *)
  st.delay.(0) <- st.rd *. st.cap.(0);
  for i = 1 to st.size - 1 do
    let w = st.order.(i) in
    let ce = cw st.lens.(w) in
    st.delay.(w) <-
      st.delay.(st.parent.(w))
      +. (rw st.lens.(w) *. ((ce /. 2.0) +. st.cap.(w) -. ce))
  done;
  let cand_delay =
    st.delay.(u) +. (rw lv *. ((cw lv /. 2.0) +. st.c_pin))
  in
  let acc = ref (objective v cand_delay 0.0) in
  for i = 1 to st.size - 1 do
    let w = st.order.(i) in
    acc := objective w st.delay.(w) !acc
  done;
  !acc

let grow st ~objective =
  let n = Array.length st.points in
  while st.size < n do
    let best = ref None in
    for v = 1 to n - 1 do
      if not st.in_tree.(v) then
        for i = 0 to st.size - 1 do
          let u = st.order.(i) in
          let lv = Geom.Point.manhattan st.points.(u) st.points.(v) in
          let score = eval_candidate st ~u ~v ~lv ~objective in
          match !best with
          | Some (s, _, _, _) when s <= score -> ()
          | _ -> best := Some (score, u, v, lv)
        done
    done;
    match !best with
    | None -> failwith "Ert.grow: no candidate (unreachable)"
    | Some (_, u, v, lv) ->
        st.parent.(v) <- u;
        st.lens.(v) <- lv;
        st.in_tree.(v) <- true;
        st.order.(st.size) <- v;
        st.size <- st.size + 1
  done

let to_routing st net =
  let n = Array.length st.points in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (st.parent.(v), v) :: !edges
  done;
  Routing.of_net net
    (List.fold_left
       (fun g (u, v) ->
         Graphs.Wgraph.add_edge g u v
           (Geom.Point.manhattan st.points.(u) st.points.(v)))
       (Graphs.Wgraph.create n) !edges)

let construct ~tech net =
  let st = make_state ~tech net in
  let objective _sink d acc = Float.max d acc in
  grow st ~objective;
  to_routing st net

let construct_critical ~tech ~critical net =
  let k = Geom.Net.num_sinks net in
  if critical < 1 || critical > k then
    invalid_arg "Ert.construct_critical: not a sink index";
  let st = make_state ~tech net in
  (* Step 1: wire the critical sink straight to the source. *)
  st.parent.(critical) <- 0;
  st.lens.(critical) <-
    Geom.Point.manhattan st.points.(0) st.points.(critical);
  st.in_tree.(critical) <- true;
  st.order.(1) <- critical;
  st.size <- 2;
  (* Step 2: attach everything else, minimising the critical sink's
     delay; the tiny uniform term breaks the ties that objective
     leaves among attachments not on the critical path. *)
  let objective sink d acc =
    acc +. ((if sink = critical then 1.0 else 1e-6) *. d)
  in
  grow st ~objective;
  to_routing st net

let construct_weighted ~tech ~alphas net =
  let sinks = Geom.Net.num_sinks net in
  if Array.length alphas <> sinks then
    invalid_arg "Ert.construct_weighted: need one weight per sink";
  Array.iter
    (fun a ->
      if a < 0.0 then
        invalid_arg "Ert.construct_weighted: negative criticality")
    alphas;
  let st = make_state ~tech net in
  (* A sparse alpha vector (e.g. one-hot) scores every partial tree that
     excludes the weighted sinks as 0, leaving greedy growth to pick
     arbitrary, often terrible attachments. A tiny uniform weight keeps
     every intermediate tree honest without noticeably perturbing the
     stated objective. *)
  let alpha_max = Array.fold_left Float.max 0.0 alphas in
  let tie = 1e-6 *. (alpha_max +. 1.0) in
  let objective sink d acc = acc +. ((alphas.(sink - 1) +. tie) *. d) in
  grow st ~objective;
  to_routing st net
