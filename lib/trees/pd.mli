(** Prim–Dijkstra tradeoff trees (Alpert, Hu, Huang & Kahng [1]).

    Grow a tree from the source, always attaching the non-tree pin v to
    the tree pin u that minimises

    c · pathlength(source→u)  +  distance(u, v)

    With c = 0 this is Prim's MST; with c = 1 it is Dijkstra's
    shortest-path tree; intermediate c trades wirelength for radius.
    One of the strongest pre-Elmore baselines, cited in the paper's
    introduction as a cost–radius tradeoff construction. *)

val construct : c:float -> Geom.Net.t -> Routing.t
(** @raise Invalid_argument unless [0 <= c <= 1]. *)
