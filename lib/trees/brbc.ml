let direct_radius net =
  let src = Geom.Net.source net in
  Array.fold_left
    (fun acc p -> Float.max acc (Geom.Point.manhattan src p))
    0.0 (Geom.Net.pins net)

let radius_bound ~epsilon net = (1.0 +. epsilon) *. direct_radius net

let construct ~epsilon net =
  if epsilon < 0.0 then invalid_arg "Brbc.construct: epsilon < 0";
  let points = Geom.Net.pins net in
  let n = Array.length points in
  let dist i j = Geom.Point.manhattan points.(i) points.(j) in
  let mst = Routing.graph (Routing.mst_of_net net) in
  (* Depth-first tour of the MST from the source. *)
  let adj = Array.make n [] in
  List.iter
    (fun (e : Graphs.Wgraph.edge) ->
      adj.(e.u) <- e.v :: adj.(e.u);
      adj.(e.v) <- e.u :: adj.(e.v))
    (Graphs.Wgraph.edges mst);
  let tour = ref [] in
  let seen = Array.make n false in
  let rec dfs u =
    seen.(u) <- true;
    tour := u :: !tour;
    List.iter
      (fun v ->
        if not seen.(v) then begin
          dfs v;
          tour := u :: !tour (* returning through u *)
        end)
      adj.(u)
  in
  dfs 0;
  let tour = List.rev !tour in
  (* Add source shortcuts where the running tour length exceeds
     epsilon times the pin's direct source distance. *)
  let augmented = ref mst in
  let running = ref 0.0 in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        running := !running +. dist a b;
        if b <> 0 && !running > epsilon *. dist 0 b then begin
          running := 0.0;
          if not (Graphs.Wgraph.mem_edge !augmented 0 b) then
            augmented := Graphs.Wgraph.add_edge !augmented 0 b (dist 0 b)
        end;
        walk rest
    | _ -> ()
  in
  walk tour;
  (* The BRBC tree is the shortest-path tree of the augmented graph. *)
  let _, pred = Graphs.Paths.dijkstra !augmented 0 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (pred.(v), v) :: !edges
  done;
  Routing.with_points ~source:0 ~num_terminals:n points !edges
