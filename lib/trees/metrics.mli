(** Topology metrics for routing comparisons.

    The pre-Elmore performance-driven literature the paper builds on
    (Cong et al. [8], Alpert et al. [1]) trades off tree {e cost}
    (total wirelength) against {e radius} (longest source→sink path):
    shorter paths mean lower linear delay, less wire means lower
    capacitance. These metrics quantify that tradeoff for any routing,
    tree or not. *)

val radius : Routing.t -> float
(** Longest shortest-path distance from the source to any sink, µm. *)

val source_path_lengths : Routing.t -> float array
(** Shortest-path distance from the source to every vertex. *)

val max_path_ratio : Routing.t -> float
(** Worst sink detour: max over sinks of (path length / Manhattan
    distance from source); 1.0 means every sink is reached by a
    shortest possible route. Infinite-free: sinks coincident with the
    source are skipped. *)

val average_sink_path : Routing.t -> float
(** Mean source→sink shortest-path length, µm. *)

val summary : Routing.t -> string
(** One-line cost/radius/detour summary for logs and examples. *)
