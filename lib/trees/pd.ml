let construct ~c net =
  if c < 0.0 || c > 1.0 then invalid_arg "Pd.construct: need 0 <= c <= 1";
  let points = Geom.Net.pins net in
  let n = Array.length points in
  let dist i j = Geom.Point.manhattan points.(i) points.(j) in
  let in_tree = Array.make n false in
  let pathlen = Array.make n 0.0 in
  (* Best known attachment for each outside vertex. *)
  let best_key = Array.make n infinity in
  let best_parent = Array.make n (-1) in
  in_tree.(0) <- true;
  for v = 1 to n - 1 do
    best_key.(v) <- dist 0 v;
    best_parent.(v) <- 0
  done;
  let edges = ref [] in
  for _ = 1 to n - 1 do
    let v = ref (-1) in
    for u = 1 to n - 1 do
      if (not in_tree.(u)) && (!v = -1 || best_key.(u) < best_key.(!v)) then
        v := u
    done;
    let v = !v in
    let parent = best_parent.(v) in
    in_tree.(v) <- true;
    pathlen.(v) <- pathlen.(parent) +. dist parent v;
    edges := (parent, v) :: !edges;
    for u = 1 to n - 1 do
      if not in_tree.(u) then begin
        let key = (c *. pathlen.(v)) +. dist v u in
        if key < best_key.(u) then begin
          best_key.(u) <- key;
          best_parent.(u) <- v
        end
      end
    done
  done;
  Routing.with_points ~source:0 ~num_terminals:n points !edges
