let source_path_lengths r =
  let dist, _ = Graphs.Paths.dijkstra (Routing.graph r) (Routing.source r) in
  dist

let radius r =
  let dist = source_path_lengths r in
  List.fold_left (fun acc v -> Float.max acc dist.(v)) 0.0 (Routing.sinks r)

let max_path_ratio r =
  let dist = source_path_lengths r in
  let src = Routing.point r (Routing.source r) in
  List.fold_left
    (fun acc v ->
      let direct = Geom.Point.manhattan src (Routing.point r v) in
      if direct <= 0.0 then acc else Float.max acc (dist.(v) /. direct))
    1.0 (Routing.sinks r)

let average_sink_path r =
  let dist = source_path_lengths r in
  let sinks = Routing.sinks r in
  List.fold_left (fun acc v -> acc +. dist.(v)) 0.0 sinks
  /. float_of_int (List.length sinks)

let summary r =
  Printf.sprintf "cost %.0f um, radius %.0f um, max detour %.2fx, avg path %.0f um"
    (Routing.cost r) (radius r) (max_path_ratio r) (average_sink_path r)
