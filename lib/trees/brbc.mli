(** Bounded-Radius, Bounded-Cost trees (Cong, Kahng, Robins,
    Sarrafzadeh & Wong, "Provably Good Performance-Driven Global
    Routing" [8]).

    Given ε ≥ 0, walk a depth-first tour of the MST accumulating tour
    length; whenever the accumulated length since the last shortcut
    exceeds ε times the source distance of the current pin, add a
    direct source shortcut. The shortest-path tree of MST ∪ shortcuts
    has radius ≤ (1+ε)·R and cost ≤ (1 + 2/ε)·cost(MST):
    ε → 0 approaches the shortest-path star, ε → ∞ keeps the MST. *)

val construct : epsilon:float -> Geom.Net.t -> Routing.t
(** @raise Invalid_argument when [epsilon < 0]. *)

val radius_bound : epsilon:float -> Geom.Net.t -> float
(** The guarantee (1+ε)·R where R is the maximum source→pin Manhattan
    distance — tests check {!construct} never exceeds it. *)
