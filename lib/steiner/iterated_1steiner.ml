let mst_cost_of_points points =
  let n = Array.length points in
  let weight i j = Geom.Point.manhattan points.(i) points.(j) in
  Graphs.Wgraph.total_weight (Graphs.Mst.prim_complete ~n ~weight)

let mst_cost_with points extra =
  match extra with
  | None -> mst_cost_of_points points
  | Some p -> mst_cost_of_points (Array.append points [| p |])

(* Remove useless Steiner points from a tree over [points]: degree-1
   Steiner leaves are dropped, degree-2 Steiner through-points are
   spliced (their two edges replaced by one direct edge, never longer
   in the Manhattan metric). Returns the surviving point array and
   edge list, with terminals kept at indices 0..num_terminals-1. *)
let cleanup points num_terminals tree =
  let n = Array.length points in
  let adjacency edges =
    let adj = Array.make n [] in
    List.iter
      (fun (u, v) ->
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v))
      edges;
    adj
  in
  let rec simplify edges =
    let adj = adjacency edges in
    let victim = ref None in
    for v = num_terminals to n - 1 do
      if !victim = None then
        match adj.(v) with
        | [] -> () (* already detached; compaction below discards it *)
        | [ _ ] -> victim := Some (`Drop v)
        | [ a; b ] -> victim := Some (`Splice (v, a, b))
        | _ -> ()
    done;
    match !victim with
    | None -> edges
    | Some (`Drop v) ->
        simplify (List.filter (fun (a, b) -> a <> v && b <> v) edges)
    | Some (`Splice (v, a, b)) ->
        let edges = List.filter (fun (x, y) -> x <> v && y <> v) edges in
        simplify ((a, b) :: edges)
  in
  let edges = simplify tree in
  (* Compact: drop Steiner points that no longer appear. *)
  let used = Array.make n false in
  for v = 0 to num_terminals - 1 do
    used.(v) <- true
  done;
  List.iter
    (fun (u, v) ->
      used.(u) <- true;
      used.(v) <- true)
    edges;
  let remap = Array.make n (-1) in
  let kept = ref [] in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if used.(v) then begin
      remap.(v) <- !next;
      incr next;
      kept := points.(v) :: !kept
    end
  done;
  let points' = Array.of_list (List.rev !kept) in
  let edges' = List.map (fun (u, v) -> (remap.(u), remap.(v))) edges in
  (points', edges')

(* Gains below this (µm) are float noise at chip scale, not wirelength
   savings; accepting them can spin the improvement loop forever. *)
let min_gain = 1e-6

let construct ?max_points net =
  let terminals = Geom.Net.pins net in
  let num_terminals = Array.length terminals in
  (* A rectilinear SMT needs at most n-2 Steiner points, so cap the
     loop there by default. *)
  let max_points =
    match max_points with
    | Some m -> m
    | None -> Int.max 0 (num_terminals - 2)
  in
  let chosen = ref [] in
  let num_chosen = ref 0 in
  let current_points () = Array.append terminals (Array.of_list (List.rev !chosen)) in
  let improving = ref true in
  while !improving && !num_chosen < max_points do
    improving := false;
    let points = current_points () in
    let base_cost = mst_cost_of_points points in
    (* Candidates come from the Hanan grid of the current point set
       (terminals plus already-chosen Steiner points), per the
       iterated construction. *)
    let candidates = Hanan.points points in
    let best = ref None in
    List.iter
      (fun cand ->
        let cost = mst_cost_of_points (Array.append points [| cand |]) in
        let gain = base_cost -. cost in
        match !best with
        | Some (_, g) when g >= gain -> ()
        | _ -> if gain > min_gain then best := Some (cand, gain))
      candidates;
    match !best with
    | Some (cand, _) ->
        chosen := cand :: !chosen;
        incr num_chosen;
        improving := true
    | None -> ()
  done;
  let points = current_points () in
  let n = Array.length points in
  let weight i j = Geom.Point.manhattan points.(i) points.(j) in
  let mst = Graphs.Mst.prim_complete ~n ~weight in
  let edges =
    List.map (fun (e : Graphs.Wgraph.edge) -> (e.u, e.v)) (Graphs.Wgraph.edges mst)
  in
  let points', edges' = cleanup points num_terminals edges in
  Routing.with_points ~source:0 ~num_terminals points' edges'
