(** The Hanan grid.

    Hanan's theorem: some rectilinear Steiner minimal tree uses only
    Steiner points at intersections of horizontal and vertical lines
    through the pins. The Iterated 1-Steiner algorithm therefore draws
    its candidate points from this grid. *)

val points : Geom.Point.t array -> Geom.Point.t list
(** [points pins] is every Hanan grid point that does not coincide with
    a pin, in lexicographic order. At most n² − n points. *)

val grid_size : Geom.Point.t array -> int * int
(** Distinct x- and y-coordinate counts. *)
