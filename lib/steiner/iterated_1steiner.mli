(** The Iterated 1-Steiner heuristic of Kahng and Robins.

    Repeatedly find the single Hanan candidate whose addition to the
    point set most reduces MST cost; stop when no candidate helps.
    After convergence, degree-1 Steiner points are deleted and degree-2
    Steiner points are spliced out (the triangle inequality guarantees
    splicing never increases cost). This is the Steiner engine the
    paper's SLDRG algorithm starts from (Figure 6, step 1). *)

val construct : ?max_points:int -> Geom.Net.t -> Routing.t
(** [construct net] is a Steiner routing tree over the net: terminals
    keep their indices (0 = source), chosen Steiner points follow.
    [max_points] caps the number of Steiner points added; the default
    is n−2, the maximum a rectilinear Steiner minimal tree can use.
    Candidate gains under 1e-6 µm are treated as float noise and
    rejected. *)

val mst_cost_with : Geom.Point.t array -> Geom.Point.t option -> float
(** [mst_cost_with points extra] is the MST cost of the points plus the
    optional extra point — exposed for tests. *)
