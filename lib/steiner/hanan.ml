let distinct_coords select pins =
  Array.to_list (Array.map select pins) |> List.sort_uniq Float.compare

let points pins =
  let xs = distinct_coords (fun (p : Geom.Point.t) -> p.Geom.Point.x) pins in
  let ys = distinct_coords (fun (p : Geom.Point.t) -> p.Geom.Point.y) pins in
  let is_pin p = Array.exists (Geom.Point.equal p) pins in
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y ->
          let p = Geom.Point.make x y in
          if is_pin p then None else Some p)
        ys)
    xs

let grid_size pins =
  ( List.length (distinct_coords (fun (p : Geom.Point.t) -> p.Geom.Point.x) pins),
    List.length (distinct_coords (fun (p : Geom.Point.t) -> p.Geom.Point.y) pins)
  )
