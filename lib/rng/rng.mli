(** Deterministic pseudo-random number generation based on SplitMix64.

    All experiments in this repository are driven by explicit generator
    states so that every table and figure is reproducible from a seed.
    SplitMix64 passes BigCrush, has a 64-bit state, and supports cheap
    stream splitting, which we use to give every trial an independent
    generator derived from the experiment seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Two
    generators created from the same seed produce identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. Requires [n > 0]; uses rejection
    sampling so the result is exactly uniform.

    @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.

    @raise Invalid_argument if [lo > hi]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)] with 53 bits of precision. *)

val float_in : t -> float -> float -> float
(** [float_in g lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place uniformly (Fisher–Yates). *)

val choose : t -> 'a array -> 'a
(** [choose g a] is a uniformly random element of [a].

    @raise Invalid_argument if [a] is empty. *)
