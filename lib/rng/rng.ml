type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* Finalizer from Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = bits64 g in
  { state = mix64 s }

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (bits64 g) mask) in
    let v = r mod n in
    if r - v + (n - 1) < 0 then loop () else v
  in
  loop ()

let int_in g lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g x =
  (* 53 random mantissa bits scaled into [0, 1). *)
  let bits53 = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  let unit = float_of_int bits53 *. 0x1.0p-53 in
  unit *. x

let float_in g lo hi = lo +. float g (hi -. lo)

let bool g = Int64.compare (Int64.logand (bits64 g) 1L) 0L <> 0

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int g (Array.length a))
