type series = { label : string; points : (float * float) array }
type axis = Linear | Log10

type t = {
  width : int;
  height : int;
  x_axis : axis;
  x_label : string;
  y_label : string;
  title : string;
  series : series list;
}

let palette = [| "#2563eb"; "#dc2626"; "#059669"; "#d97706"; "#7c3aed" |]

let create ?(width = 640) ?(height = 400) ?(x_axis = Linear) ?(x_label = "")
    ?(y_label = "") ~title series =
  if List.for_all (fun s -> Array.length s.points = 0) series then
    invalid_arg "Plot.create: no data";
  (match x_axis with
  | Log10 ->
      List.iter
        (fun s ->
          Array.iter
            (fun (x, _) ->
              if x <= 0.0 then
                invalid_arg "Plot.create: log axis needs positive x")
            s.points)
        series
  | Linear -> ());
  { width; height; x_axis; x_label; y_label; title; series }

let data_range t =
  let xmin = ref infinity and xmax = ref neg_infinity in
  let ymin = ref infinity and ymax = ref neg_infinity in
  List.iter
    (fun s ->
      Array.iter
        (fun (x, y) ->
          let x = match t.x_axis with Linear -> x | Log10 -> log10 x in
          if x < !xmin then xmin := x;
          if x > !xmax then xmax := x;
          if y < !ymin then ymin := y;
          if y > !ymax then ymax := y)
        s.points)
    t.series;
  let pad_y = Float.max 1e-30 (0.05 *. (!ymax -. !ymin)) in
  let pad_x = Float.max 1e-30 (0.02 *. (!xmax -. !xmin)) in
  (!xmin -. pad_x, !xmax +. pad_x, !ymin -. pad_y, !ymax +. pad_y)

(* A few round tick values covering [lo, hi]. *)
let ticks lo hi =
  let span = hi -. lo in
  if span <= 0.0 then [ lo ]
  else begin
    let raw = span /. 5.0 in
    let mag = 10.0 ** Float.round (log10 raw) in
    let step =
      if raw /. mag >= 2.0 then 2.0 *. mag
      else if raw /. mag >= 1.0 then mag
      else mag /. 2.0
    in
    let first = Float.of_int (int_of_float (ceil (lo /. step))) *. step in
    let rec go v acc = if v > hi then List.rev acc else go (v +. step) (v :: acc) in
    go first []
  end

let format_tick t_axis v =
  match t_axis with
  | Linear ->
      if abs_float v >= 1e5 || (abs_float v < 1e-2 && v <> 0.0) then
        Printf.sprintf "%.1e" v
      else Printf.sprintf "%.3g" v
  | Log10 -> Printf.sprintf "1e%.0f" v

let to_svg t =
  let margin_left = 64.0 and margin_right = 16.0 in
  let margin_top = 36.0 and margin_bottom = 48.0 in
  let w = float_of_int t.width and h = float_of_int t.height in
  let plot_w = w -. margin_left -. margin_right in
  let plot_h = h -. margin_top -. margin_bottom in
  let xmin, xmax, ymin, ymax = data_range t in
  let sx x =
    let x = match t.x_axis with Linear -> x | Log10 -> log10 x in
    margin_left +. ((x -. xmin) /. (xmax -. xmin) *. plot_w)
  in
  let sy y = margin_top +. ((ymax -. y) /. (ymax -. ymin) *. plot_h) in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n\
        <rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n"
       t.width t.height t.width t.height);
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%.0f\" y=\"20\" font-size=\"14\" font-weight=\"bold\">%s</text>\n"
       margin_left t.title);
  (* Frame. *)
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" \
        stroke=\"#888\"/>\n"
       margin_left margin_top plot_w plot_h);
  (* Ticks and grid. *)
  List.iter
    (fun v ->
      let x =
        margin_left +. ((v -. xmin) /. (xmax -. xmin) *. plot_w)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"#eee\"/>\n"
           x margin_top x (margin_top +. plot_h));
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" text-anchor=\"middle\">%s</text>\n"
           x
           (margin_top +. plot_h +. 14.0)
           (format_tick t.x_axis v)))
    (ticks xmin xmax);
  List.iter
    (fun v ->
      let y = sy v in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"#eee\"/>\n"
           margin_left y (margin_left +. plot_w) y);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" text-anchor=\"end\">%s</text>\n"
           (margin_left -. 6.0) (y +. 3.0)
           (format_tick Linear v)))
    (ticks ymin ymax);
  (* Axis labels. *)
  if t.x_label <> "" then
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" text-anchor=\"middle\">%s</text>\n"
         (margin_left +. (plot_w /. 2.0))
         (h -. 10.0) t.x_label);
  if t.y_label <> "" then
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"14\" y=\"%.1f\" font-size=\"11\" text-anchor=\"middle\" \
          transform=\"rotate(-90 14 %.1f)\">%s</text>\n"
         (margin_top +. (plot_h /. 2.0))
         (margin_top +. (plot_h /. 2.0))
         t.y_label);
  (* Series. *)
  List.iteri
    (fun i s ->
      if Array.length s.points > 0 then begin
        let color = palette.(i mod Array.length palette) in
        Buffer.add_string buf "<polyline fill=\"none\" stroke=\"";
        Buffer.add_string buf color;
        Buffer.add_string buf "\" stroke-width=\"1.8\" points=\"";
        Array.iter
          (fun (x, y) ->
            Buffer.add_string buf (Printf.sprintf "%.1f,%.1f " (sx x) (sy y)))
          s.points;
        Buffer.add_string buf "\"/>\n";
        (* Legend entry. *)
        let ly = margin_top +. 14.0 +. (float_of_int i *. 16.0) in
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
              stroke=\"%s\" stroke-width=\"2\"/>\n"
             (margin_left +. plot_w -. 120.0)
             ly
             (margin_left +. plot_w -. 100.0)
             ly color);
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\">%s</text>\n"
             (margin_left +. plot_w -. 94.0)
             (ly +. 3.0) s.label)
      end)
    t.series;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_svg path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_svg t))
