(** Minimal SVG line plots.

    Enough charting to render transient waveforms and AC sweeps as
    standalone SVG files for the repository's figures — multi-series
    line plots with linear or log₁₀ x axes, automatic ranges, ticks
    and a legend. *)

type series = {
  label : string;
  points : (float * float) array;  (** (x, y), in data coordinates *)
}

type axis = Linear | Log10

type t

val create :
  ?width:int ->
  ?height:int ->
  ?x_axis:axis ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  t
(** @raise Invalid_argument when no series has points, or a log axis
    sees a non-positive coordinate. *)

val to_svg : t -> string

val write_svg : string -> t -> unit
