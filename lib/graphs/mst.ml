let prim_complete ~n ~weight =
  if n < 1 then invalid_arg "Mst.prim_complete: n < 1";
  let in_tree = Array.make n false in
  let best = Array.make n infinity in
  let parent = Array.make n (-1) in
  in_tree.(0) <- true;
  for v = 1 to n - 1 do
    best.(v) <- weight 0 v;
    parent.(v) <- 0
  done;
  let g = ref (Wgraph.create n) in
  for _ = 1 to n - 1 do
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not in_tree.(v)) && (!u = -1 || best.(v) < best.(!u)) then u := v
    done;
    let u = !u in
    in_tree.(u) <- true;
    g := Wgraph.add_edge !g parent.(u) u best.(u);
    for v = 0 to n - 1 do
      if not in_tree.(v) then begin
        let w = weight u v in
        if w < best.(v) then begin
          best.(v) <- w;
          parent.(v) <- u
        end
      end
    done
  done;
  !g

let kruskal g =
  let n = Wgraph.num_vertices g in
  let sorted =
    List.sort
      (fun (a : Wgraph.edge) b -> Float.compare a.w b.w)
      (Wgraph.edges g)
  in
  let uf = Union_find.create n in
  let tree =
    List.fold_left
      (fun acc (e : Wgraph.edge) ->
        if Union_find.union uf e.u e.v then Wgraph.add_edge acc e.u e.v e.w
        else acc)
      (Wgraph.create n) sorted
  in
  if Union_find.count uf <> 1 then
    invalid_arg "Mst.kruskal: graph is disconnected";
  tree

let prim g =
  let n = Wgraph.num_vertices g in
  if n = 0 then invalid_arg "Mst.prim: empty graph";
  let adj = Array.make n [] in
  List.iter
    (fun (e : Wgraph.edge) ->
      adj.(e.u) <- (e.v, e.w) :: adj.(e.u);
      adj.(e.v) <- (e.u, e.w) :: adj.(e.v))
    (Wgraph.edges g);
  let in_tree = Array.make n false in
  let best = Array.make n infinity in
  let parent = Array.make n (-1) in
  in_tree.(0) <- true;
  List.iter
    (fun (v, w) ->
      if w < best.(v) then begin
        best.(v) <- w;
        parent.(v) <- 0
      end)
    adj.(0);
  let tree = ref (Wgraph.create n) in
  for _ = 1 to n - 1 do
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not in_tree.(v)) && best.(v) < infinity
         && (!u = -1 || best.(v) < best.(!u))
      then u := v
    done;
    if !u = -1 then invalid_arg "Mst.prim: graph is disconnected";
    let u = !u in
    in_tree.(u) <- true;
    tree := Wgraph.add_edge !tree parent.(u) u best.(u);
    List.iter
      (fun (v, w) ->
        if (not in_tree.(v)) && w < best.(v) then begin
          best.(v) <- w;
          parent.(v) <- u
        end)
      adj.(u)
  done;
  !tree
