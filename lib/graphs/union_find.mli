(** Disjoint-set forest with union by rank and path compression.
    Amortised near-constant time per operation; used by Kruskal's MST
    and by connectivity checks. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled 0..n-1. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [false] when [a] and [b]
    were already in the same set. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets currently present. *)
