(** Undirected weighted graphs over vertices 0..n-1.

    Edges are stored canonically with the smaller endpoint first, so an
    undirected edge appears exactly once; parallel edges are rejected.
    This is the routing-topology representation: a spanning *tree* has
    n-1 edges, and the paper's non-tree routings add further edges. *)

type edge = { u : int; v : int; w : float }

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val of_edges : int -> (int * int * float) list -> t
(** Builds a graph from (u, v, weight) triples.

    @raise Invalid_argument on self-loops, duplicate edges, or
    out-of-range endpoints. *)

val num_vertices : t -> int
val num_edges : t -> int

val add_edge : t -> int -> int -> float -> t
(** Functional update; the original graph is unchanged.

    @raise Invalid_argument on a self-loop, a duplicate, or
    out-of-range endpoints. *)

val remove_edge : t -> int -> int -> t
(** @raise Not_found when the edge is absent. *)

val mem_edge : t -> int -> int -> bool
val weight : t -> int -> int -> float
(** @raise Not_found when the edge is absent. *)

val edges : t -> edge list
(** All edges, each once, smaller endpoint first, in increasing
    lexicographic (u, v) order. *)

val neighbors : t -> int -> (int * float) list
(** Adjacent vertices with edge weights. *)

val degree : t -> int -> int

val total_weight : t -> float
(** Sum of edge weights: the routing cost of the topology. *)

val is_connected : t -> bool
(** Whether every vertex is reachable from vertex 0 (true for the empty
    1-vertex graph). *)

val is_spanning_tree : t -> bool
(** Connected with exactly n-1 edges. *)

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
