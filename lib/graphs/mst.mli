(** Minimum spanning trees.

    The MST is the paper's canonical starting topology: every non-tree
    routing experiment begins from the MST (or from a Steiner tree /
    ERT) and adds edges to it. *)

val prim_complete : n:int -> weight:(int -> int -> float) -> Wgraph.t
(** [prim_complete ~n ~weight] is the MST of the complete graph on [n]
    vertices under the symmetric weight function, computed by Prim's
    algorithm in O(n²) — optimal for complete (geometric) graphs.

    @raise Invalid_argument if [n < 1]. *)

val kruskal : Wgraph.t -> Wgraph.t
(** MST of an arbitrary connected graph by Kruskal's algorithm.

    @raise Invalid_argument when the graph is disconnected. *)

val prim : Wgraph.t -> Wgraph.t
(** MST of an arbitrary connected graph by Prim's algorithm (adjacency
    scan). Equivalent to {!kruskal}; both are exposed so tests can
    cross-validate them.

    @raise Invalid_argument when the graph is disconnected. *)
