type t = {
  root : int;
  parent : int array;
  children : int list array;
  order : int array;
  edge_weight : float array;
  depth : float array;
}

let of_tree g ~root =
  if not (Wgraph.is_spanning_tree g) then
    invalid_arg "Rooted.of_tree: not a spanning tree";
  let n = Wgraph.num_vertices g in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Wgraph.edge) ->
      adj.(e.u) <- (e.v, e.w) :: adj.(e.u);
      adj.(e.v) <- (e.u, e.w) :: adj.(e.v))
    (Wgraph.edges g);
  let parent = Array.make n (-1) in
  let children = Array.make n [] in
  let edge_weight = Array.make n 0.0 in
  let depth = Array.make n 0.0 in
  let order = Array.make n root in
  let seen = Array.make n false in
  let idx = ref 0 in
  (* Explicit stack: nets can be long chains, avoid deep recursion. *)
  let stack = Stack.create () in
  Stack.push root stack;
  seen.(root) <- true;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    order.(!idx) <- u;
    incr idx;
    List.iter
      (fun (v, w) ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          children.(u) <- v :: children.(u);
          edge_weight.(v) <- w;
          depth.(v) <- depth.(u) +. w;
          Stack.push v stack
        end)
      adj.(u)
  done;
  { root; parent; children; order; edge_weight; depth }

let postorder t =
  let n = Array.length t.order in
  Array.init n (fun i -> t.order.(n - 1 - i))

let fold_subtree_sums t leaf_value =
  let n = Array.length t.order in
  let s = Array.init n leaf_value in
  Array.iter
    (fun v -> if v <> t.root then s.(t.parent.(v)) <- s.(t.parent.(v)) +. s.(v))
    (postorder t);
  s

let path_to_root t v =
  let rec walk v acc =
    if v = -1 then List.rev acc else walk t.parent.(v) (v :: acc)
  in
  walk v []
