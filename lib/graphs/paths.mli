(** Shortest paths and path extraction in weighted graphs. *)

val dijkstra : Wgraph.t -> int -> float array * int array
(** [dijkstra g src] is [(dist, pred)]: [dist.(v)] the shortest weighted
    distance from [src] (infinity when unreachable) and [pred.(v)] the
    predecessor on one shortest path (-1 for [src] and unreachable
    vertices). *)

val shortest_path : Wgraph.t -> int -> int -> int list
(** Vertex sequence of a shortest path from [src] to [dst], inclusive.

    @raise Not_found when [dst] is unreachable. *)

val path_length : Wgraph.t -> int -> int -> float
(** Weighted length of the shortest path.

    @raise Not_found when unreachable. *)

val hops : Wgraph.t -> int -> int array
(** [hops g src] is the minimum number of edges from [src] to each
    vertex (max_int when unreachable): breadth-first search. *)

val tree_path : Wgraph.t -> int -> int -> int list
(** [tree_path t src dst] is the unique path in a tree [t]. Identical to
    {!shortest_path} but named for intent; callers must pass a tree. *)
