let adjacency g =
  let n = Wgraph.num_vertices g in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Wgraph.edge) ->
      adj.(e.u) <- (e.v, e.w) :: adj.(e.u);
      adj.(e.v) <- (e.u, e.w) :: adj.(e.v))
    (Wgraph.edges g);
  adj

module Pq = Set.Make (struct
  type t = float * int

  let compare = compare
end)

let dijkstra g src =
  let n = Wgraph.num_vertices g in
  let adj = adjacency g in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  dist.(src) <- 0.0;
  let pq = ref (Pq.singleton (0.0, src)) in
  while not (Pq.is_empty !pq) do
    let ((d, u) as min) = Pq.min_elt !pq in
    pq := Pq.remove min !pq;
    if d <= dist.(u) then
      List.iter
        (fun (v, w) ->
          let nd = d +. w in
          if nd < dist.(v) then begin
            dist.(v) <- nd;
            pred.(v) <- u;
            pq := Pq.add (nd, v) !pq
          end)
        adj.(u)
  done;
  (dist, pred)

let shortest_path g src dst =
  let dist, pred = dijkstra g src in
  if dist.(dst) = infinity then raise Not_found;
  let rec walk v acc = if v = src then src :: acc else walk pred.(v) (v :: acc) in
  walk dst []

let path_length g src dst =
  let dist, _ = dijkstra g src in
  if dist.(dst) = infinity then raise Not_found;
  dist.(dst)

let hops g src =
  let n = Wgraph.num_vertices g in
  let adj = adjacency g in
  let d = Array.make n max_int in
  d.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (v, _) ->
        if d.(v) = max_int then begin
          d.(v) <- d.(u) + 1;
          Queue.add v q
        end)
      adj.(u)
  done;
  d

let tree_path = shortest_path
