type edge = { u : int; v : int; w : float }

module Key = struct
  type t = int * int

  let compare = compare
end

module Emap = Map.Make (Key)

type t = { n : int; edges : float Emap.t }

let create n =
  if n < 0 then invalid_arg "Wgraph.create: negative vertex count";
  { n; edges = Emap.empty }

let canon u v = if u < v then (u, v) else (v, u)

let check_vertex g x =
  if x < 0 || x >= g.n then invalid_arg "Wgraph: vertex out of range"

let add_edge g u v w =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Wgraph.add_edge: self-loop";
  let key = canon u v in
  if Emap.mem key g.edges then invalid_arg "Wgraph.add_edge: duplicate edge";
  { g with edges = Emap.add key w g.edges }

let of_edges n triples =
  List.fold_left (fun g (u, v, w) -> add_edge g u v w) (create n) triples

let num_vertices g = g.n
let num_edges g = Emap.cardinal g.edges

let remove_edge g u v =
  let key = canon u v in
  if not (Emap.mem key g.edges) then raise Not_found;
  { g with edges = Emap.remove key g.edges }

let mem_edge g u v = Emap.mem (canon u v) g.edges

let weight g u v =
  match Emap.find_opt (canon u v) g.edges with
  | Some w -> w
  | None -> raise Not_found

let edges g =
  Emap.fold (fun (u, v) w acc -> { u; v; w } :: acc) g.edges []
  |> List.rev

let neighbors g x =
  check_vertex g x;
  Emap.fold
    (fun (u, v) w acc ->
      if u = x then (v, w) :: acc else if v = x then (u, w) :: acc else acc)
    g.edges []

let degree g x = List.length (neighbors g x)

let total_weight g = Emap.fold (fun _ w acc -> acc +. w) g.edges 0.0

let adjacency g =
  let adj = Array.make g.n [] in
  Emap.iter
    (fun (u, v) w ->
      adj.(u) <- (v, w) :: adj.(u);
      adj.(v) <- (u, w) :: adj.(v))
    g.edges;
  adj

let is_connected g =
  if g.n = 0 then true
  else begin
    let adj = adjacency g in
    let seen = Array.make g.n false in
    let rec dfs u =
      seen.(u) <- true;
      List.iter (fun (v, _) -> if not seen.(v) then dfs v) adj.(u)
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let is_spanning_tree g = num_edges g = g.n - 1 && is_connected g

let fold_edges f g init =
  Emap.fold (fun (u, v) w acc -> f { u; v; w } acc) g.edges init
