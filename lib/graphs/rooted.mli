(** Rooted views of spanning trees.

    Elmore delay (Section 2 of the paper) is defined on a tree rooted at
    the source pin n0: each non-root vertex i has a unique parent edge
    e_i, and the delay along e_i involves the total capacitance of the
    subtree hanging below i. This module provides that rooted view. *)

type t = {
  root : int;
  parent : int array;  (** [parent.(root) = -1] *)
  children : int list array;
  order : int array;  (** vertices in preorder from the root *)
  edge_weight : float array;
      (** [edge_weight.(i)] is the weight of edge (parent i, i);
          0 for the root. *)
  depth : float array;
      (** weighted distance from the root: the "pathlength" used by
          heuristic H3. *)
}

val of_tree : Wgraph.t -> root:int -> t
(** Roots a spanning tree at [root].

    @raise Invalid_argument when the graph is not a spanning tree. *)

val postorder : t -> int array
(** Vertices ordered so every vertex appears after all its children
    (reverse preorder), suitable for bottom-up subtree accumulation. *)

val fold_subtree_sums : t -> (int -> float) -> float array
(** [fold_subtree_sums t leaf_value] returns [s] with
    [s.(i) = sum over j in subtree(i) of leaf_value j]. Linear time. *)

val path_to_root : t -> int -> int list
(** [path_to_root t v] is [v; parent v; ...; root]. *)
