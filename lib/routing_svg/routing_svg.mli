(** SVG rendering of routing topologies, used to regenerate the paper's
    Figures 1, 2, 3 and 5 as image files. *)

val render :
  ?width_px:int ->
  ?title:string ->
  ?highlight:(int * int) list ->
  Routing.t ->
  string
(** [render r] is an SVG document showing the routing: edges as
    L-shaped (Manhattan) wires, the source as a filled circle, sinks as
    open circles, Steiner points as small squares (the paper's Figure 5
    convention), with edges in [highlight] (the added non-tree wires)
    drawn thicker and dashed. *)

val render_to_file :
  ?width_px:int ->
  ?title:string ->
  ?highlight:(int * int) list ->
  string ->
  Routing.t ->
  unit
(** Writes {!render} output to a path. *)
