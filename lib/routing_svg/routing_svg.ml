let buffer_add_edge buf scale ox oy (p : Geom.Point.t) (q : Geom.Point.t)
    ~stroke ~width ~dash =
  (* Draw the Manhattan L-shape: horizontal first, then vertical. *)
  let x0 = ox +. (p.Geom.Point.x *. scale)
  and y0 = oy -. (p.Geom.Point.y *. scale)
  and x1 = ox +. (q.Geom.Point.x *. scale)
  and y1 = oy -. (q.Geom.Point.y *. scale) in
  let dash_attr = if dash then " stroke-dasharray=\"6,3\"" else "" in
  Buffer.add_string buf
    (Printf.sprintf
       "<polyline points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f\" fill=\"none\" \
        stroke=\"%s\" stroke-width=\"%.1f\"%s/>\n"
       x0 y0 x1 y0 x1 y1 stroke width dash_attr)

let render ?(width_px = 480) ?(title = "") ?(highlight = []) r =
  let pts = Routing.points r in
  let box = Geom.Rect.bounding_box pts in
  let margin = 24.0 in
  let extent =
    Float.max (Geom.Rect.width box) (Geom.Rect.height box) |> Float.max 1.0
  in
  let scale = (float_of_int width_px -. (2.0 *. margin)) /. extent in
  let ox = margin -. (box.Geom.Rect.x0 *. scale) in
  let oy = float_of_int width_px -. margin +. (box.Geom.Rect.y0 *. scale) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n<rect width=\"100%%\" height=\"100%%\" \
        fill=\"white\"/>\n"
       width_px width_px width_px width_px);
  if title <> "" then
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"16\" font-family=\"sans-serif\" \
          font-size=\"12\">%s</text>\n"
         margin title);
  let is_highlighted u v =
    List.exists (fun (a, b) -> (a = u && b = v) || (a = v && b = u)) highlight
  in
  List.iter
    (fun (e : Graphs.Wgraph.edge) ->
      if not (is_highlighted e.u e.v) then
        buffer_add_edge buf scale ox oy (Routing.point r e.u)
          (Routing.point r e.v) ~stroke:"#333333" ~width:1.5 ~dash:false)
    (Graphs.Wgraph.edges (Routing.graph r));
  List.iter
    (fun (e : Graphs.Wgraph.edge) ->
      if is_highlighted e.u e.v then
        buffer_add_edge buf scale ox oy (Routing.point r e.u)
          (Routing.point r e.v) ~stroke:"#cc2222" ~width:2.5 ~dash:true)
    (Graphs.Wgraph.edges (Routing.graph r));
  let nt = Routing.num_terminals r in
  Array.iteri
    (fun i (p : Geom.Point.t) ->
      let x = ox +. (p.Geom.Point.x *. scale)
      and y = oy -. (p.Geom.Point.y *. scale) in
      if i = 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"6\" fill=\"#2255cc\"/>\n" x y)
      else if i < nt then
        Buffer.add_string buf
          (Printf.sprintf
             "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" fill=\"white\" \
              stroke=\"black\" stroke-width=\"1.5\"/>\n"
             x y)
      else
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%.1f\" y=\"%.1f\" width=\"6\" height=\"6\" \
              fill=\"#444444\"/>\n"
             (x -. 3.0) (y -. 3.0)))
    pts;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render_to_file ?width_px ?title ?highlight path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?width_px ?title ?highlight r))
