type options = {
  method_ : Transient.method_;
  steps_per_chunk : int;
  max_extensions : int;
}

let default_options =
  { method_ = Transient.Trapezoidal; steps_per_chunk = 600; max_extensions = 12 }

let fast_options = { default_options with steps_per_chunk = 160 }
let accurate_options = { default_options with steps_per_chunk = 2500 }

(* Operational failures (singular stamps, waveform blow-ups, probes
   that never settle) travel as [Nontree_error.t] results so the
   robustness layer can retry or degrade; argument-shape errors remain
   Invalid_argument. *)

let singular_error ~stage k =
  if k < 0 then Nontree_error.Non_finite { stage; value = Float.nan }
  else Nontree_error.Singular_matrix { stage; column = k }

let check_finite ~stage arr =
  let n = Array.length arr in
  let rec go i =
    if i >= n then Ok ()
    else if Float.is_finite (Array.unsafe_get arr i) then go (i + 1)
    else Error (Nontree_error.Non_finite { stage; value = arr.(i) })
  in
  go 0

(* Fault injection: the oracle stack's test harness asks this layer to
   fail on purpose; see lib/fault. Consulted once per delay query. *)
let injected_fault ~horizon =
  match Fault.draw ~stage:"spice" with
  | None -> None
  | Some Fault.Singular_stamp ->
      Some (Nontree_error.Singular_matrix { stage = "spice.injected"; column = 0 })
  | Some Fault.Nan_value ->
      Some (Nontree_error.Non_finite { stage = "spice.injected"; value = Float.nan })
  | Some Fault.Never_settles ->
      Some (Nontree_error.Probe_never_settled { probe = "(injected)"; horizon })

let ( let* ) = Result.bind

let dc_result nl =
  match
    let sys = Mna.build nl in
    let x = Transient.dc_operating_point sys in
    (sys, x)
  with
  | exception Numeric.Lu.Singular k -> Error (singular_error ~stage:"spice.dc" k)
  | sys, x ->
      let* () = check_finite ~stage:"spice.dc" x in
      let result = ref [] in
      for node = Circuit.Netlist.num_nodes nl - 1 downto 1 do
        result :=
          (Circuit.Netlist.node_name nl node, Mna.voltage sys x node) :: !result
      done;
      Ok !result

let dc nl =
  match dc_result nl with Ok r -> r | Error e -> Nontree_error.raise_error e

let probe_indices nl (sys : Mna.t) probes =
  List.map
    (fun name ->
      match Circuit.Netlist.find_node nl name with
      | None -> invalid_arg ("Engine: unknown probe node " ^ name)
      | Some node ->
          let u = sys.Mna.unknown_of_node.(node) in
          if u < 0 then invalid_arg "Engine: cannot probe ground";
          u)
    probes
  |> Array.of_list

let transient_result ?(options = default_options) nl ~tstop ~probes =
  if tstop <= 0.0 then invalid_arg "Engine.transient: tstop must be positive";
  match
    let sys = Mna.build nl in
    let idx = probe_indices nl sys probes in
    let x0 = Transient.dc_operating_point sys in
    let dt = tstop /. float_of_int options.steps_per_chunk in
    let chunk =
      Transient.run sys ~method_:options.method_ ~x0 ~t0:0.0 ~dt
        ~steps:options.steps_per_chunk ~probes:idx
    in
    (idx, x0, chunk)
  with
  | exception Numeric.Lu.Singular k ->
      Error (singular_error ~stage:"spice.transient" k)
  | idx, x0, chunk ->
      let* () = check_finite ~stage:"spice.transient" chunk.Transient.final in
      (* Prepend the t=0 operating point so traces start at time zero. *)
      let times = Array.append [| 0.0 |] chunk.Transient.times in
      let data =
        Array.mapi
          (fun p col -> Array.append [| x0.(idx.(p)) |] col)
          chunk.Transient.states
      in
      Ok { Trace.times; names = Array.of_list probes; data }

let transient ?options nl ~tstop ~probes =
  match transient_result ?options nl ~tstop ~probes with
  | Ok t -> t
  | Error e -> Nontree_error.raise_error e

(* All supported settling waveforms (Step/Ramp/Pwl/Dc) are constant
   after their last corner, so evaluating the sources this far beyond
   the horizon gives the exact final DC values. *)
let settled_time ~horizon = 1e6 *. horizon

let threshold_scan_result ?(options = default_options) ?(fraction = 0.5) sys
    ~idx ~x0 ~xf ~horizon =
  if horizon <= 0.0 then
    invalid_arg "Engine.threshold_scan: horizon must be positive";
  let num_probes = Array.length idx in
  let target =
    Array.map (fun u -> x0.(u) +. (fraction *. (xf.(u) -. x0.(u)))) idx
  in
  let found = Array.make num_probes None in
  let prev_v = Array.map (fun u -> x0.(u)) idx in
  let remaining = ref num_probes in
  (* Mark probes that already start at their target (degenerate). *)
  Array.iteri
    (fun p u ->
      if x0.(u) >= target.(p) then begin
        found.(p) <- Some 0.0;
        decr remaining
      end)
    idx;
  let dt = horizon /. float_of_int options.steps_per_chunk in
  let x = ref x0 in
  let t0 = ref 0.0 in
  let extensions = ref 0 in
  let chunk_steps = ref options.steps_per_chunk in
  let failure = ref None in
  while
    !failure = None && !remaining > 0 && !extensions <= options.max_extensions
  do
    match
      Transient.run sys ~method_:options.method_ ~x0:!x ~t0:!t0 ~dt
        ~steps:!chunk_steps ~probes:idx
    with
    | exception Numeric.Lu.Singular k ->
        failure := Some (singular_error ~stage:"spice.transient" k)
    | chunk -> (
        match check_finite ~stage:"spice.transient" chunk.Transient.final with
        | Error e -> failure := Some e
        | Ok () ->
            for p = 0 to num_probes - 1 do
              if found.(p) = None then begin
                let col = chunk.Transient.states.(p) in
                let rec scan s prev prev_t =
                  if s >= Array.length col then prev_v.(p) <- prev
                  else if col.(s) >= target.(p) then begin
                    let v0 = prev and v1 = col.(s) in
                    let t1 = chunk.Transient.times.(s) in
                    let t_cross =
                      if v1 = v0 then t1
                      else
                        prev_t
                        +. ((target.(p) -. v0) /. (v1 -. v0) *. (t1 -. prev_t))
                    in
                    found.(p) <- Some t_cross;
                    decr remaining
                  end
                  else scan (s + 1) col.(s) chunk.Transient.times.(s)
                in
                scan 0 prev_v.(p) !t0;
                ()
              end
            done;
            x := chunk.Transient.final;
            t0 := !t0 +. (float_of_int !chunk_steps *. dt);
            incr extensions;
            (* Double the window each retry so n extensions cover
               2^n horizons. *)
            chunk_steps := !chunk_steps * 2)
  done;
  match !failure with Some e -> Error e | None -> Ok found

let threshold_delays_result ?(options = default_options) ?(fraction = 0.5) nl
    ~probes ~horizon =
  if horizon <= 0.0 then
    invalid_arg "Engine.threshold_delays: horizon must be positive";
  match injected_fault ~horizon with
  | Some e -> Error e
  | None -> (
      match
        let sys = Mna.build nl in
        let idx = probe_indices nl sys probes in
        let x0 = Transient.dc_operating_point sys in
        (sys, idx, x0)
      with
      | exception Numeric.Lu.Singular k ->
          Error (singular_error ~stage:"spice.dc" k)
      | sys, idx, x0 ->
          let* () = check_finite ~stage:"spice.dc" x0 in
          (* Final values: DC with sources settled. *)
          let t_settled = settled_time ~horizon in
          let* xf =
            match Mna.factor_g_result sys with
            | Error k -> Error (singular_error ~stage:"spice.settle" k)
            | Ok lu -> Ok (Numeric.Backend.solve lu (sys.Mna.rhs t_settled))
          in
          let* () = check_finite ~stage:"spice.settle" xf in
          let* found =
            threshold_scan_result ~options ~fraction sys ~idx ~x0 ~xf ~horizon
          in
          Ok (List.mapi (fun p name -> (name, found.(p))) probes))

let threshold_delays ?options ?fraction nl ~probes ~horizon =
  match threshold_delays_result ?options ?fraction nl ~probes ~horizon with
  | Ok r -> r
  | Error e -> Nontree_error.raise_error e

let max_delay_result ?options ?fraction nl ~probes ~horizon =
  let* delays = threshold_delays_result ?options ?fraction nl ~probes ~horizon in
  List.fold_left
    (fun acc (name, d) ->
      let* acc = acc in
      match d with
      | Some t -> Ok (Float.max acc t)
      | None ->
          Error (Nontree_error.Probe_never_settled { probe = name; horizon }))
    (Ok 0.0) delays

let max_delay ?options ?fraction nl ~probes ~horizon =
  match max_delay_result ?options ?fraction nl ~probes ~horizon with
  | Ok d -> d
  | Error e -> Nontree_error.raise_error e
