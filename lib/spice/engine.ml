type options = {
  method_ : Transient.method_;
  steps_per_chunk : int;
  max_extensions : int;
}

let default_options =
  { method_ = Transient.Trapezoidal; steps_per_chunk = 600; max_extensions = 12 }

let fast_options = { default_options with steps_per_chunk = 160 }
let accurate_options = { default_options with steps_per_chunk = 2500 }

let dc nl =
  let sys = Mna.build nl in
  let x = Transient.dc_operating_point sys in
  let result = ref [] in
  for node = Circuit.Netlist.num_nodes nl - 1 downto 1 do
    result := (Circuit.Netlist.node_name nl node, Mna.voltage sys x node) :: !result
  done;
  !result

let probe_indices nl (sys : Mna.t) probes =
  List.map
    (fun name ->
      match Circuit.Netlist.find_node nl name with
      | None -> invalid_arg ("Engine: unknown probe node " ^ name)
      | Some node ->
          let u = sys.Mna.unknown_of_node.(node) in
          if u < 0 then invalid_arg "Engine: cannot probe ground";
          u)
    probes
  |> Array.of_list

let transient ?(options = default_options) nl ~tstop ~probes =
  if tstop <= 0.0 then invalid_arg "Engine.transient: tstop must be positive";
  let sys = Mna.build nl in
  let idx = probe_indices nl sys probes in
  let x0 = Transient.dc_operating_point sys in
  let dt = tstop /. float_of_int options.steps_per_chunk in
  let chunk =
    Transient.run sys ~method_:options.method_ ~x0 ~t0:0.0 ~dt
      ~steps:options.steps_per_chunk ~probes:idx
  in
  (* Prepend the t=0 operating point so traces start at time zero. *)
  let times = Array.append [| 0.0 |] chunk.Transient.times in
  let data =
    Array.mapi
      (fun p col -> Array.append [| x0.(idx.(p)) |] col)
      chunk.Transient.states
  in
  { Trace.times; names = Array.of_list probes; data }

let threshold_delays ?(options = default_options) ?(fraction = 0.5) nl ~probes
    ~horizon =
  if horizon <= 0.0 then
    invalid_arg "Engine.threshold_delays: horizon must be positive";
  let sys = Mna.build nl in
  let idx = probe_indices nl sys probes in
  let num_probes = Array.length idx in
  let x0 = Transient.dc_operating_point sys in
  (* Final values: DC with sources settled. All supported settling
     waveforms (Step/Ramp/Pwl/Dc) are constant after their last corner,
     so evaluating far beyond the horizon is exact. *)
  let t_settled = 1e6 *. horizon in
  let xf =
    Numeric.Lu.solve (Numeric.Lu.factor sys.Mna.g) (sys.Mna.rhs t_settled)
  in
  let target =
    Array.map (fun u -> x0.(u) +. (fraction *. (xf.(u) -. x0.(u)))) idx
  in
  let found = Array.make num_probes None in
  let prev_v = Array.map (fun u -> x0.(u)) idx in
  let remaining = ref num_probes in
  (* Mark probes that already start at their target (degenerate). *)
  Array.iteri
    (fun p u ->
      if x0.(u) >= target.(p) then begin
        found.(p) <- Some 0.0;
        decr remaining
      end)
    idx;
  let dt = horizon /. float_of_int options.steps_per_chunk in
  let x = ref x0 in
  let t0 = ref 0.0 in
  let extensions = ref 0 in
  let chunk_steps = ref options.steps_per_chunk in
  while !remaining > 0 && !extensions <= options.max_extensions do
    let chunk =
      Transient.run sys ~method_:options.method_ ~x0:!x ~t0:!t0 ~dt
        ~steps:!chunk_steps ~probes:idx
    in
    for p = 0 to num_probes - 1 do
      if found.(p) = None then begin
        let col = chunk.Transient.states.(p) in
        let rec scan s prev prev_t =
          if s >= Array.length col then prev_v.(p) <- prev
          else if col.(s) >= target.(p) then begin
            let v0 = prev and v1 = col.(s) in
            let t1 = chunk.Transient.times.(s) in
            let t_cross =
              if v1 = v0 then t1
              else prev_t +. ((target.(p) -. v0) /. (v1 -. v0) *. (t1 -. prev_t))
            in
            found.(p) <- Some t_cross;
            decr remaining
          end
          else scan (s + 1) col.(s) chunk.Transient.times.(s)
        in
        scan 0 prev_v.(p) !t0
      end
    done;
    x := chunk.Transient.final;
    t0 := !t0 +. (float_of_int !chunk_steps *. dt);
    incr extensions;
    (* Double the window each retry so n extensions cover 2^n horizons. *)
    chunk_steps := !chunk_steps * 2
  done;
  List.mapi (fun p name -> (name, found.(p))) probes

let max_delay ?options ?fraction nl ~probes ~horizon =
  let delays = threshold_delays ?options ?fraction nl ~probes ~horizon in
  List.fold_left
    (fun acc (name, d) ->
      match d with
      | Some t -> Float.max acc t
      | None ->
          failwith
            (Printf.sprintf
               "Engine.max_delay: probe %s never reached threshold" name))
    0.0 delays
