open Circuit

type t = {
  size : int;
  num_node_unknowns : int;
  g : Numeric.Matrix.t;
  c : Numeric.Matrix.t;
  rhs : float -> float array;
  unknown_of_node : int array;
}

let build nl =
  let num_nodes = Netlist.num_nodes nl in
  let elements = Netlist.elements nl in
  let branches =
    List.filter
      (function Element.Vsource _ | Element.Inductor _ -> true | _ -> false)
      elements
  in
  let num_node_unknowns = num_nodes - 1 in
  let size = num_node_unknowns + List.length branches in
  if size = 0 then invalid_arg "Mna.build: circuit has no unknowns";
  let unknown_of_node = Array.init num_nodes (fun i -> i - 1) in
  let g = Numeric.Matrix.create size size in
  let c = Numeric.Matrix.create size size in
  let idx node = unknown_of_node.(node) in
  let stamp_conductance m pos neg value =
    let p = idx pos and n = idx neg in
    if p >= 0 then Numeric.Matrix.add_to m p p value;
    if n >= 0 then Numeric.Matrix.add_to m n n value;
    if p >= 0 && n >= 0 then begin
      Numeric.Matrix.add_to m p n (-.value);
      Numeric.Matrix.add_to m n p (-.value)
    end
  in
  (* b(t) contributions: (row, sign, waveform). *)
  let source_terms = ref [] in
  let next_branch = ref num_node_unknowns in
  List.iter
    (fun e ->
      match e with
      | Element.Resistor { pos; neg; ohms; _ } ->
          stamp_conductance g pos neg (1.0 /. ohms)
      | Element.Capacitor { pos; neg; farads; _ } ->
          stamp_conductance c pos neg farads
      | Element.Vsource { pos; neg; wave; _ } ->
          let row = !next_branch in
          incr next_branch;
          let p = idx pos and n = idx neg in
          if p >= 0 then begin
            Numeric.Matrix.add_to g p row 1.0;
            Numeric.Matrix.add_to g row p 1.0
          end;
          if n >= 0 then begin
            Numeric.Matrix.add_to g n row (-1.0);
            Numeric.Matrix.add_to g row n (-1.0)
          end;
          source_terms := (row, 1.0, wave) :: !source_terms
      | Element.Inductor { pos; neg; henries; _ } ->
          let row = !next_branch in
          incr next_branch;
          let p = idx pos and n = idx neg in
          if p >= 0 then begin
            Numeric.Matrix.add_to g p row 1.0;
            Numeric.Matrix.add_to g row p 1.0
          end;
          if n >= 0 then begin
            Numeric.Matrix.add_to g n row (-1.0);
            Numeric.Matrix.add_to g row n (-1.0)
          end;
          Numeric.Matrix.add_to c row row (-.henries)
      | Element.Isource { pos; neg; wave; _ } ->
          (* Positive source current flows from pos through the source
             to neg, i.e. it is extracted from pos and injected at neg. *)
          let p = idx pos and n = idx neg in
          if p >= 0 then source_terms := (p, -1.0, wave) :: !source_terms;
          if n >= 0 then source_terms := (n, 1.0, wave) :: !source_terms)
    elements;
  let source_terms = !source_terms in
  let rhs t =
    let b = Array.make size 0.0 in
    List.iter
      (fun (row, sign, wave) ->
        b.(row) <- b.(row) +. (sign *. Waveform.value wave t))
      source_terms;
    b
  in
  { size; num_node_unknowns; g; c; rhs; unknown_of_node }

let voltage sys x node =
  let u = sys.unknown_of_node.(node) in
  if u < 0 then 0.0 else x.(u)

(* Stamp deltas ---------------------------------------------------------- *)

module Delta = struct
  type base = t

  type stamp = { i : int; j : int; value : float }

  type t = {
    base_size : int;
    mutable added : int;
    mutable g_stamps : stamp list;  (* newest first *)
    mutable c_stamps : stamp list;
  }

  let create (sys : base) =
    { base_size = sys.size; added = 0; g_stamps = []; c_stamps = [] }

  let size d = d.base_size + d.added
  let added_unknowns d = d.added

  let fresh_unknown d =
    let u = d.base_size + d.added in
    d.added <- d.added + 1;
    u

  let check_index d u =
    if u < -1 || u >= size d then
      invalid_arg "Mna.Delta: unknown index out of range"

  let add_conductance d i j value =
    check_index d i;
    check_index d j;
    d.g_stamps <- { i; j; value } :: d.g_stamps

  let add_capacitance d i j value =
    check_index d i;
    check_index d j;
    d.c_stamps <- { i; j; value } :: d.c_stamps

  (* A two-terminal stamp between unknowns i and j is the symmetric
     rank-1 term v·(e_i − e_j)(e_i − e_j)ᵀ; with one terminal grounded
     it collapses to the diagonal term v·e_i·e_iᵀ. *)
  let g_terms d =
    let nt = size d in
    List.filter_map
      (fun { i; j; value } ->
        if i < 0 && j < 0 then None
        else begin
          let w = Array.make nt 0.0 in
          if i >= 0 then w.(i) <- 1.0;
          if j >= 0 then w.(j) <- w.(j) -. 1.0;
          Some (value, w, Array.copy w)
        end)
      (List.rev d.g_stamps)

  let stamp m i j value =
    if i >= 0 then Numeric.Matrix.add_to m i i value;
    if j >= 0 then Numeric.Matrix.add_to m j j value;
    if i >= 0 && j >= 0 then begin
      Numeric.Matrix.add_to m i j (-.value);
      Numeric.Matrix.add_to m j i (-.value)
    end

  let extend (sys : base) d =
    if sys.size <> d.base_size then
      invalid_arg "Mna.Delta.extend: delta built from a different system";
    let nt = size d in
    let grow src =
      let dst = Numeric.Matrix.create nt nt in
      for i = 0 to sys.size - 1 do
        for j = 0 to sys.size - 1 do
          let v = Numeric.Matrix.get src i j in
          if v <> 0.0 then Numeric.Matrix.set dst i j v
        done
      done;
      dst
    in
    let g = grow sys.g in
    let c = grow sys.c in
    List.iter (fun { i; j; value } -> stamp g i j value) (List.rev d.g_stamps);
    List.iter (fun { i; j; value } -> stamp c i j value) (List.rev d.c_stamps);
    let rhs t =
      let b = sys.rhs t in
      let out = Array.make nt 0.0 in
      Array.blit b 0 out 0 sys.size;
      out
    in
    { size = nt;
      num_node_unknowns = sys.num_node_unknowns;
      g;
      c;
      rhs;
      unknown_of_node = sys.unknown_of_node }
end
