open Circuit

type t = {
  size : int;
  num_node_unknowns : int;
  g : Numeric.Matrix.t;
  c : Numeric.Matrix.t;
  rhs : float -> float array;
  unknown_of_node : int array;
}

let build nl =
  let num_nodes = Netlist.num_nodes nl in
  let elements = Netlist.elements nl in
  let branches =
    List.filter
      (function Element.Vsource _ | Element.Inductor _ -> true | _ -> false)
      elements
  in
  let num_node_unknowns = num_nodes - 1 in
  let size = num_node_unknowns + List.length branches in
  if size = 0 then invalid_arg "Mna.build: circuit has no unknowns";
  let unknown_of_node = Array.init num_nodes (fun i -> i - 1) in
  let g = Numeric.Matrix.create size size in
  let c = Numeric.Matrix.create size size in
  let idx node = unknown_of_node.(node) in
  let stamp_conductance m pos neg value =
    let p = idx pos and n = idx neg in
    if p >= 0 then Numeric.Matrix.add_to m p p value;
    if n >= 0 then Numeric.Matrix.add_to m n n value;
    if p >= 0 && n >= 0 then begin
      Numeric.Matrix.add_to m p n (-.value);
      Numeric.Matrix.add_to m n p (-.value)
    end
  in
  (* b(t) contributions: (row, sign, waveform). *)
  let source_terms = ref [] in
  let next_branch = ref num_node_unknowns in
  List.iter
    (fun e ->
      match e with
      | Element.Resistor { pos; neg; ohms; _ } ->
          stamp_conductance g pos neg (1.0 /. ohms)
      | Element.Capacitor { pos; neg; farads; _ } ->
          stamp_conductance c pos neg farads
      | Element.Vsource { pos; neg; wave; _ } ->
          let row = !next_branch in
          incr next_branch;
          let p = idx pos and n = idx neg in
          if p >= 0 then begin
            Numeric.Matrix.add_to g p row 1.0;
            Numeric.Matrix.add_to g row p 1.0
          end;
          if n >= 0 then begin
            Numeric.Matrix.add_to g n row (-1.0);
            Numeric.Matrix.add_to g row n (-1.0)
          end;
          source_terms := (row, 1.0, wave) :: !source_terms
      | Element.Inductor { pos; neg; henries; _ } ->
          let row = !next_branch in
          incr next_branch;
          let p = idx pos and n = idx neg in
          if p >= 0 then begin
            Numeric.Matrix.add_to g p row 1.0;
            Numeric.Matrix.add_to g row p 1.0
          end;
          if n >= 0 then begin
            Numeric.Matrix.add_to g n row (-1.0);
            Numeric.Matrix.add_to g row n (-1.0)
          end;
          Numeric.Matrix.add_to c row row (-.henries)
      | Element.Isource { pos; neg; wave; _ } ->
          (* Positive source current flows from pos through the source
             to neg, i.e. it is extracted from pos and injected at neg. *)
          let p = idx pos and n = idx neg in
          if p >= 0 then source_terms := (p, -1.0, wave) :: !source_terms;
          if n >= 0 then source_terms := (n, 1.0, wave) :: !source_terms)
    elements;
  let source_terms = !source_terms in
  let rhs t =
    let b = Array.make size 0.0 in
    List.iter
      (fun (row, sign, wave) ->
        b.(row) <- b.(row) +. (sign *. Waveform.value wave t))
      source_terms;
    b
  in
  { size; num_node_unknowns; g; c; rhs; unknown_of_node }

let voltage sys x node =
  let u = sys.unknown_of_node.(node) in
  if u < 0 then 0.0 else x.(u)
