open Circuit
module Triplets = Numeric.Sparse.Triplets
module Csc = Numeric.Sparse.Csc

type t = {
  size : int;
  num_node_unknowns : int;
  g : Numeric.Matrix.t;
  c : Numeric.Matrix.t;
  rhs : float -> float array;
  unknown_of_node : int array;
  g_stamps : Triplets.t;
  c_stamps : Triplets.t;
  g_csc : Csc.t;
  g_sym : Numeric.Sparse.Symbolic.t;
  lhs_sym : Numeric.Sparse.Symbolic.t;
}

(* Replaying the triplet log into a dense matrix reproduces the exact
   float values the old direct [add_to] stamping computed: duplicates
   sum in insertion order either way. [Csc.of_triplets] makes the same
   ordering guarantee, so the two images of G agree bitwise. *)
let materialize n trips =
  let m = Numeric.Matrix.create n n in
  Triplets.iter trips (fun i j v -> Numeric.Matrix.add_to m i j v);
  m

(* The sparse caches are computed eagerly — [Mna.t] values are shared
   read-only across worker domains, where a lazy thunk would race.
   [lhs_sym] orders the union pattern of G and C: the transient
   iteration matrix G + C/h (any h, any integration method) and every
   doubled-timestep refactor reuse it. *)
let finish ~size ~num_node_unknowns ~rhs ~unknown_of_node gt ct =
  let g_csc = Csc.of_triplets ~n:size gt in
  let g_sym = Numeric.Sparse.analyze g_csc in
  let lhs_sym =
    let u = Triplets.create ~capacity:(Triplets.length gt + Triplets.length ct) () in
    Triplets.iter gt (fun i j _ -> Triplets.add u i j 1.0);
    Triplets.iter ct (fun i j _ -> Triplets.add u i j 1.0);
    Numeric.Sparse.analyze (Csc.of_triplets ~n:size u)
  in
  {
    size;
    num_node_unknowns;
    g = materialize size gt;
    c = materialize size ct;
    rhs;
    unknown_of_node;
    g_stamps = gt;
    c_stamps = ct;
    g_csc;
    g_sym;
    lhs_sym;
  }

let build nl =
  let num_nodes = Netlist.num_nodes nl in
  let elements = Netlist.elements nl in
  let branches =
    List.filter
      (function Element.Vsource _ | Element.Inductor _ -> true | _ -> false)
      elements
  in
  let num_node_unknowns = num_nodes - 1 in
  let size = num_node_unknowns + List.length branches in
  if size = 0 then invalid_arg "Mna.build: circuit has no unknowns";
  let unknown_of_node = Array.init num_nodes (fun i -> i - 1) in
  let gt = Triplets.create ~capacity:(4 * List.length elements) () in
  let ct = Triplets.create ~capacity:(4 * List.length elements) () in
  let idx node = unknown_of_node.(node) in
  let stamp_conductance m pos neg value =
    let p = idx pos and n = idx neg in
    if p >= 0 then Triplets.add m p p value;
    if n >= 0 then Triplets.add m n n value;
    if p >= 0 && n >= 0 then begin
      Triplets.add m p n (-.value);
      Triplets.add m n p (-.value)
    end
  in
  (* b(t) contributions: (row, sign, waveform). *)
  let source_terms = ref [] in
  let next_branch = ref num_node_unknowns in
  List.iter
    (fun e ->
      match e with
      | Element.Resistor { pos; neg; ohms; _ } ->
          stamp_conductance gt pos neg (1.0 /. ohms)
      | Element.Capacitor { pos; neg; farads; _ } ->
          stamp_conductance ct pos neg farads
      | Element.Vsource { pos; neg; wave; _ } ->
          let row = !next_branch in
          incr next_branch;
          let p = idx pos and n = idx neg in
          if p >= 0 then begin
            Triplets.add gt p row 1.0;
            Triplets.add gt row p 1.0
          end;
          if n >= 0 then begin
            Triplets.add gt n row (-1.0);
            Triplets.add gt row n (-1.0)
          end;
          source_terms := (row, 1.0, wave) :: !source_terms
      | Element.Inductor { pos; neg; henries; _ } ->
          let row = !next_branch in
          incr next_branch;
          let p = idx pos and n = idx neg in
          if p >= 0 then begin
            Triplets.add gt p row 1.0;
            Triplets.add gt row p 1.0
          end;
          if n >= 0 then begin
            Triplets.add gt n row (-1.0);
            Triplets.add gt row n (-1.0)
          end;
          Triplets.add ct row row (-.henries)
      | Element.Isource { pos; neg; wave; _ } ->
          (* Positive source current flows from pos through the source
             to neg, i.e. it is extracted from pos and injected at neg. *)
          let p = idx pos and n = idx neg in
          if p >= 0 then source_terms := (p, -1.0, wave) :: !source_terms;
          if n >= 0 then source_terms := (n, 1.0, wave) :: !source_terms)
    elements;
  let source_terms = !source_terms in
  let rhs t =
    let b = Array.make size 0.0 in
    List.iter
      (fun (row, sign, wave) ->
        b.(row) <- b.(row) +. (sign *. Waveform.value wave t))
      source_terms;
    b
  in
  finish ~size ~num_node_unknowns ~rhs ~unknown_of_node gt ct

let voltage sys x node =
  let u = sys.unknown_of_node.(node) in
  if u < 0 then 0.0 else x.(u)

(* G is factored in several places (DC operating point, settle probe,
   incremental base) — one helper keeps them all on the triplet path
   with the precomputed ordering, handing the dense image over for the
   backend's dense mode and pivot fallback. *)
let factor_g_result sys =
  Numeric.Backend.try_factor_csc ~symbolic:sys.g_sym ~dense:sys.g sys.g_csc

let factor_g sys =
  match factor_g_result sys with
  | Ok f -> f
  | Error k -> raise (Numeric.Lu.Singular k)

(* Stamp deltas ---------------------------------------------------------- *)

module Delta = struct
  type base = t

  type stamp = { i : int; j : int; value : float }

  type t = {
    base_size : int;
    mutable added : int;
    mutable g_stamps : stamp list;  (* newest first *)
    mutable c_stamps : stamp list;
  }

  let create (sys : base) =
    { base_size = sys.size; added = 0; g_stamps = []; c_stamps = [] }

  let size d = d.base_size + d.added
  let added_unknowns d = d.added
  let fresh_unknown d =
    let u = d.base_size + d.added in
    d.added <- d.added + 1;
    u

  let check_index d u =
    if u < -1 || u >= size d then
      invalid_arg "Mna.Delta: unknown index out of range"

  let add_conductance d i j value =
    check_index d i;
    check_index d j;
    d.g_stamps <- { i; j; value } :: d.g_stamps

  let add_capacitance d i j value =
    check_index d i;
    check_index d j;
    d.c_stamps <- { i; j; value } :: d.c_stamps

  (* A two-terminal stamp between unknowns i and j is the symmetric
     rank-1 term v·(e_i − e_j)(e_i − e_j)ᵀ; with one terminal grounded
     it collapses to the diagonal term v·e_i·e_iᵀ. *)
  let g_terms d =
    let nt = size d in
    List.filter_map
      (fun { i; j; value } ->
        if i < 0 && j < 0 then None
        else begin
          let w = Array.make nt 0.0 in
          if i >= 0 then w.(i) <- 1.0;
          if j >= 0 then w.(j) <- w.(j) -. 1.0;
          Some (value, w, Array.copy w)
        end)
      (List.rev d.g_stamps)

  let stamp m i j value =
    if i >= 0 then Triplets.add m i i value;
    if j >= 0 then Triplets.add m j j value;
    if i >= 0 && j >= 0 then begin
      Triplets.add m i j (-.value);
      Triplets.add m j i (-.value)
    end

  (* The extended system replays the base triplet log and appends the
     delta stamps, so its dense entries match what growing the dense
     matrices entry-by-entry used to produce, and it gets fresh sparse
     caches sized for the extended pattern. *)
  let extend (sys : base) d =
    if sys.size <> d.base_size then
      invalid_arg "Mna.Delta.extend: delta built from a different system";
    let nt = size d in
    let gt = Triplets.copy sys.g_stamps in
    let ct = Triplets.copy sys.c_stamps in
    List.iter (fun { i; j; value } -> stamp gt i j value) (List.rev d.g_stamps);
    List.iter (fun { i; j; value } -> stamp ct i j value) (List.rev d.c_stamps);
    let rhs t =
      let b = sys.rhs t in
      let out = Array.make nt 0.0 in
      Array.blit b 0 out 0 sys.size;
      out
    in
    finish ~size:nt ~num_node_unknowns:sys.num_node_unknowns ~rhs
      ~unknown_of_node:sys.unknown_of_node gt ct
end
