type method_ = Backward_euler | Trapezoidal

type chunk = {
  times : float array;
  states : float array array;
  final : float array;
}

let dc_operating_point (sys : Mna.t) =
  Numeric.Backend.solve (Mna.factor_g sys) (sys.Mna.rhs 0.0)

(* Compressed sparse rows of a matrix: MNA matrices have a handful of
   nonzeros per row, so the explicit-side product per timestep is far
   cheaper sparse than dense. *)
type csr = {
  row_start : int array;  (* length n+1 *)
  col : int array;
  value : float array;
}

let csr_of_matrix m =
  let n = Numeric.Matrix.rows m in
  let data = Numeric.Matrix.data m in
  let row_start = Array.make (n + 1) 0 in
  let cols = ref [] and values = ref [] in
  let nnz = ref 0 in
  for i = 0 to n - 1 do
    row_start.(i) <- !nnz;
    for j = 0 to n - 1 do
      let v = data.((i * n) + j) in
      if v <> 0.0 then begin
        cols := j :: !cols;
        values := v :: !values;
        incr nnz
      end
    done
  done;
  row_start.(n) <- !nnz;
  { row_start;
    col = Array.of_list (List.rev !cols);
    value = Array.of_list (List.rev !values) }

let csr_mul_into csr x out =
  let n = Array.length out in
  for i = 0 to n - 1 do
    let s = ref 0.0 in
    for k = csr.row_start.(i) to csr.row_start.(i + 1) - 1 do
      s :=
        !s
        +. (Array.unsafe_get csr.value k
            *. Array.unsafe_get x (Array.unsafe_get csr.col k))
    done;
    Array.unsafe_set out i !s
  done

let run (sys : Mna.t) ~method_ ~x0 ~t0 ~dt ~steps ~probes =
  if dt <= 0.0 then invalid_arg "Transient.run: dt must be positive";
  if steps <= 0 then invalid_arg "Transient.run: steps must be positive";
  if Array.length x0 <> sys.Mna.size then
    invalid_arg "Transient.run: state size mismatch";
  let n = sys.Mna.size in
  let g = sys.Mna.g and c = sys.Mna.c in
  let lhs, explicit =
    match method_ with
    | Backward_euler ->
        (* (G + C/h) x' = (C/h) x + b(t') *)
        let ch = Numeric.Matrix.scale (1.0 /. dt) c in
        (Numeric.Matrix.add g ch, ch)
    | Trapezoidal ->
        (* (G + 2C/h) x' = (2C/h - G) x + b(t) + b(t') *)
        let c2h = Numeric.Matrix.scale (2.0 /. dt) c in
        (Numeric.Matrix.add g c2h, Numeric.Matrix.sub c2h g)
  in
  (* The iteration matrix is assembled densely (bit-identical entries
     under either backend) and factored by the active backend; its
     pattern is covered by the precomputed G∪C ordering whatever the
     timestep or method. *)
  let lu = Numeric.Backend.factor ~symbolic:sys.Mna.lhs_sym lhs in
  let explicit_csr = csr_of_matrix explicit in
  let num_probes = Array.length probes in
  let times = Array.make steps 0.0 in
  let states = Array.init num_probes (fun _ -> Array.make steps 0.0) in
  let x = Array.copy x0 in
  let rhs = Array.make n 0.0 in
  let b_prev = ref (sys.Mna.rhs t0) in
  for s = 0 to steps - 1 do
    let t' = t0 +. (float_of_int (s + 1) *. dt) in
    let b' = sys.Mna.rhs t' in
    csr_mul_into explicit_csr x rhs;
    (match method_ with
    | Backward_euler ->
        for i = 0 to n - 1 do
          Array.unsafe_set rhs i
            (Array.unsafe_get rhs i +. Array.unsafe_get b' i)
        done
    | Trapezoidal ->
        let bp = !b_prev in
        for i = 0 to n - 1 do
          Array.unsafe_set rhs i
            (Array.unsafe_get rhs i +. Array.unsafe_get bp i
            +. Array.unsafe_get b' i)
        done);
    Numeric.Backend.solve_in_place lu rhs;
    Array.blit rhs 0 x 0 n;
    b_prev := b';
    times.(s) <- t';
    for p = 0 to num_probes - 1 do
      states.(p).(s) <- x.(probes.(p))
    done
  done;
  { times; states; final = x }
