(** Small-signal AC (frequency-domain) analysis.

    Solves the phasor MNA system (G + jωC)·x = b at each frequency of
    a sweep, with one chosen independent voltage source driven at
    1 V∠0° and every other source turned off — SPICE's [.AC] with an
    ACMAG of 1 on the source of interest. Everything in these circuits
    is linear, so this is exact. *)

type point = {
  freq_hz : float;
  response : Complex.t;  (** phasor voltage at the probed node *)
}

type sweep = point list

val log_frequencies :
  f_start:float -> f_stop:float -> points_per_decade:int -> float list
(** Logarithmic frequency grid inclusive of [f_start].

    @raise Invalid_argument unless [0 < f_start < f_stop] and
    [points_per_decade > 0]. *)

val analyze :
  Circuit.Netlist.t ->
  source:string ->
  probe:string ->
  frequencies:float list ->
  sweep
(** [analyze nl ~source ~probe ~frequencies] drives the named voltage
    source with a unit phasor and records the probed node.

    @raise Invalid_argument when [source] is not a voltage source of
    the netlist or [probe] is not a node. *)

val magnitude_db : point -> float
(** 20·log₁₀ |response|. *)

val phase_deg : point -> float

val bandwidth_3db : sweep -> float option
(** First frequency where the magnitude drops 3 dB below the sweep's
    first point; [None] when it never does (interpolated
    logarithmically between grid points). *)

val to_csv : sweep -> string
(** Columns: freq_hz, magnitude_db, phase_deg. *)
