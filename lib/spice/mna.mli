(** Modified nodal analysis (MNA) assembly.

    A linear circuit with node voltages v and branch currents i (one
    branch unknown per voltage source and per inductor) satisfies

    G·x + C·dx/dt = b(t)

    where x = (v, i). This module builds G, C and b from a netlist.
    Ground (node 0) is eliminated; unknown indices therefore run over
    non-ground nodes first, then branches.

    Assembly goes through a triplet stamp log, which feeds both matrix
    backends: the dense images [g]/[c] (a bit-exact replay of the
    stamps) and the sparse image [g_csc] with precomputed fill-reducing
    orderings. The sparse caches are built eagerly so an [Mna.t] can be
    shared read-only across worker domains. *)

type t = {
  size : int;  (** total number of unknowns *)
  num_node_unknowns : int;  (** non-ground node count *)
  g : Numeric.Matrix.t;  (** static (conductance/incidence) part *)
  c : Numeric.Matrix.t;  (** reactive (capacitance/inductance) part *)
  rhs : float -> float array;  (** b(t) *)
  unknown_of_node : int array;
      (** netlist node id → unknown index; ground maps to -1 *)
  g_stamps : Numeric.Sparse.Triplets.t;  (** the stamp log behind [g] *)
  c_stamps : Numeric.Sparse.Triplets.t;  (** the stamp log behind [c] *)
  g_csc : Numeric.Sparse.Csc.t;  (** sparse image of [g] *)
  g_sym : Numeric.Sparse.Symbolic.t;  (** ordering for G's pattern *)
  lhs_sym : Numeric.Sparse.Symbolic.t;
      (** ordering for the union pattern of G and C — valid for the
          transient iteration matrix G + C/h at every timestep *)
}

val build : Circuit.Netlist.t -> t
(** @raise Invalid_argument on an empty circuit (no unknowns). *)

val factor_g_result : t -> (Numeric.Backend.t, int) result
(** Factor G under the active matrix backend, reusing the precomputed
    [g_sym] ordering; error codes as {!Numeric.Lu.try_factor}. *)

val factor_g : t -> Numeric.Backend.t
(** @raise Numeric.Lu.Singular when G has no usable pivot. *)

val voltage : t -> float array -> int -> float
(** [voltage sys x node] extracts a node voltage from a solution
    vector; ground reads 0. *)

(** Stamp deltas: the elements added on top of an already-built system,
    kept symbolic instead of re-assembled.

    A delta records two-terminal conductance/capacitance stamps between
    existing unknowns, ground ([-1]) and freshly appended unknowns
    (internal nodes of an added wire, numbered from [size] upward,
    after every base unknown — node voltages of the base system keep
    their indices). Consumers pick the representation they need:
    {!g_terms} renders the static stamps as rank-1 update vectors for
    {!Numeric.Lu.Update} (DC and settle solves without refactoring),
    while {!extend} materialises the full extended system for the
    transient, whose companion matrix depends on the timestep anyway. *)
module Delta : sig
  type mna := t

  type t

  val create : mna -> t
  (** An empty delta over [sys]; records the base size. *)

  val fresh_unknown : t -> int
  (** Allocate one appended unknown and return its index. *)

  val add_conductance : t -> int -> int -> float -> unit
  (** [add_conductance d i j g] stamps a conductance between unknowns
      [i] and [j] ([-1] for ground), as [Mna.build] does for a
      resistor.
      @raise Invalid_argument on an out-of-range index. *)

  val add_capacitance : t -> int -> int -> float -> unit
  (** Same for the reactive matrix (a capacitor). *)

  val added_unknowns : t -> int
  (** How many unknowns {!fresh_unknown} appended. *)

  val size : t -> int
  (** Extended system size: base size + added unknowns. *)

  val g_terms : t -> (float * float array * float array) list
  (** The static stamps as symmetric rank-1 terms over the extended
      size, in stamping order — ready for [Numeric.Lu.Update.make]
      with [pad = added_unknowns]. Ground-to-ground stamps vanish. *)

  val extend : mna -> t -> mna
  (** The extended system as a plain [Mna.t]: matrices grown and
      stamped, right-hand side zero-padded, node→unknown map
      unchanged.
      @raise Invalid_argument when [d] was built from a system of a
      different size. *)
end
