(** Modified nodal analysis (MNA) assembly.

    A linear circuit with node voltages v and branch currents i (one
    branch unknown per voltage source and per inductor) satisfies

    G·x + C·dx/dt = b(t)

    where x = (v, i). This module builds G, C and b from a netlist.
    Ground (node 0) is eliminated; unknown indices therefore run over
    non-ground nodes first, then branches. *)

type t = {
  size : int;  (** total number of unknowns *)
  num_node_unknowns : int;  (** non-ground node count *)
  g : Numeric.Matrix.t;  (** static (conductance/incidence) part *)
  c : Numeric.Matrix.t;  (** reactive (capacitance/inductance) part *)
  rhs : float -> float array;  (** b(t) *)
  unknown_of_node : int array;
      (** netlist node id → unknown index; ground maps to -1 *)
}

val build : Circuit.Netlist.t -> t
(** @raise Invalid_argument on an empty circuit (no unknowns). *)

val voltage : t -> float array -> int -> float
(** [voltage sys x node] extracts a node voltage from a solution
    vector; ground reads 0. *)
