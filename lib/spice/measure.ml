let first_crossing ~times ~values ~level =
  let n = Array.length values in
  if n = 0 || Array.length times <> n then
    invalid_arg "Measure.first_crossing: bad arrays";
  (* A crossing is an upward transition through [level]: a sample below
     it followed by one at or above it. The first sample can only count
     when it sits exactly at [level]; a waveform that *starts above* the
     threshold never crossed it from below (an initially-high or falling
     waveform must first dip under [level] before a later rise counts),
     so it must not report a spurious t = times.(0) delay. *)
  if values.(0) = level then Some times.(0)
  else begin
    let rec scan i =
      if i >= n then None
      else if values.(i - 1) < level && values.(i) >= level then
        if values.(i) = level then Some times.(i)
        else begin
          (* Interpolate within [i-1, i]; v0 < level <= v1 here, so the
             slope is nonzero. *)
          let v0 = values.(i - 1) and v1 = values.(i) in
          let t0 = times.(i - 1) and t1 = times.(i) in
          Some (t0 +. ((level -. v0) /. (v1 -. v0) *. (t1 -. t0)))
        end
      else scan (i + 1)
    in
    scan 1
  end

let final_value ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Measure.final_value: empty waveform";
  values.(n - 1)

let threshold_delay ~times ~values ~fraction ~vfinal =
  first_crossing ~times ~values ~level:(fraction *. vfinal)

let rise_time ~times ~values ~vfinal =
  match
    ( first_crossing ~times ~values ~level:(0.1 *. vfinal),
      first_crossing ~times ~values ~level:(0.9 *. vfinal) )
  with
  | Some t10, Some t90 -> Some (t90 -. t10)
  | _ -> None

let overshoot ~values ~vfinal =
  if Array.length values = 0 then
    invalid_arg "Measure.overshoot: empty waveform";
  let peak = Array.fold_left Float.max neg_infinity values in
  Float.max 0.0 (peak -. vfinal)
