(** Fixed-step transient integration of MNA systems.

    Both methods factor the iteration matrix once and back-substitute
    per step. The factorisation goes through {!Numeric.Backend}: under
    the default sparse backend a simulation costs one near-O(nnz)
    sparse factorisation (near-tree MNA patterns produce little fill)
    plus an O(nnz) back-substitution per step; under the dense backend
    the classic O(n³) factorisation plus O(n²) per step:

    - backward Euler:  (G + C/h)·x' = (C/h)·x + b(t')
    - trapezoidal:     (G + 2C/h)·x' = (2C/h − G)·x + b(t) + b(t')

    Trapezoidal is second-order accurate and is the default everywhere;
    backward Euler is kept for its robustness to discontinuities and
    for convergence tests. *)

type method_ = Backward_euler | Trapezoidal

type chunk = {
  times : float array;  (** step times, starting after [t0] *)
  states : float array array;  (** recorded unknowns per step, probe-major *)
  final : float array;  (** full state at the last step *)
}

val dc_operating_point : Mna.t -> float array
(** Solves G·x = b(0): capacitors open, inductors shorted.

    @raise Numeric.Lu.Singular for a structurally defective circuit
    (e.g. a node with no DC path to ground). *)

val run :
  Mna.t ->
  method_:method_ ->
  x0:float array ->
  t0:float ->
  dt:float ->
  steps:int ->
  probes:int array ->
  chunk
(** Integrates [steps] steps of size [dt] from state [x0] at time [t0],
    recording the unknowns listed in [probes] ([chunk.states.(i).(s)]
    is probe [i] at step [s]). Continuation is exact: pass [final] and
    the last time back in to extend a simulation.

    @raise Invalid_argument on non-positive [dt] or [steps], or a
    state-size mismatch. *)
