type t = {
  times : float array;
  names : string array;
  data : float array array;
}

let signal t name =
  let rec find i =
    if i >= Array.length t.names then raise Not_found
    else if t.names.(i) = name then t.data.(i)
    else find (i + 1)
  in
  find 0

let length t = Array.length t.times

let append a b =
  if a.names <> b.names then invalid_arg "Trace.append: probe mismatch";
  { times = Array.append a.times b.times;
    names = a.names;
    data = Array.map2 Array.append a.data b.data }

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time";
  Array.iter (fun n -> Buffer.add_string buf ("," ^ n)) t.names;
  Buffer.add_char buf '\n';
  for s = 0 to length t - 1 do
    Buffer.add_string buf (Printf.sprintf "%.6e" t.times.(s));
    Array.iter
      (fun col -> Buffer.add_string buf (Printf.sprintf ",%.6e" col.(s)))
      t.data;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let write_csv path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

let ascii_plot ?(width = 72) ?(height = 16) t name =
  let v = signal t name in
  let n = Array.length v in
  if n = 0 then "(empty trace)"
  else begin
    let vmin = Array.fold_left Float.min v.(0) v in
    let vmax = Array.fold_left Float.max v.(0) v in
    let span = if vmax = vmin then 1.0 else vmax -. vmin in
    let grid = Array.make_matrix height width ' ' in
    for col = 0 to width - 1 do
      let s = col * (n - 1) / Int.max 1 (width - 1) in
      let frac = (v.(s) -. vmin) /. span in
      let row = height - 1 - int_of_float (frac *. float_of_int (height - 1)) in
      let row = Int.max 0 (Int.min (height - 1) row) in
      grid.(row).(col) <- '*'
    done;
    let buf = Buffer.create ((width + 8) * height) in
    Buffer.add_string buf
      (Printf.sprintf "%s: [%g, %g] over [%g, %g]s\n" name vmin vmax
         t.times.(0)
         t.times.(n - 1));
    Array.iter
      (fun row ->
        Buffer.add_string buf (String.init width (fun i -> row.(i)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.contents buf
  end
