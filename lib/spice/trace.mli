(** Simulation traces: sampled node-voltage waveforms. *)

type t = {
  times : float array;
  names : string array;  (** probe names, parallel to [data] *)
  data : float array array;  (** [data.(p).(s)] = probe p at sample s *)
}

val signal : t -> string -> float array
(** @raise Not_found for an unknown probe name. *)

val length : t -> int

val append : t -> t -> t
(** Concatenates two traces of the same probes in time order.

    @raise Invalid_argument when probe names differ. *)

val to_csv : t -> string
(** Header row [time,name1,...]; one row per sample. *)

val write_csv : string -> t -> unit

val ascii_plot : ?width:int -> ?height:int -> t -> string -> string
(** Quick terminal plot of one signal, for the examples and debugging.

    @raise Not_found for an unknown probe name. *)
