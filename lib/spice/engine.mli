(** High-level simulation driver.

    This is the "SPICE" the rest of the repository calls: given a
    netlist it computes operating points, transient traces, and the 50 %
    threshold delays that define the paper's delay metric t(n_i). *)

type options = {
  method_ : Transient.method_;  (** integration method (default trapezoidal) *)
  steps_per_chunk : int;
      (** timesteps per simulation chunk; also sets the step size of a
          fixed-horizon transient *)
  max_extensions : int;
      (** how many times a threshold search may double its horizon
          before giving up *)
}

val default_options : options
(** Trapezoidal, 600 steps per chunk, 12 extensions. *)

val fast_options : options
(** Coarser (160 steps) — used inside greedy routing loops where
    thousands of simulations are run per net. *)

val accurate_options : options
(** Finer (2500 steps) — for final reported numbers. *)

val dc : Circuit.Netlist.t -> (string * float) list
(** DC operating point at t = 0: node name → voltage, excluding
    ground. *)

val transient :
  ?options:options ->
  Circuit.Netlist.t ->
  tstop:float ->
  probes:string list ->
  Trace.t
(** Fixed-horizon transient from the t=0 operating point, recording the
    named nodes.

    @raise Invalid_argument for an unknown probe name or a
    non-positive [tstop]. *)

val threshold_delays :
  ?options:options ->
  ?fraction:float ->
  Circuit.Netlist.t ->
  probes:string list ->
  horizon:float ->
  (string * float option) list
(** [threshold_delays nl ~probes ~horizon] runs the transient from the
    t=0 operating point, extending (doubling) the simulated window
    until every probe has crossed [fraction] (default 0.5) of its final
    DC value or [max_extensions] is exhausted; unreached probes report
    [None]. [horizon] is the initial window estimate — a few times the
    slowest expected time constant. *)

val max_delay :
  ?options:options ->
  ?fraction:float ->
  Circuit.Netlist.t ->
  probes:string list ->
  horizon:float ->
  float
(** Maximum threshold delay across [probes] — the paper's objective
    t(G) = max_i t(n_i).

    @raise Failure when some probe never settles (the simulation
    window was exhausted), which indicates a malformed circuit. *)
