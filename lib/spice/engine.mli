(** High-level simulation driver.

    This is the "SPICE" the rest of the repository calls: given a
    netlist it computes operating points, transient traces, and the 50 %
    threshold delays that define the paper's delay metric t(n_i).

    Every analysis comes in two flavours: a [_result] variant that
    reports operational failures (singular MNA matrices, non-finite
    waveforms, probes that never settle) as [Nontree_error.t] — the
    fault-tolerant oracle route — and a legacy variant that raises
    {!Nontree_error.Error} instead. Argument-shape mistakes (unknown
    probe names, non-positive horizons) raise [Invalid_argument] in
    both. When fault injection ({!Fault}) is enabled, threshold-delay
    queries occasionally fail on purpose. *)

type options = {
  method_ : Transient.method_;  (** integration method (default trapezoidal) *)
  steps_per_chunk : int;
      (** timesteps per simulation chunk; also sets the step size of a
          fixed-horizon transient *)
  max_extensions : int;
      (** how many times a threshold search may double its horizon
          before giving up *)
}

val default_options : options
(** Trapezoidal, 600 steps per chunk, 12 extensions. *)

val fast_options : options
(** Coarser (160 steps) — used inside greedy routing loops where
    thousands of simulations are run per net. *)

val accurate_options : options
(** Finer (2500 steps) — for final reported numbers. *)

val dc : Circuit.Netlist.t -> (string * float) list
(** DC operating point at t = 0: node name → voltage, excluding
    ground.

    @raise Nontree_error.Error on a singular or non-finite system. *)

val dc_result :
  Circuit.Netlist.t -> ((string * float) list, Nontree_error.t) result

val transient :
  ?options:options ->
  Circuit.Netlist.t ->
  tstop:float ->
  probes:string list ->
  Trace.t
(** Fixed-horizon transient from the t=0 operating point, recording the
    named nodes.

    @raise Invalid_argument for an unknown probe name or a
    non-positive [tstop].
    @raise Nontree_error.Error on a singular system or a waveform that
    leaves the finite range. *)

val transient_result :
  ?options:options ->
  Circuit.Netlist.t ->
  tstop:float ->
  probes:string list ->
  (Trace.t, Nontree_error.t) result

val settled_time : horizon:float -> float
(** The time at which every supported source waveform has reached its
    final value — where the threshold targets' DC endpoint is
    evaluated (10⁶ × horizon). *)

val threshold_scan_result :
  ?options:options ->
  ?fraction:float ->
  Mna.t ->
  idx:int array ->
  x0:float array ->
  xf:float array ->
  horizon:float ->
  (float option array, Nontree_error.t) result
(** The chunked threshold search on an already-built system: starting
    from state [x0], integrate and extend (doubling the window up to
    [max_extensions] times) until every probed unknown in [idx] crosses
    [fraction] of the way from its initial to its settled value [xf];
    probes that never cross report [None]. This is the core of
    {!threshold_delays_result}, exposed so the incremental oracle can
    run the identical scan on a rank-1-extended system without
    rebuilding the netlist. No fault is injected here — the callers
    own that draw.

    @raise Invalid_argument on a non-positive [horizon]. *)

val threshold_delays_result :
  ?options:options ->
  ?fraction:float ->
  Circuit.Netlist.t ->
  probes:string list ->
  horizon:float ->
  ((string * float option) list, Nontree_error.t) result
(** [threshold_delays_result nl ~probes ~horizon] runs the transient
    from the t=0 operating point, extending (doubling) the simulated
    window until every probe has crossed [fraction] (default 0.5) of
    its final DC value or [max_extensions] is exhausted; unreached
    probes report [None]. [horizon] is the initial window estimate — a
    few times the slowest expected time constant.

    Waveforms are guarded: any non-finite state value aborts the
    analysis with [Non_finite] rather than scanning garbage for
    threshold crossings; singular factorisations surface as
    [Singular_matrix]. *)

val threshold_delays :
  ?options:options ->
  ?fraction:float ->
  Circuit.Netlist.t ->
  probes:string list ->
  horizon:float ->
  (string * float option) list
(** Legacy variant of {!threshold_delays_result}.

    @raise Nontree_error.Error on operational failure. *)

val max_delay_result :
  ?options:options ->
  ?fraction:float ->
  Circuit.Netlist.t ->
  probes:string list ->
  horizon:float ->
  (float, Nontree_error.t) result
(** Maximum threshold delay across [probes] — the paper's objective
    t(G) = max_i t(n_i). A probe that never settles is an error
    ([Probe_never_settled]), not a silent [None]. *)

val max_delay :
  ?options:options ->
  ?fraction:float ->
  Circuit.Netlist.t ->
  probes:string list ->
  horizon:float ->
  float
(** Legacy variant of {!max_delay_result}.

    @raise Nontree_error.Error when some probe never settles (the
    simulation window was exhausted) or the system is singular. *)
