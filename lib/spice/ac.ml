type point = { freq_hz : float; response : Complex.t }
type sweep = point list

let log_frequencies ~f_start ~f_stop ~points_per_decade =
  if f_start <= 0.0 || f_stop <= f_start then
    invalid_arg "Ac.log_frequencies: need 0 < f_start < f_stop";
  if points_per_decade <= 0 then
    invalid_arg "Ac.log_frequencies: points_per_decade must be positive";
  let step = 10.0 ** (1.0 /. float_of_int points_per_decade) in
  let rec go f acc =
    if f > f_stop *. (1.0 +. 1e-12) then List.rev acc
    else go (f *. step) (f :: acc)
  in
  go f_start []

(* Rebuild the netlist with the chosen source as a DC 1 V marker and
   all other independent sources zeroed, then reuse the MNA stamps:
   the b-vector of the resulting system at any time is exactly the
   phasor excitation vector. *)
let excitation_netlist nl ~source =
  let found = ref false in
  let rebuilt = Circuit.Netlist.create () in
  (* Recreate all nodes under their original names so indices match. *)
  for id = 1 to Circuit.Netlist.num_nodes nl - 1 do
    ignore (Circuit.Netlist.node rebuilt (Circuit.Netlist.node_name nl id))
  done;
  List.iter
    (fun e ->
      match e with
      | Circuit.Element.Vsource { name; pos; neg; _ } when name = source ->
          found := true;
          Circuit.Netlist.add rebuilt
            (Circuit.Element.Vsource
               { name; pos; neg; wave = Circuit.Waveform.Dc 1.0 })
      | Circuit.Element.Vsource { name; pos; neg; _ } ->
          Circuit.Netlist.add rebuilt
            (Circuit.Element.Vsource
               { name; pos; neg; wave = Circuit.Waveform.Dc 0.0 })
      | Circuit.Element.Isource { name; pos; neg; _ } ->
          (* An off current source is an open circuit, but its zeroed
             form stamps nothing either; keep it for node bookkeeping. *)
          Circuit.Netlist.add rebuilt
            (Circuit.Element.Isource
               { name; pos; neg; wave = Circuit.Waveform.Dc 0.0 })
      | other -> Circuit.Netlist.add rebuilt other)
    (Circuit.Netlist.elements nl);
  if not !found then
    invalid_arg ("Ac.analyze: no voltage source named " ^ source);
  rebuilt

let analyze nl ~source ~probe ~frequencies =
  let excited = excitation_netlist nl ~source in
  let sys = Mna.build excited in
  let probe_node =
    match Circuit.Netlist.find_node excited probe with
    | Some node -> node
    | None -> invalid_arg ("Ac.analyze: unknown probe node " ^ probe)
  in
  let unknown = sys.Mna.unknown_of_node.(probe_node) in
  if unknown < 0 then invalid_arg "Ac.analyze: cannot probe ground";
  let b_real = sys.Mna.rhs 0.0 in
  let b = Array.map (fun re -> { Complex.re; im = 0.0 }) b_real in
  List.map
    (fun freq_hz ->
      let omega = 2.0 *. Float.pi *. freq_hz in
      let a =
        Numeric.Zmatrix.of_real_pair ~re:sys.Mna.g
          ~im:(Numeric.Matrix.scale omega sys.Mna.c)
      in
      let x = Numeric.Zmatrix.solve a b in
      { freq_hz; response = x.(unknown) })
    frequencies

let magnitude_db p = 20.0 *. log10 (Complex.norm p.response)

let phase_deg p = Complex.arg p.response *. 180.0 /. Float.pi

let bandwidth_3db sweep =
  match sweep with
  | [] -> None
  | first :: _ ->
      let reference = magnitude_db first in
      let target = reference -. 3.0 in
      let rec scan prev = function
        | [] -> None
        | p :: rest ->
            let m = magnitude_db p in
            if m <= target then begin
              match prev with
              | None -> Some p.freq_hz
              | Some (pf, pm) ->
                  if pm = m then Some p.freq_hz
                  else begin
                    (* Log-interpolate the crossing. *)
                    let t = (pm -. target) /. (pm -. m) in
                    Some (10.0 ** (log10 pf +. (t *. (log10 p.freq_hz -. log10 pf))))
                  end
            end
            else scan (Some (p.freq_hz, m)) rest
      in
      scan None sweep

let to_csv sweep =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "freq_hz,magnitude_db,phase_deg\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%.6e,%.6f,%.4f\n" p.freq_hz (magnitude_db p)
           (phase_deg p)))
    sweep;
  Buffer.contents buf
