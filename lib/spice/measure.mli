(** Waveform measurements.

    The paper's figure of merit is the 50 % threshold delay: the time
    at which a sink's voltage first reaches half its final value after
    the driver switches. These helpers operate on sampled waveforms
    with linear interpolation between samples. *)

val first_crossing :
  times:float array -> values:float array -> level:float -> float option
(** First time the waveform reaches [level] from below, linearly
    interpolated; [None] when it never does. A sample exactly at
    [level] counts (including the first one). A waveform that {e
    starts above} [level] reports no crossing until it first dips
    below and rises through it again — never the spurious
    [times.(0)]. *)

val final_value : values:float array -> float
(** Last sample. @raise Invalid_argument on an empty waveform. *)

val threshold_delay :
  times:float array -> values:float array -> fraction:float ->
  vfinal:float -> float option
(** Delay to [fraction]·[vfinal] (e.g. fraction 0.5 for the paper's
    measure), assuming a rise from 0. *)

val rise_time :
  times:float array -> values:float array -> vfinal:float -> float option
(** 10 %–90 % rise time, when both crossings exist. *)

val overshoot : values:float array -> vfinal:float -> float
(** max(0, peak − vfinal): nonzero only in underdamped RLC responses.
    @raise Invalid_argument on an empty waveform (like
    {!final_value}), instead of a silent 0. *)
