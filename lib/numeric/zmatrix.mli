(** Dense complex matrices and LU solves, for AC (frequency-domain)
    circuit analysis: the phasor system (G + jωC)·x = b. *)

type t

val create : int -> int -> t
(** Zero matrix. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Complex.t
val set : t -> int -> int -> Complex.t -> unit
val add_to : t -> int -> int -> Complex.t -> unit

val of_real_pair : re:Matrix.t -> im:Matrix.t -> t
(** [of_real_pair ~re ~im] is [re + i·im] — how (G + jωC) is formed.

    @raise Invalid_argument on dimension mismatch. *)

val mul_vec : t -> Complex.t array -> Complex.t array

exception Singular of int

val solve : t -> Complex.t array -> Complex.t array
(** LU with partial (magnitude) pivoting; the matrix argument is not
    modified.

    @raise Singular when a pivot vanishes.
    @raise Invalid_argument when not square or lengths mismatch. *)
