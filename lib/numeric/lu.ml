type t = {
  n : int;
  lu : float array;  (* packed LU factors, row-major *)
  perm : int array;  (* row permutation: row i of LU is row perm.(i) of A *)
  sign : float;      (* parity of the permutation *)
  scratch : float array;  (* reused by solve_in_place *)
  anorm1 : float;    (* 1-norm of the original matrix, for rcond *)
}

exception Singular of int

(* Every MNA stamp, transient step-size change and rcond probe lands
   here, so the factorisation count is the truest "linear algebra work
   done" metric the manifest carries. *)
let factorizations = Obs.Counter.make "lu.factorizations"
let singular_factorizations = Obs.Counter.make "lu.singular"

let pivot_floor = 1e-300

(* A pivot this small relative to the largest entry of the input means
   the matrix is numerically rank-deficient: dividing by it would
   produce ~1e13x amplification, i.e. garbage dressed up as a solution.
   The absolute 1e-300 floor additionally catches exact zeros in
   all-tiny matrices. *)
let relative_pivot_threshold = 1e-13

let try_factor m =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Lu.factor: matrix not square";
  Obs.Counter.incr factorizations;
  let a = Array.make (n * n) 0.0 in
  let amax = ref 0.0 and finite = ref true in
  let col_sums = Array.make n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = Matrix.get m i j in
      a.((i * n) + j) <- v;
      let av = abs_float v in
      if not (Float.is_finite v) then finite := false;
      if av > !amax then amax := av;
      col_sums.(j) <- col_sums.(j) +. av
    done
  done;
  if not !finite then begin
    Obs.Counter.incr singular_factorizations;
    Error (-1)
  end
  else begin
    let anorm1 = Array.fold_left Float.max 0.0 col_sums in
    let floor = Float.max pivot_floor (relative_pivot_threshold *. !amax) in
    let perm = Array.init n Fun.id in
    let sign = ref 1.0 in
    let result = ref None in
    (try
       for k = 0 to n - 1 do
         (* Partial pivoting: bring the largest |entry| of column k up. *)
         let p = ref k in
         for i = k + 1 to n - 1 do
           if abs_float a.((i * n) + k) > abs_float a.((!p * n) + k) then
             p := i
         done;
         if !p <> k then begin
           for j = 0 to n - 1 do
             let tmp = a.((k * n) + j) in
             a.((k * n) + j) <- a.((!p * n) + j);
             a.((!p * n) + j) <- tmp
           done;
           let tmp = perm.(k) in
           perm.(k) <- perm.(!p);
           perm.(!p) <- tmp;
           sign := -. !sign
         end;
         let pivot = a.((k * n) + k) in
         if abs_float pivot < floor || not (Float.is_finite pivot) then begin
           result := Some (Error k);
           raise Exit
         end;
         for i = k + 1 to n - 1 do
           let f = a.((i * n) + k) /. pivot in
           a.((i * n) + k) <- f;
           if f <> 0.0 then begin
             let row_i = i * n and row_k = k * n in
             for j = k + 1 to n - 1 do
               Array.unsafe_set a (row_i + j)
                 (Array.unsafe_get a (row_i + j)
                 -. (f *. Array.unsafe_get a (row_k + j)))
             done
           end
         done
       done
     with Exit -> ());
    match !result with
    | Some err ->
        Obs.Counter.incr singular_factorizations;
        err
    | None ->
        Ok
          { n; lu = a; perm; sign = !sign; scratch = Array.make n 0.0; anorm1 }
  end

let factor m =
  match try_factor m with Ok t -> t | Error k -> raise (Singular k)

let solve_in_place t b =
  let n = t.n in
  if Array.length b <> n then invalid_arg "Lu.solve: length mismatch";
  let lu = t.lu in
  (* Apply permutation. *)
  let y = t.scratch in
  for i = 0 to n - 1 do
    y.(i) <- b.(t.perm.(i))
  done;
  (* Forward substitution Ly' = Pb (L has unit diagonal). *)
  for i = 1 to n - 1 do
    let row = i * n in
    let s = ref (Array.unsafe_get y i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get lu (row + j) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i !s
  done;
  (* Back substitution Ux = y'. *)
  for i = n - 1 downto 0 do
    let row = i * n in
    let s = ref (Array.unsafe_get y i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get lu (row + j) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i (!s /. Array.unsafe_get lu (row + i))
  done;
  Array.blit y 0 b 0 n

let solve t b =
  let x = Array.copy b in
  solve_in_place t x;
  x

(* Solve A^T w = b. With PA = LU we have A^T = U^T L^T P, so: forward
   substitution on U^T (diagonal from U), back substitution on L^T
   (unit diagonal), then undo the permutation. *)
let solve_transpose_in_place t b =
  let n = t.n in
  if Array.length b <> n then invalid_arg "Lu.solve_transpose: length mismatch";
  let lu = t.lu in
  let y = t.scratch in
  Array.blit b 0 y 0 n;
  (* U^T y' = b: U^T is lower triangular with U's diagonal. *)
  for i = 0 to n - 1 do
    let s = ref (Array.unsafe_get y i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get lu ((j * n) + i) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i (!s /. Array.unsafe_get lu ((i * n) + i))
  done;
  (* L^T v = y': L^T is upper triangular with unit diagonal. *)
  for i = n - 1 downto 0 do
    let s = ref (Array.unsafe_get y i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get lu ((j * n) + i) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i !s
  done;
  (* v = P w, i.e. w.(perm.(i)) = v.(i). *)
  for i = 0 to n - 1 do
    b.(t.perm.(i)) <- y.(i)
  done

let norm1 v = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 v

(* Hager's 1-norm condition estimator: a handful of solves with A and
   A^T produce a lower bound on ||A^-1||_1, hence an upper bound on
   rcond = 1 / (||A||_1 ||A^-1||_1). *)
let rcond t =
  if t.n = 0 then 1.0
  else if t.anorm1 = 0.0 then 0.0
  else begin
    let n = t.n in
    let x = Array.make n (1.0 /. float_of_int n) in
    let est = ref 0.0 in
    (try
       for _iter = 0 to 4 do
         let z = solve t x in
         est := Float.max !est (norm1 z);
         let xi =
           Array.map (fun v -> if v >= 0.0 then 1.0 else -1.0) z
         in
         solve_transpose_in_place t xi;
         (* xi now holds w = A^-T sign(z). *)
         let j = ref 0 in
         for i = 1 to n - 1 do
           if abs_float xi.(i) > abs_float xi.(!j) then j := i
         done;
         let wx =
           let s = ref 0.0 in
           for i = 0 to n - 1 do
             s := !s +. (xi.(i) *. x.(i))
           done;
           !s
         in
         if abs_float xi.(!j) <= wx then raise Exit;
         Array.fill x 0 n 0.0;
         x.(!j) <- 1.0
       done
     with Exit -> ());
    if !est = 0.0 || not (Float.is_finite !est) then 0.0
    else Float.min 1.0 (1.0 /. (t.anorm1 *. !est))
  end

let solve_matrix m b = solve (factor m) b

let det t =
  let d = ref t.sign in
  for i = 0 to t.n - 1 do
    d := !d *. t.lu.((i * t.n) + i)
  done;
  !d

let inverse m =
  let n = Matrix.rows m in
  let f = factor m in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let x = solve f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j x.(i)
    done
  done;
  inv
