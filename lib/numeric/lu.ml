type t = {
  n : int;
  lu : float array;  (* packed LU factors, row-major *)
  perm : int array;  (* row permutation: row i of LU is row perm.(i) of A *)
  sign : float;      (* parity of the permutation *)
  scratch : float array;  (* reused by solve_in_place *)
  anorm1 : float;    (* 1-norm of the original matrix, for rcond *)
}

exception Singular of int

(* Every MNA stamp, transient step-size change and rcond probe lands
   here, so the factorisation count is the truest "linear algebra work
   done" metric the manifest carries. *)
let factorizations = Obs.Counter.make "lu.factorizations"
let singular_factorizations = Obs.Counter.make "lu.singular"

let pivot_floor = 1e-300

(* A pivot this small relative to the largest entry of the input means
   the matrix is numerically rank-deficient: dividing by it would
   produce ~1e13x amplification, i.e. garbage dressed up as a solution.
   The absolute 1e-300 floor additionally catches exact zeros in
   all-tiny matrices. *)
let relative_pivot_threshold = 1e-13

(* [count:false] keeps the tiny k×k capacitance-matrix factorisations
   of [Update] out of [lu.factorizations]: that counter is the "full
   system factored" work metric, and the whole point of the low-rank
   path is that it avoids those. Update work is tallied separately
   under [lu.rank1_updates]. *)
let try_factor_gen ~count m =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Lu.factor: matrix not square";
  if count then Obs.Counter.incr factorizations;
  let a = Array.make (n * n) 0.0 in
  let amax = ref 0.0 and finite = ref true in
  let col_sums = Array.make n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = Matrix.get m i j in
      a.((i * n) + j) <- v;
      let av = abs_float v in
      if not (Float.is_finite v) then finite := false;
      if av > !amax then amax := av;
      col_sums.(j) <- col_sums.(j) +. av
    done
  done;
  if not !finite then begin
    if count then Obs.Counter.incr singular_factorizations;
    Error (-1)
  end
  else begin
    let anorm1 = Array.fold_left Float.max 0.0 col_sums in
    let floor = Float.max pivot_floor (relative_pivot_threshold *. !amax) in
    let perm = Array.init n Fun.id in
    let sign = ref 1.0 in
    let result = ref None in
    (try
       for k = 0 to n - 1 do
         (* Partial pivoting: bring the largest |entry| of column k up. *)
         let p = ref k in
         for i = k + 1 to n - 1 do
           if abs_float a.((i * n) + k) > abs_float a.((!p * n) + k) then
             p := i
         done;
         if !p <> k then begin
           for j = 0 to n - 1 do
             let tmp = a.((k * n) + j) in
             a.((k * n) + j) <- a.((!p * n) + j);
             a.((!p * n) + j) <- tmp
           done;
           let tmp = perm.(k) in
           perm.(k) <- perm.(!p);
           perm.(!p) <- tmp;
           sign := -. !sign
         end;
         let pivot = a.((k * n) + k) in
         if abs_float pivot < floor || not (Float.is_finite pivot) then begin
           result := Some (Error k);
           raise Exit
         end;
         for i = k + 1 to n - 1 do
           let f = a.((i * n) + k) /. pivot in
           a.((i * n) + k) <- f;
           if f <> 0.0 then begin
             let row_i = i * n and row_k = k * n in
             for j = k + 1 to n - 1 do
               Array.unsafe_set a (row_i + j)
                 (Array.unsafe_get a (row_i + j)
                 -. (f *. Array.unsafe_get a (row_k + j)))
             done
           end
         done
       done
     with Exit -> ());
    match !result with
    | Some err ->
        if count then Obs.Counter.incr singular_factorizations;
        err
    | None ->
        Ok
          { n; lu = a; perm; sign = !sign; scratch = Array.make n 0.0; anorm1 }
  end

let try_factor m = try_factor_gen ~count:true m

let factor m =
  match try_factor m with Ok t -> t | Error k -> raise (Singular k)

(* [work] is the intermediate-vector buffer. [solve_in_place] passes
   the factorisation's own scratch; the low-rank [Update] solver passes
   a private buffer instead, so a base factorisation shared between
   worker domains stays read-only during its solves. *)
let solve_with ~work t b =
  let n = t.n in
  if Array.length b <> n then invalid_arg "Lu.solve: length mismatch";
  let lu = t.lu in
  (* Apply permutation. *)
  let y = work in
  for i = 0 to n - 1 do
    y.(i) <- b.(t.perm.(i))
  done;
  (* Forward substitution Ly' = Pb (L has unit diagonal). *)
  for i = 1 to n - 1 do
    let row = i * n in
    let s = ref (Array.unsafe_get y i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get lu (row + j) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i !s
  done;
  (* Back substitution Ux = y'. *)
  for i = n - 1 downto 0 do
    let row = i * n in
    let s = ref (Array.unsafe_get y i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get lu (row + j) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i (!s /. Array.unsafe_get lu (row + i))
  done;
  Array.blit y 0 b 0 n

let solve_in_place t b = solve_with ~work:t.scratch t b

let size t = t.n

let solve t b =
  let x = Array.copy b in
  solve_in_place t x;
  x

(* Solve A^T w = b. With PA = LU we have A^T = U^T L^T P, so: forward
   substitution on U^T (diagonal from U), back substitution on L^T
   (unit diagonal), then undo the permutation. *)
let solve_transpose_in_place t b =
  let n = t.n in
  if Array.length b <> n then invalid_arg "Lu.solve_transpose: length mismatch";
  let lu = t.lu in
  let y = t.scratch in
  Array.blit b 0 y 0 n;
  (* U^T y' = b: U^T is lower triangular with U's diagonal. *)
  for i = 0 to n - 1 do
    let s = ref (Array.unsafe_get y i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get lu ((j * n) + i) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i (!s /. Array.unsafe_get lu ((i * n) + i))
  done;
  (* L^T v = y': L^T is upper triangular with unit diagonal. *)
  for i = n - 1 downto 0 do
    let s = ref (Array.unsafe_get y i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get lu ((j * n) + i) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i !s
  done;
  (* v = P w, i.e. w.(perm.(i)) = v.(i). *)
  for i = 0 to n - 1 do
    b.(t.perm.(i)) <- y.(i)
  done

let norm1 v = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 v

(* Hager's 1-norm condition estimator: a handful of solves with A and
   A^T produce a lower bound on ||A^-1||_1, hence an upper bound on
   rcond = 1 / (||A||_1 ||A^-1||_1). *)
let rcond t =
  if t.n = 0 then 1.0
  else if t.anorm1 = 0.0 then 0.0
  else begin
    let n = t.n in
    let x = Array.make n (1.0 /. float_of_int n) in
    let est = ref 0.0 in
    (try
       for _iter = 0 to 4 do
         let z = solve t x in
         est := Float.max !est (norm1 z);
         let xi =
           Array.map (fun v -> if v >= 0.0 then 1.0 else -1.0) z
         in
         solve_transpose_in_place t xi;
         (* xi now holds w = A^-T sign(z). *)
         let j = ref 0 in
         for i = 1 to n - 1 do
           if abs_float xi.(i) > abs_float xi.(!j) then j := i
         done;
         let wx =
           let s = ref 0.0 in
           for i = 0 to n - 1 do
             s := !s +. (xi.(i) *. x.(i))
           done;
           !s
         in
         if abs_float xi.(!j) <= wx then raise Exit;
         Array.fill x 0 n 0.0;
         x.(!j) <- 1.0
       done
     with Exit -> ());
    if !est = 0.0 || not (Float.is_finite !est) then 0.0
    else Float.min 1.0 (1.0 /. (t.anorm1 *. !est))
  end

let solve_matrix m b = solve (factor m) b

let det t =
  let d = ref t.sign in
  for i = 0 to t.n - 1 do
    d := !d *. t.lu.((i * t.n) + i)
  done;
  !d

let inverse m =
  let n = Matrix.rows m in
  let f = factor m in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let x = solve f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j x.(i)
    done
  done;
  inv

(* Low-rank (Sherman–Morrison–Woodbury) updates ------------------------- *)

module Update = struct
  (* M = [[A, 0], [0, 0]] + Σ_i α_i·u_i·v_iᵀ over n0+pad unknowns, where
     A is the already-factored base. Internally the pad block carries a
     γ·I placeholder (so the block matrix Â is invertible) cancelled by
     explicit −γ·e_j·e_jᵀ terms, which turns the whole delta into plain
     rank-1 algebra:

       M⁻¹b = Â⁻¹b − Z·S⁻¹·Vᵀ·Â⁻¹b,  Z = Â⁻¹U,  S = C⁻¹ + Vᵀ·Z

     with C = diag(α). Building an update costs k extended base solves
     (O(k·n²)) plus one k×k factorisation; each [solve] is then O(n²)
     with no full factorisation at all. *)

  (* The base is any factorisation-like solver: all the Woodbury
     algebra ever needs from it is its size and a workspace-threaded
     in-place solve, so a sparse base (via Backend) plugs in with a
     closure and the rank-1 machinery is shared verbatim. *)
  type base_solver = {
    base_n : int;
    base_solve : work:float array -> float array -> unit;
  }

  type nonrec t = {
    base : base_solver;
    pad : int;
    nt : int;  (* n0 + pad *)
    k : int;  (* rank-1 terms, pad corrections included *)
    gamma : float;  (* pad-block placeholder scale *)
    z : float array;  (* nt×k, column c at offset c·nt: Â⁻¹·u_c *)
    vmat : float array;  (* k×nt, row c = v_c *)
    s_lu : t option;  (* capacitance-matrix factorisation; None iff k = 0 *)
    headwork : float array;  (* n0: slice buffer for base solves *)
    basework : float array;  (* n0: scratch handed to solve_with *)
    kwork : float array;  (* k: the small solve's right-hand side *)
  }

  let rank1_updates = Obs.Counter.make "lu.rank1_updates"
  let default_rcond_floor = 1e-10

  (* Â x = b in place, Â = [[A, 0], [0, γI]]. *)
  let ext_solve ~base ~pad ~gamma ~headwork ~basework b =
    let n0 = Array.length headwork in
    Array.blit b 0 headwork 0 n0;
    base.base_solve ~work:basework headwork;
    Array.blit headwork 0 b 0 n0;
    for j = 0 to pad - 1 do
      b.(n0 + j) <- b.(n0 + j) /. gamma
    done

  let finite_term (a, u, v) =
    Float.is_finite a
    && Array.for_all Float.is_finite u
    && Array.for_all Float.is_finite v

  let make_with ?(pad = 0) ?(rcond_floor = default_rcond_floor) ~n
      ~solve_with:base_solve terms =
    if pad < 0 then invalid_arg "Lu.Update.make: negative pad";
    if n < 0 then invalid_arg "Lu.Update.make: negative size";
    let base = { base_n = n; base_solve } in
    let n0 = base.base_n in
    let nt = n0 + pad in
    List.iter
      (fun (_, u, v) ->
        if Array.length u <> nt || Array.length v <> nt then
          invalid_arg "Lu.Update.make: term length mismatch")
      terms;
    let user_terms = List.filter (fun (a, _, _) -> a <> 0.0) terms in
    if not (List.for_all finite_term user_terms) then None
    else begin
      (* Scale the pad placeholder like the stamps around it, so S does
         not mix wildly different magnitudes for conditioning reasons
         alone. *)
      let gamma =
        if pad = 0 then 1.0
        else begin
          let s =
            List.fold_left
              (fun acc (a, _, _) -> acc +. abs_float a)
              0.0 user_terms
          in
          let m = List.length user_terms in
          if m = 0 || s <= 0.0 then 1.0 else s /. float_of_int m
        end
      in
      let pad_terms =
        List.init pad (fun j ->
            let e = Array.make nt 0.0 in
            e.(n0 + j) <- 1.0;
            (-.gamma, e, e))
      in
      let all = user_terms @ pad_terms in
      let k = List.length all in
      Obs.Counter.add rank1_updates k;
      let headwork = Array.make n0 0.0 in
      let basework = Array.make n0 0.0 in
      if k = 0 then
        Some
          { base; pad; nt; k; gamma; z = [||]; vmat = [||]; s_lu = None;
            headwork; basework; kwork = [||] }
      else begin
        let alpha = Array.of_list (List.map (fun (a, _, _) -> a) all) in
        let z = Array.make (nt * k) 0.0 in
        let vmat = Array.make (k * nt) 0.0 in
        List.iteri
          (fun c (_, u, v) ->
            Array.blit v 0 vmat (c * nt) nt;
            let col = Array.copy u in
            ext_solve ~base ~pad ~gamma ~headwork ~basework col;
            Array.blit col 0 z (c * nt) nt)
          all;
        (* S = C⁻¹ + Vᵀ·Z, tracking the largest magnitude that went
           into any entry: a pivot tiny against that scale means the
           updated matrix is numerically singular even though the
           pivot itself is representable (classic Sherman–Morrison
           denominator cancellation). *)
        let s = Matrix.create k k in
        let scale = ref 0.0 in
        for r = 0 to k - 1 do
          for c = 0 to k - 1 do
            let diag = if r = c then 1.0 /. alpha.(r) else 0.0 in
            let dot = ref 0.0 in
            for i = 0 to nt - 1 do
              dot := !dot +. (vmat.((r * nt) + i) *. z.((c * nt) + i))
            done;
            scale := Float.max !scale (Float.max (abs_float diag) (abs_float !dot));
            Matrix.set s r c (diag +. !dot)
          done
        done;
        match try_factor_gen ~count:false s with
        | Error _ -> None
        | Ok s_lu ->
            let min_pivot = ref infinity in
            for i = 0 to k - 1 do
              min_pivot :=
                Float.min !min_pivot (abs_float s_lu.lu.((i * k) + i))
            done;
            if
              !min_pivot < rcond_floor *. !scale
              || rcond s_lu < rcond_floor
            then None
            else
              Some
                { base; pad; nt; k; gamma; z; vmat; s_lu = Some s_lu;
                  headwork; basework; kwork = Array.make k 0.0 }
      end
    end

  let make ?pad ?rcond_floor base terms =
    make_with ?pad ?rcond_floor ~n:base.n
      ~solve_with:(fun ~work b -> solve_with ~work base b)
      terms

  let solve up b =
    if Array.length b <> up.nt then
      invalid_arg "Lu.Update.solve: length mismatch";
    let x = Array.copy b in
    ext_solve ~base:up.base ~pad:up.pad ~gamma:up.gamma ~headwork:up.headwork
      ~basework:up.basework x;
    (match up.s_lu with
    | None -> ()
    | Some s_lu ->
        let nt = up.nt and k = up.k in
        let w = up.kwork in
        for c = 0 to k - 1 do
          let acc = ref 0.0 in
          for i = 0 to nt - 1 do
            acc := !acc +. (up.vmat.((c * nt) + i) *. x.(i))
          done;
          w.(c) <- !acc
        done;
        (* The small factorisation is private to this update, so its
           shared scratch is safe here. *)
        solve_in_place s_lu w;
        for i = 0 to nt - 1 do
          let acc = ref 0.0 in
          for c = 0 to k - 1 do
            acc := !acc +. (up.z.((c * nt) + i) *. w.(c))
          done;
          x.(i) <- x.(i) -. !acc
        done);
    x

  let rank up = up.k
  let size up = up.nt
end
