type t = {
  n : int;
  lu : float array;  (* packed LU factors, row-major *)
  perm : int array;  (* row permutation: row i of LU is row perm.(i) of A *)
  sign : float;      (* parity of the permutation *)
  scratch : float array;  (* reused by solve_in_place *)
}

exception Singular of int

let pivot_floor = 1e-300

let factor m =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Lu.factor: matrix not square";
  let a = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a.((i * n) + j) <- Matrix.get m i j
    done
  done;
  let perm = Array.init n Fun.id in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest |entry| of column k up. *)
    let p = ref k in
    for i = k + 1 to n - 1 do
      if abs_float a.((i * n) + k) > abs_float a.((!p * n) + k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tmp = a.((k * n) + j) in
        a.((k * n) + j) <- a.((!p * n) + j);
        a.((!p * n) + j) <- tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!p);
      perm.(!p) <- tmp;
      sign := -. !sign
    end;
    let pivot = a.((k * n) + k) in
    if abs_float pivot < pivot_floor then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = a.((i * n) + k) /. pivot in
      a.((i * n) + k) <- f;
      if f <> 0.0 then begin
        let row_i = i * n and row_k = k * n in
        for j = k + 1 to n - 1 do
          Array.unsafe_set a (row_i + j)
            (Array.unsafe_get a (row_i + j)
            -. (f *. Array.unsafe_get a (row_k + j)))
        done
      end
    done
  done;
  { n; lu = a; perm; sign = !sign; scratch = Array.make n 0.0 }

let solve_in_place t b =
  let n = t.n in
  if Array.length b <> n then invalid_arg "Lu.solve: length mismatch";
  let lu = t.lu in
  (* Apply permutation. *)
  let y = t.scratch in
  for i = 0 to n - 1 do
    y.(i) <- b.(t.perm.(i))
  done;
  (* Forward substitution Ly' = Pb (L has unit diagonal). *)
  for i = 1 to n - 1 do
    let row = i * n in
    let s = ref (Array.unsafe_get y i) in
    for j = 0 to i - 1 do
      s := !s -. (Array.unsafe_get lu (row + j) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i !s
  done;
  (* Back substitution Ux = y'. *)
  for i = n - 1 downto 0 do
    let row = i * n in
    let s = ref (Array.unsafe_get y i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get lu (row + j) *. Array.unsafe_get y j)
    done;
    Array.unsafe_set y i (!s /. Array.unsafe_get lu (row + i))
  done;
  Array.blit y 0 b 0 n

let solve t b =
  let x = Array.copy b in
  solve_in_place t x;
  x

let solve_matrix m b = solve (factor m) b

let det t =
  let d = ref t.sign in
  for i = 0 to t.n - 1 do
    d := !d *. t.lu.((i * t.n) + i)
  done;
  !d

let inverse m =
  let n = Matrix.rows m in
  let f = factor m in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let x = solve f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j x.(i)
    done
  done;
  inv
