(** Sparse linear algebra: CSC matrices, fill-reducing ordering, LU.

    The MNA systems this repository factors are lumped distributed-RC
    routing nets — a spanning tree plus a handful of chord edges — so
    their conductance matrices carry O(n) nonzeros while the dense
    {!Lu} pays O(n³) to factor and O(n²) per solve. This module is the
    sparse counterpart: compressed sparse column storage built from
    triplet stamps, a reverse Cuthill–McKee fill-reducing ordering
    (reusable across factorisations of the same pattern), and a
    left-looking (Gilbert–Peierls) LU with threshold partial pivoting
    whose factor and solve costs are proportional to the factor
    nonzeros, not n³/n².

    Singularity semantics match the dense backend: a pivot smaller
    than 1e-13 times the largest input entry (or 1e-300 absolutely)
    yields [Error column], non-finite input entries [Error (-1)].
    Borderline cases where threshold pivoting gives up but full dense
    partial pivoting would not are handled one level up:
    {!Backend.try_factor} retries the dense path before reporting the
    matrix singular.

    Factorisations are tallied under the [sparse.factorizations] /
    [sparse.singular] / [sparse.nnz] counters and the
    [sparse.fill_ratio] histogram on the {!Obs} registry. *)

(** Triplet (coordinate-form) accumulation: the natural output of MNA
    stamping. Entries are recorded in insertion order; duplicates are
    allowed and sum. *)
module Triplets : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int

  val add : t -> int -> int -> float -> unit
  (** [add t i j v] records a stamp of [v] at (row [i], column [j]).
      @raise Invalid_argument on a negative index. *)

  val iter : t -> (int -> int -> float -> unit) -> unit
  (** Iterate the stamps in insertion order — replaying them into a
      dense {!Matrix.t} with {!Matrix.add_to} reproduces bit-identical
      entry values, since duplicate summation happens in the same
      order. *)

  val copy : t -> t
end

(** Compressed sparse column matrices: per-column sorted, duplicate-free
    row indices. *)
module Csc : sig
  type t

  val of_triplets : n:int -> Triplets.t -> t
  (** [of_triplets ~n t] is the n×n matrix with duplicate stamps
      summed (in insertion order, for bit-reproducibility against a
      dense replay). Exact zeros arising from stamp values are kept in
      the pattern.
      @raise Invalid_argument on a negative [n] or an index ≥ [n]. *)

  val of_matrix : Matrix.t -> t
  (** The nonzero entries of a dense matrix. *)

  val to_matrix : t -> Matrix.t

  val rows : t -> int
  val cols : t -> int
  val nnz : t -> int
end

(** Symbolic analysis: the fill-reducing elimination order, computed
    once per sparsity pattern and reusable across every numeric
    factorisation of a same-sized system (the ordering is just a
    column permutation, so reuse is safe — merely suboptimal — even if
    the pattern has drifted). *)
module Symbolic : sig
  type t

  val order : t -> int array
  (** A copy of the elimination (column) order: [order.(k)] is the
      original column eliminated at step [k]. Always a permutation of
      0..n-1. *)

  val size : t -> int
end

val analyze : Csc.t -> Symbolic.t
(** Reverse Cuthill–McKee ordering on the symmetrised pattern of the
    matrix, component by component from pseudo-peripheral start
    vertices. O(nnz log nnz).
    @raise Invalid_argument on a non-square matrix. *)

type t
(** A sparse factorisation PAQ = LU: Q the fill-reducing column order,
    P chosen by threshold partial pivoting (a pivot within a factor
    0.1 of the column maximum keeps the diagonal choice; otherwise the
    largest entry wins). *)

val try_factor : ?symbolic:Symbolic.t -> Csc.t -> (t, int) result
(** [try_factor csc] factors the matrix, running {!analyze} first
    unless [symbolic] provides the ordering. [Error k] reports the
    original column whose best available pivot fell below the
    threshold, [Error (-1)] a non-finite input entry.
    @raise Invalid_argument on a non-square matrix or a [symbolic] of
    the wrong size. *)

val size : t -> int

val factor_nnz : t -> int
(** Nonzeros of L + U, diagonal included — the fill the ordering was
    meant to contain. *)

val solve_with : work:float array -> t -> float array -> unit
(** [solve_with ~work t b] overwrites [b] with A⁻¹b, using [work]
    (length n) as the intermediate buffer so a factorisation shared
    between domains stays read-only during solves. O(nnz(L+U)).
    @raise Invalid_argument on a length mismatch. *)

val solve_in_place : t -> float array -> unit
(** {!solve_with} using the factorisation's own scratch buffer (not
    domain-safe; one caller at a time). *)

val solve : t -> float array -> float array
