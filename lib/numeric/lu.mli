(** LU factorisation with partial pivoting, and linear solves.

    The transient engine factors the MNA system matrix once per
    topology and timestep size, then back-substitutes once per step, so
    factorisation and solving are exposed separately.

    Singularity is detected, not masked: a pivot smaller than 1e-13
    times the largest input entry (or 1e-300 absolutely) marks the
    matrix numerically rank-deficient, as do non-finite input entries.
    Earlier revisions silently clamped such pivots and returned
    garbage; the fault-tolerant oracle stack depends on the failure
    being reported. *)

type t
(** A factorisation PA = LU of a square matrix. *)

exception Singular of int
(** Raised (with the offending pivot column, or [-1] for non-finite
    input entries) when no usable pivot exists — circuits whose MNA
    matrix is singular are malformed (e.g. a floating node or a
    zero-length wire stamped as an infinite conductance). *)

val try_factor : Matrix.t -> (t, int) result
(** [try_factor m] is the [Result]-returning factorisation used by the
    fault-tolerant oracle route: [Error k] reports the pivot column
    whose scaled pivot fell below threshold, [Error (-1)] a non-finite
    input entry. Pivot selection is identical to {!factor}.

    @raise Invalid_argument when the matrix is not square. *)

val factor : Matrix.t -> t
(** @raise Singular when no usable pivot exists.
    @raise Invalid_argument when the matrix is not square. *)

val solve : t -> float array -> float array
(** [solve lu b] returns x with Ax = b.

    @raise Invalid_argument on a length mismatch. *)

val solve_in_place : t -> float array -> unit
(** Like {!solve} but overwrites [b] with the solution, avoiding
    allocation in the transient inner loop. *)

val solve_transpose_in_place : t -> float array -> unit
(** Solves A{^T} w = b in place — needed by the condition estimator.

    @raise Invalid_argument on a length mismatch. *)

val rcond : t -> float
(** Reciprocal condition number estimate 1 / (‖A‖₁ ‖A⁻¹‖₁) via Hager's
    1-norm estimator (a few extra solves; O(n²)). Values near 1 are
    well conditioned; values near the pivot threshold mean the
    factorisation, though it completed, should not be trusted. *)

val solve_matrix : Matrix.t -> float array -> float array
(** One-shot convenience: factor then solve. *)

val det : t -> float
(** Determinant of the factored matrix (product of pivots, signed by
    the permutation parity). *)

val inverse : Matrix.t -> Matrix.t
(** Full inverse (used only in tests and small resistance-matrix
    computations).

    @raise Singular when the matrix is singular. *)
