(** LU factorisation with partial pivoting, and linear solves.

    The transient engine factors the MNA system matrix once per
    topology and timestep size, then back-substitutes once per step, so
    factorisation and solving are exposed separately. *)

type t
(** A factorisation PA = LU of a square matrix. *)

exception Singular of int
(** Raised (with the offending pivot column) when a pivot is exactly
    zero or smaller than an absolute floor of 1e-300 — circuits whose
    MNA matrix is singular are malformed (e.g. a floating node). *)

val factor : Matrix.t -> t
(** @raise Singular when no usable pivot exists.
    @raise Invalid_argument when the matrix is not square. *)

val solve : t -> float array -> float array
(** [solve lu b] returns x with Ax = b.

    @raise Invalid_argument on a length mismatch. *)

val solve_in_place : t -> float array -> unit
(** Like {!solve} but overwrites [b] with the solution, avoiding
    allocation in the transient inner loop. *)

val solve_matrix : Matrix.t -> float array -> float array
(** One-shot convenience: factor then solve. *)

val det : t -> float
(** Determinant of the factored matrix (product of pivots, signed by
    the permutation parity). *)

val inverse : Matrix.t -> Matrix.t
(** Full inverse (used only in tests and small resistance-matrix
    computations).

    @raise Singular when the matrix is singular. *)
