(** LU factorisation with partial pivoting, and linear solves.

    The transient engine factors the MNA system matrix once per
    topology and timestep size, then back-substitutes once per step, so
    factorisation and solving are exposed separately.

    Singularity is detected, not masked: a pivot smaller than 1e-13
    times the largest input entry (or 1e-300 absolutely) marks the
    matrix numerically rank-deficient, as do non-finite input entries.
    Earlier revisions silently clamped such pivots and returned
    garbage; the fault-tolerant oracle stack depends on the failure
    being reported. *)

type t
(** A factorisation PA = LU of a square matrix. *)

exception Singular of int
(** Raised (with the offending pivot column, or [-1] for non-finite
    input entries) when no usable pivot exists — circuits whose MNA
    matrix is singular are malformed (e.g. a floating node or a
    zero-length wire stamped as an infinite conductance). *)

val try_factor : Matrix.t -> (t, int) result
(** [try_factor m] is the [Result]-returning factorisation used by the
    fault-tolerant oracle route: [Error k] reports the pivot column
    whose scaled pivot fell below threshold, [Error (-1)] a non-finite
    input entry. Pivot selection is identical to {!factor}.

    @raise Invalid_argument when the matrix is not square. *)

val factor : Matrix.t -> t
(** @raise Singular when no usable pivot exists.
    @raise Invalid_argument when the matrix is not square. *)

val size : t -> int
(** Dimension of the factored matrix. *)

val solve : t -> float array -> float array
(** [solve lu b] returns x with Ax = b.

    @raise Invalid_argument on a length mismatch. *)

val solve_with : work:float array -> t -> float array -> unit
(** [solve_with ~work t b] overwrites [b] with the solution, using the
    caller-supplied [work] buffer (length n) instead of the
    factorisation's own scratch — so a factorisation shared between
    domains stays read-only during solves.

    @raise Invalid_argument on a length mismatch. *)

val solve_in_place : t -> float array -> unit
(** Like {!solve} but overwrites [b] with the solution, avoiding
    allocation in the transient inner loop. *)

val solve_transpose_in_place : t -> float array -> unit
(** Solves A{^T} w = b in place — needed by the condition estimator.

    @raise Invalid_argument on a length mismatch. *)

val rcond : t -> float
(** Reciprocal condition number estimate 1 / (‖A‖₁ ‖A⁻¹‖₁) via Hager's
    1-norm estimator (a few extra solves; O(n²)). Values near 1 are
    well conditioned; values near the pivot threshold mean the
    factorisation, though it completed, should not be trusted. *)

val solve_matrix : Matrix.t -> float array -> float array
(** One-shot convenience: factor then solve. *)

val det : t -> float
(** Determinant of the factored matrix (product of pivots, signed by
    the permutation parity). *)

val inverse : Matrix.t -> Matrix.t
(** Full inverse (used only in tests and small resistance-matrix
    computations).

    @raise Singular when the matrix is singular. *)

(** Low-rank updates of a factored system via the
    Sherman–Morrison–Woodbury identity.

    An update represents M = [[A, 0], [0, 0]] + Σ αᵢ·uᵢ·vᵢᵀ over
    n₀ + pad unknowns, where A is the already-factored n₀×n₀ base and
    the [pad] extra unknowns (appended after every base unknown) start
    from an all-zero block that the rank-1 terms must make
    non-singular — exactly the shape of stamping one extra wire into a
    factored MNA matrix. Construction performs k extended base solves
    and factors the small k×k capacitance matrix S = C⁻¹ + VᵀA⁻¹U;
    each {!solve} is then O(n²), with no fresh full factorisation.

    Degeneracy is detected, not masked: {!make} returns [None] when the
    capacitance matrix fails to factor, when a pivot is tiny relative
    to the magnitudes summed into S (the Sherman–Morrison denominator
    cancelling — the updated matrix is numerically singular), or when
    its {!rcond} falls below [rcond_floor]. Callers fall back to a
    fresh factorisation through the usual [Nontree_error] retry path.

    A base factorisation may be shared across domains while updates
    solve against it (solves use private workspaces); a single
    [Update.t] value, however, is not itself domain-safe. *)
module Update : sig
  type lu := t

  type t
  (** A base factorisation extended with k rank-1 terms. *)

  val default_rcond_floor : float
  (** 1e-10. *)

  val make :
    ?pad:int ->
    ?rcond_floor:float ->
    lu ->
    (float * float array * float array) list ->
    t option
  (** [make ?pad base terms] builds the update; every [(α, u, v)] term
      is over the extended size and zero-α terms are dropped. [None]
      means the update is numerically degenerate — factor the full
      matrix instead. Counts each folded term under the
      [lu.rank1_updates] metric.

      @raise Invalid_argument on negative [pad] or a term whose
      vectors do not have length n₀ + pad. *)

  val make_with :
    ?pad:int ->
    ?rcond_floor:float ->
    n:int ->
    solve_with:(work:float array -> float array -> unit) ->
    (float * float array * float array) list ->
    t option
  (** Like {!make}, but over any base solver given as its size [n] and
      a workspace-threaded in-place solve — all the Woodbury algebra
      needs from the base. This is how {!Backend} extends a sparse base
      factorisation with rank-1 terms without duplicating the update
      machinery. *)

  val solve : t -> float array -> float array
  (** [solve u b] returns M⁻¹b (length n₀ + pad) by the Woodbury
      identity — two extended base solves' worth of work plus a k×k
      back-substitution.

      @raise Invalid_argument on a length mismatch. *)

  val rank : t -> int
  (** Number of rank-1 terms folded in (pad corrections included). *)

  val size : t -> int
  (** Extended system size n₀ + pad. *)
end
