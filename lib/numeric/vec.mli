(** Dense float vectors (thin helpers over [float array]). *)

val make : int -> float -> float array
val zeros : int -> float array
val copy : float array -> float array
val add : float array -> float array -> float array
val sub : float array -> float array -> float array
val scale : float -> float array -> float array
val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y := a*x + y] in place. *)

val dot : float array -> float array -> float
val norm2 : float array -> float
val norm_inf : float array -> float
val max_abs_diff : float array -> float array -> float
(** L∞ distance between two vectors of equal length. *)

val lerp : float -> float -> float -> float
(** [lerp a b t] is the linear interpolation [a + t*(b-a)]. *)
