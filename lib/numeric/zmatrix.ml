type t = { r : int; c : int; a : Complex.t array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Zmatrix.create: negative dimension";
  { r; c; a = Array.make (r * c) Complex.zero }

let rows m = m.r
let cols m = m.c

let index m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg "Zmatrix: index out of range";
  (i * m.c) + j

let get m i j = m.a.(index m i j)
let set m i j x = m.a.(index m i j) <- x
let add_to m i j x = m.a.(index m i j) <- Complex.add m.a.(index m i j) x

let of_real_pair ~re ~im =
  let r = Matrix.rows re and c = Matrix.cols re in
  if Matrix.rows im <> r || Matrix.cols im <> c then
    invalid_arg "Zmatrix.of_real_pair: dimension mismatch";
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.a.((i * c) + j) <- { Complex.re = Matrix.get re i j; im = Matrix.get im i j }
    done
  done;
  m

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Zmatrix.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let s = ref Complex.zero in
      for j = 0 to m.c - 1 do
        s := Complex.add !s (Complex.mul m.a.((i * m.c) + j) v.(j))
      done;
      !s)

exception Singular of int

let solve m b =
  let n = m.r in
  if m.c <> n then invalid_arg "Zmatrix.solve: matrix not square";
  if Array.length b <> n then invalid_arg "Zmatrix.solve: length mismatch";
  let a = Array.copy m.a in
  let x = Array.copy b in
  let mag z = Complex.norm z in
  for k = 0 to n - 1 do
    (* Partial pivoting on magnitude. *)
    let p = ref k in
    for i = k + 1 to n - 1 do
      if mag a.((i * n) + k) > mag a.((!p * n) + k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tmp = a.((k * n) + j) in
        a.((k * n) + j) <- a.((!p * n) + j);
        a.((!p * n) + j) <- tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!p);
      x.(!p) <- tmp
    end;
    let pivot = a.((k * n) + k) in
    if mag pivot < 1e-300 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let f = Complex.div a.((i * n) + k) pivot in
      if f <> Complex.zero then begin
        a.((i * n) + k) <- f;
        for j = k + 1 to n - 1 do
          a.((i * n) + j) <-
            Complex.sub a.((i * n) + j) (Complex.mul f a.((k * n) + j))
        done;
        x.(i) <- Complex.sub x.(i) (Complex.mul f x.(k))
      end
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := Complex.sub !s (Complex.mul a.((i * n) + j) x.(j))
    done;
    x.(i) <- Complex.div !s a.((i * n) + i)
  done;
  x
