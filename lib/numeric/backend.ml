type kind = Dense | Sparse

let kind_to_string = function Dense -> "dense" | Sparse -> "sparse"

let kind_of_string = function
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | _ -> None

let current = Atomic.make Sparse
let set_kind k = Atomic.set current k
let kind () = Atomic.get current

(* Sparse threshold pivoting refused a matrix that dense full partial
   pivoting then factored. A handful per run is a conditioning
   curiosity; a large count means the sparse path is mistuned and the
   run is quietly paying dense prices. *)
let dense_fallbacks = Obs.Counter.make "sparse.dense_fallbacks"

type t = D of Lu.t | S of Sparse.t

let try_factor_csc ?symbolic ?dense csc =
  let to_dense () =
    match dense with Some m -> m | None -> Sparse.Csc.to_matrix csc
  in
  match Atomic.get current with
  | Dense -> Result.map (fun f -> D f) (Lu.try_factor (to_dense ()))
  | Sparse -> (
      match Sparse.try_factor ?symbolic csc with
      | Ok f -> Ok (S f)
      | Error _ -> (
          (* Borderline pivots: the dense kernel is the authority on
             singularity, so its verdict (either way) is final. *)
          match Lu.try_factor (to_dense ()) with
          | Ok f ->
              Obs.Counter.incr dense_fallbacks;
              Ok (D f)
          | Error k -> Error k))

let try_factor ?symbolic m =
  match Atomic.get current with
  | Dense -> Result.map (fun f -> D f) (Lu.try_factor m)
  | Sparse -> try_factor_csc ?symbolic ~dense:m (Sparse.Csc.of_matrix m)

let factor ?symbolic m =
  match try_factor ?symbolic m with
  | Ok f -> f
  | Error k -> raise (Lu.Singular k)

let size = function D f -> Lu.size f | S f -> Sparse.size f

let solve_with ~work t b =
  match t with
  | D f -> Lu.solve_with ~work f b
  | S f -> Sparse.solve_with ~work f b

let solve_in_place = function
  | D f -> Lu.solve_in_place f
  | S f -> Sparse.solve_in_place f

let solve t b =
  let x = Array.copy b in
  solve_in_place t x;
  x

let update ?pad ?rcond_floor t terms =
  Lu.Update.make_with ?pad ?rcond_floor ~n:(size t)
    ~solve_with:(fun ~work b -> solve_with ~work t b)
    terms
