(* Sparse CSC matrices, reverse Cuthill–McKee ordering, and a
   left-looking (Gilbert–Peierls) LU with threshold partial pivoting.
   Stdlib-only by design: the MNA systems here are near-tree, so a
   simple ordering plus a depth-first-search reach per column already
   brings factor and solve work down to O(nnz). *)

let factorizations = Obs.Counter.make "sparse.factorizations"
let singular_factorizations = Obs.Counter.make "sparse.singular"

(* Input nonzeros handed to the sparse factoriser, summed across
   factorisations — together with [sparse.factorizations] this gives
   the mean system sparsity the run actually saw. *)
let nnz_counter = Obs.Counter.make "sparse.nnz"

(* nnz(L+U)/nnz(A) per factorisation. Near-tree MNA systems should sit
   in the low buckets; mass in the tail means the ordering is failing
   to contain fill. *)
let fill_hist =
  Obs.Histogram.make "sparse.fill_ratio"
    ~buckets:[| 1.0; 1.5; 2.0; 3.0; 5.0; 10.0; 25.0 |]

(* Same pivot admissibility as the dense backend (see lu.ml): keeping
   the floors identical is what makes sparse-vs-dense singularity
   verdicts agree on everything but threshold-pivoting borderline
   cases, which Backend resolves by retrying densely. *)
let pivot_floor = 1e-300
let relative_pivot_threshold = 1e-13

(* Threshold partial pivoting: prefer the diagonal of the ordered
   column whenever it is within this factor of the column's largest
   candidate. Diagonally dominant MNA stamps almost always keep their
   diagonal, which preserves the ordering's fill prediction. *)
let pivot_tolerance = 0.1

module Triplets = struct
  type t = {
    mutable len : int;
    mutable ri : int array;
    mutable ci : int array;
    mutable vs : float array;
  }

  let create ?(capacity = 16) () =
    let capacity = max capacity 1 in
    {
      len = 0;
      ri = Array.make capacity 0;
      ci = Array.make capacity 0;
      vs = Array.make capacity 0.0;
    }

  let length t = t.len

  let grow t =
    let cap = Array.length t.ri in
    let cap' = (2 * cap) + 1 in
    let ri = Array.make cap' 0 and ci = Array.make cap' 0 in
    let vs = Array.make cap' 0.0 in
    Array.blit t.ri 0 ri 0 t.len;
    Array.blit t.ci 0 ci 0 t.len;
    Array.blit t.vs 0 vs 0 t.len;
    t.ri <- ri;
    t.ci <- ci;
    t.vs <- vs

  let add t i j v =
    if i < 0 || j < 0 then invalid_arg "Sparse.Triplets.add: negative index";
    if t.len = Array.length t.ri then grow t;
    t.ri.(t.len) <- i;
    t.ci.(t.len) <- j;
    t.vs.(t.len) <- v;
    t.len <- t.len + 1

  let iter t f =
    for k = 0 to t.len - 1 do
      f t.ri.(k) t.ci.(k) t.vs.(k)
    done

  let copy t =
    {
      len = t.len;
      ri = Array.copy t.ri;
      ci = Array.copy t.ci;
      vs = Array.copy t.vs;
    }
end

module Csc = struct
  type t = {
    rows : int;
    cols : int;
    colptr : int array;  (* length cols+1 *)
    rowind : int array;  (* length nnz, sorted & unique per column *)
    values : float array;  (* length nnz *)
  }

  let rows t = t.rows
  let cols t = t.cols
  let nnz t = t.colptr.(t.cols)

  let of_triplets ~n (t : Triplets.t) =
    if n < 0 then invalid_arg "Sparse.Csc.of_triplets: negative size";
    let len = t.Triplets.len in
    let ri = t.Triplets.ri and ci = t.Triplets.ci and vs = t.Triplets.vs in
    for k = 0 to len - 1 do
      if ri.(k) >= n || ci.(k) >= n then
        invalid_arg "Sparse.Csc.of_triplets: index out of bounds"
    done;
    (* Bucket by column, keeping insertion order within each column so
       duplicate stamps sum in the same order a dense replay would. *)
    let cnt = Array.make (n + 1) 0 in
    for k = 0 to len - 1 do
      cnt.(ci.(k)) <- cnt.(ci.(k)) + 1
    done;
    let start = Array.make (n + 1) 0 in
    for j = 0 to n - 1 do
      start.(j + 1) <- start.(j) + cnt.(j)
    done;
    let next = Array.copy start in
    let bri = Array.make (max len 1) 0 in
    let bvs = Array.make (max len 1) 0.0 in
    for k = 0 to len - 1 do
      let j = ci.(k) in
      bri.(next.(j)) <- ri.(k);
      bvs.(next.(j)) <- vs.(k);
      next.(j) <- next.(j) + 1
    done;
    (* Per column: stable insertion sort by row (column counts in MNA
       stamps are tiny), then sum runs of equal rows in order. *)
    let colptr = Array.make (n + 1) 0 in
    let rowind = Array.make (max len 1) 0 in
    let values = Array.make (max len 1) 0.0 in
    let out = ref 0 in
    for j = 0 to n - 1 do
      colptr.(j) <- !out;
      let lo = start.(j) and hi = start.(j + 1) in
      for k = lo + 1 to hi - 1 do
        let r = bri.(k) and v = bvs.(k) in
        let p = ref k in
        while !p > lo && bri.(!p - 1) > r do
          bri.(!p) <- bri.(!p - 1);
          bvs.(!p) <- bvs.(!p - 1);
          decr p
        done;
        bri.(!p) <- r;
        bvs.(!p) <- v
      done;
      let k = ref lo in
      while !k < hi do
        let r = bri.(!k) in
        let acc = ref bvs.(!k) in
        incr k;
        while !k < hi && bri.(!k) = r do
          acc := !acc +. bvs.(!k);
          incr k
        done;
        rowind.(!out) <- r;
        values.(!out) <- !acc;
        incr out
      done
    done;
    colptr.(n) <- !out;
    {
      rows = n;
      cols = n;
      rowind = Array.sub rowind 0 (max !out 1);
      values = Array.sub values 0 (max !out 1);
      colptr;
    }

  let of_matrix m =
    let rows = Matrix.rows m and cols = Matrix.cols m in
    let a = Matrix.data m in
    let nnz = ref 0 in
    for k = 0 to (rows * cols) - 1 do
      if a.(k) <> 0.0 then incr nnz
    done;
    let colptr = Array.make (cols + 1) 0 in
    let rowind = Array.make (max !nnz 1) 0 in
    let values = Array.make (max !nnz 1) 0.0 in
    let out = ref 0 in
    for j = 0 to cols - 1 do
      colptr.(j) <- !out;
      for i = 0 to rows - 1 do
        let v = a.((i * cols) + j) in
        if v <> 0.0 then begin
          rowind.(!out) <- i;
          values.(!out) <- v;
          incr out
        end
      done
    done;
    colptr.(cols) <- !out;
    { rows; cols; colptr; rowind; values }

  let to_matrix t =
    let m = Matrix.create t.rows t.cols in
    for j = 0 to t.cols - 1 do
      for p = t.colptr.(j) to t.colptr.(j + 1) - 1 do
        Matrix.set m t.rowind.(p) j t.values.(p)
      done
    done;
    m
end

module Symbolic = struct
  type t = { n : int; q : int array }

  let order t = Array.copy t.q
  let size t = t.n
end

(* Reverse Cuthill–McKee on pattern(A + Aᵀ): BFS from a
   pseudo-peripheral vertex of each component, neighbours visited in
   increasing-degree order, whole order reversed. For the near-tree
   matrices here this keeps the profile — and hence LU fill — narrow;
   it is also deterministic, which the byte-identical-output contract
   relies on. *)
let analyze (a : Csc.t) =
  let n = Csc.cols a in
  if Csc.rows a <> n then invalid_arg "Sparse.analyze: matrix not square";
  (* Symmetrised adjacency, self-loops dropped. *)
  let deg = Array.make (max n 1) 0 in
  let count i j =
    if i <> j then begin
      deg.(i) <- deg.(i) + 1;
      deg.(j) <- deg.(j) + 1
    end
  in
  for j = 0 to n - 1 do
    for p = a.Csc.colptr.(j) to a.Csc.colptr.(j + 1) - 1 do
      count a.Csc.rowind.(p) j
    done
  done;
  let adjptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    adjptr.(i + 1) <- adjptr.(i) + deg.(i)
  done;
  let adj = Array.make (max adjptr.(n) 1) 0 in
  let next = Array.copy adjptr in
  let push i j =
    if i <> j then begin
      adj.(next.(i)) <- j;
      next.(i) <- next.(i) + 1;
      adj.(next.(j)) <- i;
      next.(j) <- next.(j) + 1
    end
  in
  for j = 0 to n - 1 do
    for p = a.Csc.colptr.(j) to a.Csc.colptr.(j + 1) - 1 do
      push a.Csc.rowind.(p) j
    done
  done;
  (* Dedup each adjacency list (A and Aᵀ overlap on symmetric
     patterns) and recompute degrees. *)
  let udeg = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    let lo = adjptr.(i) and hi = next.(i) in
    let seg = Array.sub adj lo (hi - lo) in
    Array.sort compare seg;
    let out = ref lo in
    Array.iter
      (fun v ->
        if !out = lo || adj.(!out - 1) <> v then begin
          adj.(!out) <- v;
          incr out
        end)
      seg;
    udeg.(i) <- !out - lo
  done;
  (* Neighbour order: ascending (degree, index) — the classic CM
     tie-break, and a total order so the result is deterministic. *)
  let by_deg u v = if udeg.(u) = udeg.(v) then compare u v else compare udeg.(u) (udeg.(v)) in
  for i = 0 to n - 1 do
    let seg = Array.sub adj (adjptr.(i)) udeg.(i) in
    Array.sort by_deg seg;
    Array.blit seg 0 adj (adjptr.(i)) udeg.(i)
  done;
  let visited = Array.make (max n 1) false in
  let order = Array.make (max n 1) 0 in
  let pos = ref 0 in
  let queue = Array.make (max n 1) 0 in
  (* BFS from [root] appending to [order]; returns a vertex in the last
     level (a pseudo-peripheral candidate). [commit] keeps the visit
     marks; otherwise they are rolled back. *)
  let bfs ~commit root =
    let head = ref 0 and tail = ref 0 in
    let base = !pos in
    queue.(!tail) <- root;
    incr tail;
    visited.(root) <- true;
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      order.(!pos) <- u;
      incr pos;
      for p = adjptr.(u) to adjptr.(u) + udeg.(u) - 1 do
        let v = adj.(p) in
        if not visited.(v) then begin
          visited.(v) <- true;
          queue.(!tail) <- v;
          incr tail
        end
      done
    done;
    let last = order.(!pos - 1) in
    if not commit then begin
      for k = base to !pos - 1 do
        visited.(order.(k)) <- false
      done;
      pos := base
    end;
    last
  in
  (* Vertices by ascending (degree, index): component starts. *)
  let starts = Array.init n Fun.id in
  Array.sort by_deg starts;
  Array.iter
    (fun s ->
      if not visited.(s) then begin
        (* Two probe sweeps toward a pseudo-peripheral start. *)
        let e1 = bfs ~commit:false s in
        let e2 = bfs ~commit:false e1 in
        bfs ~commit:true e2 |> ignore
      end)
    starts;
  (* Reverse: Cuthill–McKee → RCM. *)
  let q = Array.make (max n 1) 0 in
  for k = 0 to n - 1 do
    q.(k) <- order.(n - 1 - k)
  done;
  { Symbolic.n; q = (if n = 0 then [||] else q) }

type t = {
  n : int;
  (* L strictly lower (unit diagonal implicit), one column per pivot
     step, row indices in pivot positions; U strictly upper with the
     diagonal split out. Both in elimination order. *)
  lp : int array;
  li : int array;
  lx : float array;
  up : int array;
  ui : int array;
  ux : float array;
  udiag : float array;
  p : int array;  (* p.(k) = original row pivotal at step k *)
  q : int array;  (* q.(k) = original column eliminated at step k *)
  scratch : float array;
}

let size t = t.n
let factor_nnz t = t.lp.(t.n) + t.up.(t.n) + t.n

(* Growable int/float parallel array for the factor columns. *)
type buf = { mutable bi : int array; mutable bx : float array; mutable blen : int }

let buf_create cap = { bi = Array.make (max cap 4) 0; bx = Array.make (max cap 4) 0.0; blen = 0 }

let buf_push b i x =
  let cap = Array.length b.bi in
  if b.blen = cap then begin
    let bi = Array.make (2 * cap) 0 and bx = Array.make (2 * cap) 0.0 in
    Array.blit b.bi 0 bi 0 b.blen;
    Array.blit b.bx 0 bx 0 b.blen;
    b.bi <- bi;
    b.bx <- bx
  end;
  b.bi.(b.blen) <- i;
  b.bx.(b.blen) <- x;
  b.blen <- b.blen + 1

let try_factor ?symbolic (a : Csc.t) =
  let n = Csc.rows a in
  if Csc.cols a <> n then invalid_arg "Sparse.factor: matrix not square";
  Obs.Counter.incr factorizations;
  let anz = Csc.nnz a in
  Obs.Counter.add nnz_counter anz;
  let amax = ref 0.0 and finite = ref true in
  for k = 0 to anz - 1 do
    let v = a.Csc.values.(k) in
    if not (Float.is_finite v) then finite := false;
    let av = abs_float v in
    if av > !amax then amax := av
  done;
  if not !finite then begin
    Obs.Counter.incr singular_factorizations;
    Error (-1)
  end
  else begin
    let q =
      match symbolic with
      | Some s ->
          if s.Symbolic.n <> n then
            invalid_arg "Sparse.factor: symbolic size mismatch";
          s.Symbolic.q
      | None -> (analyze a).Symbolic.q
    in
    let floor = Float.max pivot_floor (relative_pivot_threshold *. !amax) in
    let pinv = Array.make (max n 1) (-1) in
    let p = Array.make (max n 1) 0 in
    let udiag = Array.make (max n 1) 0.0 in
    let lp = Array.make (n + 1) 0 and up = Array.make (n + 1) 0 in
    let lbuf = buf_create ((2 * anz) + n) and ubuf = buf_create ((2 * anz) + n) in
    (* Workspaces for the per-column sparse triangular solve. L's row
       indices stay original until the final remap, so [mark]/[x] are
       indexed by original row. *)
    let x = Array.make (max n 1) 0.0 in
    let mark = Array.make (max n 1) (-1) in
    let stack = Array.make (max n 1) 0 in
    let pstack = Array.make (max n 1) 0 in
    let topo = Array.make (max n 1) 0 in
    let err = ref None in
    let k = ref 0 in
    while !err = None && !k < n do
      let col = q.(!k) in
      (* Reach of A(:,col) through the columns of L already computed:
         iterative DFS with per-node resume positions, emitting a
         topological order into topo.(top..n-1). *)
      let top = ref n in
      for pa = a.Csc.colptr.(col) to a.Csc.colptr.(col + 1) - 1 do
        let root = a.Csc.rowind.(pa) in
        if mark.(root) <> !k then begin
          let head = ref 0 in
          stack.(0) <- root;
          while !head >= 0 do
            let i = stack.(!head) in
            if mark.(i) <> !k then begin
              mark.(i) <- !k;
              pstack.(!head) <- (if pinv.(i) >= 0 then lp.(pinv.(i)) else 0)
            end;
            let advanced = ref false in
            if pinv.(i) >= 0 then begin
              let stop = lp.(pinv.(i) + 1) in
              let pp = ref pstack.(!head) in
              while (not !advanced) && !pp < stop do
                let r = lbuf.bi.(!pp) in
                incr pp;
                if mark.(r) <> !k then begin
                  pstack.(!head) <- !pp;
                  incr head;
                  stack.(!head) <- r;
                  advanced := true
                end
              done
            end;
            if not !advanced then begin
              decr head;
              decr top;
              topo.(!top) <- i
            end
          done
        end
      done;
      (* Numeric solve x = L⁻¹ A(:,col) on the reach (x is all-zero
         outside: every touched entry is cleared below). *)
      for pa = a.Csc.colptr.(col) to a.Csc.colptr.(col + 1) - 1 do
        x.(a.Csc.rowind.(pa)) <- a.Csc.values.(pa)
      done;
      for t = !top to n - 1 do
        let i = topo.(t) in
        let ti = pinv.(i) in
        if ti >= 0 then begin
          let xi = x.(i) in
          if xi <> 0.0 then
            for pp = lp.(ti) to lp.(ti + 1) - 1 do
              x.(lbuf.bi.(pp)) <- x.(lbuf.bi.(pp)) -. (lbuf.bx.(pp) *. xi)
            done
        end
      done;
      (* Threshold partial pivoting over the non-pivotal reach rows,
         preferring the diagonal when competitive. *)
      let piv = ref (-1) and pmax = ref 0.0 in
      for t = !top to n - 1 do
        let i = topo.(t) in
        if pinv.(i) < 0 then begin
          let av = abs_float x.(i) in
          if av > !pmax then begin
            pmax := av;
            piv := i
          end
        end
      done;
      if !piv >= 0 && mark.(col) = !k && pinv.(col) < 0 then begin
        let ad = abs_float x.(col) in
        if ad >= pivot_tolerance *. !pmax then piv := col
      end;
      let pivot = if !piv >= 0 then x.(!piv) else 0.0 in
      if !piv < 0 || abs_float pivot < floor || not (Float.is_finite pivot)
      then begin
        Obs.Counter.incr singular_factorizations;
        err := Some col
      end
      else begin
        p.(!k) <- !piv;
        pinv.(!piv) <- !k;
        udiag.(!k) <- pivot;
        (* Emit U (pivotal rows, in elimination positions) and L
           (non-pivotal rows, original indices for now, scaled by the
           pivot), clearing x as we go. *)
        for t = !top to n - 1 do
          let i = topo.(t) in
          let xi = x.(i) in
          if i <> !piv then begin
            let ti = pinv.(i) in
            if ti >= 0 then begin
              if xi <> 0.0 then buf_push ubuf ti xi
            end
            else if xi <> 0.0 then buf_push lbuf i (xi /. pivot)
          end;
          x.(i) <- 0.0
        done;
        lp.(!k + 1) <- lbuf.blen;
        up.(!k + 1) <- ubuf.blen;
        incr k
      end
    done;
    match !err with
    | Some c -> Error c
    | None ->
        (* Remap L's row indices to pivot positions: every row is
           pivotal by now. *)
        for pp = 0 to lbuf.blen - 1 do
          lbuf.bi.(pp) <- pinv.(lbuf.bi.(pp))
        done;
        let f =
          {
            n;
            lp;
            li = Array.sub lbuf.bi 0 (max lbuf.blen 1);
            lx = Array.sub lbuf.bx 0 (max lbuf.blen 1);
            up;
            ui = Array.sub ubuf.bi 0 (max ubuf.blen 1);
            ux = Array.sub ubuf.bx 0 (max ubuf.blen 1);
            udiag;
            p;
            q = Array.copy q;
            scratch = Array.make (max n 1) 0.0;
          }
        in
        if Obs.enabled () && anz > 0 then
          Obs.Histogram.observe fill_hist
            (float_of_int (factor_nnz f) /. float_of_int anz);
        Ok f
  end

(* PAQ = LU: permute b by P, solve Ly = b̄ then Uz = y in elimination
   order, scatter back through Q. *)
let solve_with ~work t b =
  let n = t.n in
  if Array.length b <> n then invalid_arg "Sparse.solve: length mismatch";
  if Array.length work < n then invalid_arg "Sparse.solve: work too short";
  let y = work in
  for k = 0 to n - 1 do
    y.(k) <- b.(t.p.(k))
  done;
  (* Forward: L unit lower, columns scatter downward. *)
  for k = 0 to n - 1 do
    let yk = y.(k) in
    if yk <> 0.0 then
      for pp = t.lp.(k) to t.lp.(k + 1) - 1 do
        y.(t.li.(pp)) <- y.(t.li.(pp)) -. (t.lx.(pp) *. yk)
      done
  done;
  (* Backward: U strictly upper plus diagonal. *)
  for k = n - 1 downto 0 do
    let zk = y.(k) /. t.udiag.(k) in
    y.(k) <- zk;
    if zk <> 0.0 then
      for pp = t.up.(k) to t.up.(k + 1) - 1 do
        y.(t.ui.(pp)) <- y.(t.ui.(pp)) -. (t.ux.(pp) *. zk)
      done
  done;
  for k = 0 to n - 1 do
    b.(t.q.(k)) <- y.(k)
  done

let solve_in_place t b = solve_with ~work:t.scratch t b

let solve t b =
  let x = Array.copy b in
  solve_in_place t x;
  x
