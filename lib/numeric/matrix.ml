type t = { r : int; c : int; a : float array }

let create r c =
  if r < 0 || c < 0 then invalid_arg "Matrix.create: negative dimension";
  { r; c; a = Array.make (r * c) 0.0 }

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.a.((i * n) + i) <- 1.0
  done;
  m

let rows m = m.r
let cols m = m.c

let index m i j =
  if i < 0 || i >= m.r || j < 0 || j >= m.c then
    invalid_arg "Matrix: index out of range";
  (i * m.c) + j

let get m i j = m.a.(index m i j)
let set m i j x = m.a.(index m i j) <- x
let update m i j f = m.a.(index m i j) <- f m.a.(index m i j)
let add_to m i j x = m.a.(index m i j) <- m.a.(index m i j) +. x

let copy m = { m with a = Array.copy m.a }

let transpose m =
  let t = create m.c m.r in
  for i = 0 to m.r - 1 do
    for j = 0 to m.c - 1 do
      t.a.((j * t.c) + i) <- m.a.((i * m.c) + j)
    done
  done;
  t

let mul x y =
  if x.c <> y.r then invalid_arg "Matrix.mul: dimension mismatch";
  let z = create x.r y.c in
  for i = 0 to x.r - 1 do
    for k = 0 to x.c - 1 do
      let xik = x.a.((i * x.c) + k) in
      if xik <> 0.0 then
        for j = 0 to y.c - 1 do
          z.a.((i * z.c) + j) <- z.a.((i * z.c) + j) +. (xik *. y.a.((k * y.c) + j))
        done
    done
  done;
  z

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let s = ref 0.0 in
      for j = 0 to m.c - 1 do
        s := !s +. (m.a.((i * m.c) + j) *. v.(j))
      done;
      !s)

let add x y =
  if x.r <> y.r || x.c <> y.c then invalid_arg "Matrix.add: dimension mismatch";
  { x with a = Array.mapi (fun i v -> v +. y.a.(i)) x.a }

let sub x y =
  if x.r <> y.r || x.c <> y.c then invalid_arg "Matrix.sub: dimension mismatch";
  { x with a = Array.mapi (fun i v -> v -. y.a.(i)) x.a }

let scale s m = { m with a = Array.map (fun v -> s *. v) m.a }

let map f m = { m with a = Array.map f m.a }

let data m = m.a

let of_arrays rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then create 0 0
  else begin
    let c = Array.length rows_arr.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then
          invalid_arg "Matrix.of_arrays: ragged rows")
      rows_arr;
    let m = create r c in
    for i = 0 to r - 1 do
      Array.blit rows_arr.(i) 0 m.a (i * c) c
    done;
    m
  end

let to_arrays m =
  Array.init m.r (fun i -> Array.sub m.a (i * m.c) m.c)

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0.0 m.a

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.a)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.c - 1 do
      Format.fprintf ppf "%10.4g " m.a.((i * m.c) + j)
    done;
    Format.fprintf ppf "@]@,"
  done;
  Format.fprintf ppf "@]"
