let make n x = Array.make n x
let zeros n = Array.make n 0.0
let copy = Array.copy

let check_same_length a b name =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": length mismatch")

let add a b =
  check_same_length a b "Vec.add";
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_same_length a b "Vec.sub";
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_same_length x y "Vec.axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_same_length a b "Vec.dot";
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> Float.max m (abs_float x)) 0.0 a

let max_abs_diff a b =
  check_same_length a b "Vec.max_abs_diff";
  let m = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (abs_float (a.(i) -. b.(i)))
  done;
  !m

let lerp a b t = a +. (t *. (b -. a))
