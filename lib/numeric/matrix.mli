(** Dense square/rectangular matrices in row-major order.

    Circuit matrices from modified nodal analysis of signal nets are
    small (tens to a few hundred nodes), so a dense representation with
    an O(n³) factorisation is both simple and fast enough; the paper's
    nets peak around 30 pins ≈ a few hundred MNA unknowns. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val identity : int -> t
val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val update : t -> int -> int -> (float -> float) -> unit
val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] performs [m.(i,j) <- m.(i,j) + x] — the "stamping"
    primitive of MNA assembly. *)

val copy : t -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val map : (float -> float) -> t -> t

val data : t -> float array
(** The underlying row-major storage (entry (i,j) at [i*cols + j]).
    Exposed for performance-critical inner loops (the transient
    integrator); mutating it mutates the matrix. *)

val of_arrays : float array array -> t
val to_arrays : t -> float array array

val max_abs : t -> float
val frobenius : t -> float

val pp : Format.formatter -> t -> unit
