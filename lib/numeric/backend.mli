(** Matrix-backend dispatch: one factorisation type over the sparse
    ({!Sparse}) and dense ({!Lu}) kernels.

    The process-wide backend kind (set from [--matrix-backend], sparse
    by default) decides how full MNA systems are factored. The sparse
    path additionally keeps the dense robustness semantics from the
    fault-tolerant oracle stack: when threshold partial pivoting gives
    up on a borderline matrix, {!try_factor} silently retries with the
    dense kernel — dense full partial pivoting is the authority on
    singularity, so a system is reported singular under the sparse
    backend exactly when the dense backend would report it singular.
    Fallbacks are tallied under [sparse.dense_fallbacks].

    Factorisations are domain-safe to share read-only; per-domain
    solves should thread private workspaces via {!solve_with}. *)

type kind = Dense | Sparse

val set_kind : kind -> unit
(** Select the process-wide backend (sparse at start-up). *)

val kind : unit -> kind
val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type t
(** A factorisation by whichever backend was active when it was made. *)

val try_factor : ?symbolic:Sparse.Symbolic.t -> Matrix.t -> (t, int) result
(** Factor a dense-assembled matrix under the active backend.
    [symbolic] (used only by the sparse path) supplies a precomputed
    fill-reducing ordering; see {!Sparse.analyze}. Error codes are
    those of {!Lu.try_factor}.

    @raise Invalid_argument when the matrix is not square or [symbolic]
    has the wrong size. *)

val try_factor_csc :
  ?symbolic:Sparse.Symbolic.t ->
  ?dense:Matrix.t ->
  Sparse.Csc.t ->
  (t, int) result
(** Factor a triplet-assembled matrix. Under the dense backend (or on
    sparse pivot-failure fallback) the dense image is taken from
    [dense] when supplied — callers that already materialised the
    matrix (e.g. {!Mna}) avoid a CSC expansion — and otherwise from
    {!Sparse.Csc.to_matrix}. *)

val factor : ?symbolic:Sparse.Symbolic.t -> Matrix.t -> t
(** @raise Lu.Singular when no usable pivot exists (either kernel). *)

val size : t -> int
val solve : t -> float array -> float array
val solve_in_place : t -> float array -> unit

val solve_with : work:float array -> t -> float array -> unit
(** In-place solve with a caller-supplied intermediate buffer (length
    n), keeping a shared factorisation read-only. *)

val update :
  ?pad:int ->
  ?rcond_floor:float ->
  t ->
  (float * float array * float array) list ->
  Lu.Update.t option
(** Sherman–Morrison–Woodbury extension of a factorisation with rank-1
    terms — {!Lu.Update.make_with} over this backend's solve, so the
    incremental scorer's update algebra is backend-independent. *)
