(** The Wire-Sized Optimal Routing Graph problem (Section 5.2).

    Two parallel width-w wires between the same pins behave as one
    width-2w wire, so the non-tree idea generalises to a width function
    w : E → ℝ. Wider wires have lower resistance and higher
    capacitance; widening near the source usually pays. This module
    provides the greedy discrete sizing pass and the parallel-merge
    observation as code. *)

val wire_area : Routing.t -> float
(** Σ length × width — the silicon area cost that replaces raw
    wirelength once widths vary. *)

val size_greedy :
  ?widths:float list ->
  ?max_changes:int ->
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  Routing.t * ((int * int) * float) list
(** [size_greedy ~model ~tech r] repeatedly bumps the single edge whose
    widening most reduces the model delay to the next allowed width
    (default widths 1, 2, 3), while any bump improves. Returns the
    sized routing and the applied (edge, new-width) changes in order.

    @raise Invalid_argument when [widths] is not strictly increasing
    or does not start at 1. *)

val merge_parallel_delay :
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  int * int ->
  float
(** Delay of the routing in which the given *existing* edge is doubled
    in width — the "merged parallel wire" equivalent of adding a second
    identical wire alongside it. Demonstrates the Section 5.2
    equivalence; tested against an explicitly duplicated wire.

    @raise Not_found when the edge is absent. *)
