(** The Steiner Low Delay Routing Graph (SLDRG) algorithm — Figure 6.

    Identical greedy loop to {!Ldrg}, but starting from an Iterated
    1-Steiner tree, so the candidate wires may also join Steiner
    points. Table 3 normalises its results to the Steiner tree. *)

val initial_tree : Geom.Net.t -> Routing.t
(** Step 1 of the algorithm: the Iterated 1-Steiner tree over the net. *)

val run :
  ?pool:Pool.t ->
  ?max_edges:int ->
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  Geom.Net.t ->
  Ldrg.trace
(** Builds the Steiner tree and runs the greedy non-tree loop on it;
    the trace's [initial] is the Steiner tree. *)
