(** Routing evaluation: the (delay, cost) pair every table reports. *)

type t = {
  delay : float;  (** max source→sink delay under the chosen model, s *)
  cost : float;  (** total wirelength, µm *)
}

val measure :
  model:Delay.Model.t -> tech:Circuit.Technology.t -> Routing.t -> t
(** Robust measurement: retries and model fallback are applied before
    giving up. Raises [Nontree_error.Error] only when every fallback
    fails. *)

val measure_result :
  ?policy:Delay.Robust.policy ->
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  (t, Nontree_error.t) result
(** Non-raising variant of {!measure}. *)

val ratio : t -> baseline:t -> t
(** Element-wise normalisation: the paper reports every number relative
    to the corresponding baseline topology (MST, Steiner tree or ERT). *)

val pp : Format.formatter -> t -> unit
