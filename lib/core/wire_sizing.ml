let wire_area r =
  List.fold_left
    (fun acc ((u, v), w) -> acc +. (Routing.edge_length r u v *. w))
    0.0 (Routing.widths r)

let next_width widths current =
  List.find_opt (fun w -> w > current +. 1e-12) widths

let size_greedy ?(widths = [ 1.0; 2.0; 3.0 ]) ?(max_changes = max_int) ~model
    ~tech r =
  (match widths with
  | first :: _ when abs_float (first -. 1.0) < 1e-12 ->
      let rec increasing = function
        | a :: (b :: _ as rest) ->
            if b > a then increasing rest
            else invalid_arg "Wire_sizing: widths must be strictly increasing"
        | _ -> ()
      in
      increasing widths
  | _ -> invalid_arg "Wire_sizing: widths must start at 1");
  let delay_of = Oracle.objective ~model ~tech in
  let rec loop current current_delay changes count =
    if count >= max_changes then (current, changes)
    else begin
      let best =
        List.fold_left
          (fun best ((u, v), w) ->
            match next_width widths w with
            | None -> best
            | Some w' ->
                let trial = Routing.set_width current u v w' in
                let d = delay_of trial in
                (match best with
                | Some (_, _, _, d') when d' <= d -> best
                | _ -> Some ((u, v), w', trial, d)))
          None (Routing.widths current)
      in
      match best with
      | Some (edge, w', trial, d) when d < current_delay *. (1.0 -. 1e-9) ->
          loop trial d ((edge, w') :: changes) (count + 1)
      | _ -> (current, changes)
    end
  in
  let final, changes = loop r (delay_of r) [] 0 in
  (final, List.rev changes)

let merge_parallel_delay ~model ~tech r (u, v) =
  let current = Routing.width r u v in
  Oracle.Cache.max_delay ~model ~tech
    (Routing.set_width r u v (2.0 *. current))
