let uniform net = Array.make (Geom.Net.num_sinks net) 1.0

let one_hot net ~critical =
  let k = Geom.Net.num_sinks net in
  if critical < 1 || critical > k then
    invalid_arg "Critical_sink.one_hot: not a sink index";
  Array.init k (fun i -> if i + 1 = critical then 1.0 else 0.0)

let check_alphas alphas r =
  if Array.length alphas <> Routing.num_terminals r - 1 then
    invalid_arg "Critical_sink: need one weight per sink"

let weighted_delay ~model ~tech ~alphas r =
  check_alphas alphas r;
  List.fold_left
    (fun acc (v, d) -> acc +. (alphas.(v - 1) *. d))
    0.0
    (Oracle.Cache.sink_delays ~model ~tech r)

let ldrg ?pool ?max_edges ~model ~tech ~alphas initial =
  check_alphas alphas initial;
  Ldrg.run_objective ?pool ?max_edges
    ~objective:(Oracle.guard (fun r -> weighted_delay ~model ~tech ~alphas r))
    initial

let ert_seed ~tech ~alphas net = Ert.construct_weighted ~tech ~alphas net
