(** Experiment driver shared by the benchmark harness and the CLI.

    Reproduces the paper's protocol (Section 4): for each net size,
    [trials] nets with pins uniform in the layout region of the
    technology; every method's routing is evaluated with the *same*
    evaluation model (SPICE in the paper) and normalised to its
    baseline topology. *)

type config = {
  seed : int;
  trials : int;
  sizes : int list;  (** net sizes (pin counts); the paper uses 5/10/20/30 *)
  tech : Circuit.Technology.t;
  eval_model : Delay.Model.t;  (** model used to *report* delay *)
  search_model : Delay.Model.t;  (** oracle driving greedy searches *)
  jobs : int;
      (** worker domains for net fan-out and candidate scoring; 1
          (the default) runs the untouched sequential path. Table
          contents are identical for any value — only wall time
          changes. *)
}

val default : config
(** Seed 1994, 50 trials, sizes 5/10/20/30, Table 1 technology,
    fast-SPICE evaluation and search (the paper's setup, scaled for a
    laptop run; use {!accurate} to tighten). *)

val accurate : config
(** Like {!default} with the accurate SPICE profile for evaluation. *)

val nets : config -> size:int -> Geom.Net.t array
(** The reproducible trial nets for one size. Independent of [trials]
    prefix-stability: growing [trials] keeps earlier nets unchanged. *)

val sample :
  config -> baseline:Routing.t -> routing:Routing.t -> Stats.sample
(** Evaluates both topologies under [eval_model] and returns the
    normalised sample. *)

val per_size :
  config -> size:int -> (Geom.Net.t -> Stats.sample) -> Stats.row
(** Runs one method over all trial nets of a size and aggregates. *)

val per_size_multi :
  config -> size:int -> (Geom.Net.t -> Stats.sample list) -> Stats.row list
(** Like {!per_size} for methods that report several samples per net
    (e.g. LDRG iteration one and iteration two): sample [i] of each
    net is aggregated into row [i]. Nets that return fewer samples than
    the maximum are padded with their last sample (a net whose LDRG
    stopped after one addition contributes that routing to both
    iteration rows, matching the paper's cumulative per-iteration
    accounting). *)
