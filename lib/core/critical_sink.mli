(** The Critical-Sink Optimal Routing Graph problem (Section 5.1).

    Each sink nᵢ carries a criticality αᵢ ≥ 0 from timing analysis; the
    objective becomes the weighted sum Σ αᵢ·t(nᵢ) instead of the max.
    Setting every αᵢ to the same constant minimises average delay; a
    one-hot α targets a single known-critical sink. *)

val uniform : Geom.Net.t -> float array
(** All-ones criticalities: the average-delay objective. *)

val one_hot : Geom.Net.t -> critical:int -> float array
(** α = 1 for sink vertex [critical], 0 elsewhere.

    @raise Invalid_argument unless [critical] is a sink index
    (1..k). *)

val weighted_delay :
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  alphas:float array ->
  Routing.t ->
  float
(** Σ αᵢ·t(nᵢ) under the given delay model. [alphas.(i)] weights sink
    vertex i+1.

    @raise Invalid_argument when the weight count differs from the
    sink count. *)

val ldrg :
  ?pool:Pool.t ->
  ?max_edges:int ->
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  alphas:float array ->
  Routing.t ->
  Ldrg.trace
(** The LDRG greedy loop under the weighted objective. *)

val ert_seed :
  tech:Circuit.Technology.t -> alphas:float array -> Geom.Net.t -> Routing.t
(** A criticality-aware starting tree: the weighted ERT. *)
