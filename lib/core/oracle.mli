(** Robust oracle access for the greedy loops.

    The loops (LDRG, pruning, wire sizing, ...) evaluate one baseline
    routing followed by many candidate edits. Failure semantics differ:
    if the *baseline* cannot be evaluated the whole net is unusable and
    the typed error propagates (callers drop the net and count it),
    whereas a failed *candidate* evaluation merely discards that
    candidate — it scores [infinity], is never selected, and the loop
    continues. Both paths go through {!Delay.Robust}, so every failure
    has already survived retry-with-refinement and model degradation
    before reaching these guards. *)

val net_of_points :
  Geom.Point.t list -> (Geom.Net.t, Nontree_error.t) result
(** Safe net construction: coincident pins, too few pins and similar
    degeneracies come back as [Invalid_net] instead of
    [Invalid_argument]. *)

val guard : (Routing.t -> float) -> Routing.t -> float
(** [guard objective] wraps an objective that may raise
    {!Nontree_error.Error}: the first evaluation re-raises (baseline
    semantics), later evaluations log, count a dropped evaluation and
    return [infinity] (candidate semantics). The guard is stateful —
    build a fresh one per greedy loop. *)

val objective :
  model:Delay.Model.t -> tech:Circuit.Technology.t -> Routing.t -> float
(** [objective ~model ~tech] is a fresh guarded max-delay objective
    running on the fault-tolerant {!Delay.Robust} path. *)
