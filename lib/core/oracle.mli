(** Robust oracle access for the greedy loops.

    The loops (LDRG, pruning, wire sizing, ...) evaluate one baseline
    routing followed by many candidate edits. Failure semantics differ:
    if the *baseline* cannot be evaluated the whole net is unusable and
    the typed error propagates (callers drop the net and count it),
    whereas a failed *candidate* evaluation merely discards that
    candidate — it scores [infinity], is never selected, and the loop
    continues. Both paths go through {!Delay.Robust}, so every failure
    has already survived retry-with-refinement and model degradation
    before reaching these guards. *)

val net_of_points :
  Geom.Point.t list -> (Geom.Net.t, Nontree_error.t) result
(** Safe net construction: coincident pins, too few pins and similar
    degeneracies come back as [Invalid_net] instead of
    [Invalid_argument]. *)

val guard : (Routing.t -> float) -> Routing.t -> float
(** [guard objective] wraps an objective that may raise
    {!Nontree_error.Error}: the first evaluation re-raises (baseline
    semantics), later evaluations log, count a dropped evaluation and
    return [infinity] (candidate semantics). The guard is stateful —
    build a fresh one per greedy loop — and domain-safe: the
    first-evaluation flag is claimed with an atomic exchange, so under
    [--jobs > 1] exactly one evaluation gets baseline semantics. *)

(** Memo layer over the fault-tolerant oracle.

    The greedy loops re-evaluate identical routings constantly: the
    per-iteration tables re-run LDRG per iteration bound from scratch,
    [iteration_samples] replays prefixes of one trace, and CSORG probes
    overlapping edge sets. The cache keys on everything the oracle
    result depends on — delay model (including its SPICE configuration),
    technology constants, vertex geometry, and the edge set with widths
    — rendered exactly (floats as [%h] hex) and digested. A hit returns
    the previously computed sink delays bit-identically, so cached and
    uncached runs print the same bytes.

    Disabled by default (library semantics unchanged); the binaries
    enable it unless [--no-cache] is given. Failed evaluations are never
    cached, so retry behaviour under fault injection is unaffected. All
    state is domain-safe: the table is mutex-protected and the counters
    are atomics. *)
module Cache : sig
  type stats = { hits : int; misses : int; entries : int }

  val set_enabled : bool -> unit
  val enabled : unit -> bool

  val set_capacity : int -> unit
  (** Maximum number of entries retained (default 200_000); once full,
      new results are computed but not stored. *)

  val reset : unit -> unit
  (** Drop all entries and zero the hit/miss counters. *)

  val stats : unit -> stats

  val summary : unit -> string option
  (** One human-readable line ("oracle cache: H hits, M misses ...") —
      printed by the binaries next to the robustness summary. The hit
      rate reads "n/a" (never NaN) when the cache saw no traffic;
      [None] only when the cache is disabled and idle. *)

  val find_delays :
    model:Delay.Model.t ->
    tech:Circuit.Technology.t ->
    Routing.t ->
    (int * float) list option
  (** Cache lookup without evaluation (always [None] when disabled),
      counting the hit or miss. The incremental scorer probes here
      before doing any work. *)

  val store_delays :
    model:Delay.Model.t ->
    tech:Circuit.Technology.t ->
    Routing.t ->
    (int * float) list ->
    unit
  (** Publish sink delays computed outside {!sink_delays} (the
      incremental scorer) under the same key; a no-op when the cache
      is disabled. *)

  val sink_delays :
    model:Delay.Model.t ->
    tech:Circuit.Technology.t ->
    Routing.t ->
    (int * float) list
  (** Memoised {!Delay.Robust.sink_delays_exn} (identity when the cache
      is disabled).
      @raise Nontree_error.Error as the underlying oracle does. *)

  val max_delay :
    model:Delay.Model.t -> tech:Circuit.Technology.t -> Routing.t -> float
  (** Maximum sink delay via {!sink_delays} — the objective of the
      greedy loops.
      @raise Nontree_error.Error as the underlying oracle does. *)
end

val objective :
  model:Delay.Model.t -> tech:Circuit.Technology.t -> Routing.t -> float
(** [objective ~model ~tech] is a fresh guarded max-delay objective
    running on the fault-tolerant {!Delay.Robust} path, through
    {!Cache} when it is enabled. *)
