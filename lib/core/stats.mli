(** Table statistics in the paper's reporting format.

    Every table reports, per net size, values normalised to a baseline
    topology: average delay and cost over *all* trials ("All Cases"),
    the percentage of trials where the method beat the baseline's delay
    ("Percent Winners"), and the averages restricted to those winning
    trials ("Winners Only"). *)

type sample = {
  delay_ratio : float;  (** method delay / baseline delay *)
  cost_ratio : float;  (** method cost / baseline cost *)
}

type row = {
  n : int;  (** number of trials aggregated *)
  all_delay : float;
  all_cost : float;
  pct_winners : float;  (** 0..100 *)
  win_delay : float option;  (** [None] when there are no winners (NA) *)
  win_cost : float option;
}

val winner : sample -> bool
(** A trial wins when its delay ratio is below 1 − 1e-9. *)

val summarize : sample list -> row
(** @raise Invalid_argument on an empty list. *)

val pp_row : Format.formatter -> row -> unit
(** Formats as [0.84  1.23   90   0.82  1.25] with NA for missing
    winners-only entries, matching the paper's columns. *)
