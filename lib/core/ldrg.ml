type step = {
  edge : int * int;
  objective_before : float;
  objective_after : float;
  cost_before : float;
  cost_after : float;
}

type trace = {
  initial : Routing.t;
  final : Routing.t;
  steps : step list;
  evaluations : int;
}

(* Candidate edges scored per greedy iteration, across every algorithm
   that funnels through [run_objective] (LDRG, SLDRG, budgeted LDRG,
   CSORG): the fan-out the parallel pool has to chew through. *)
let candidates_per_iteration =
  Obs.Histogram.make "ldrg.candidates"
    ~buckets:[| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0 |]

let run_objective ?(pool = Pool.sequential) ?(max_edges = max_int)
    ?(min_improvement = 1e-9) ?(candidates = Routing.candidate_edges)
    ?(scorer = fun _ -> None) ~objective initial =
  let evaluations = Atomic.make 0 in
  let eval r =
    Atomic.incr evaluations;
    objective r
  in
  let rec loop current current_obj steps added =
    if added >= max_edges then (current, steps)
    else begin
      (* Candidates of one iteration are scored independently (in
         parallel under [pool]); the fold below then selects the
         minimum keeping the *earliest* candidate on ties, so the
         winner — and hence the whole trace — is the one the original
         sequential fold picked, for any worker count. *)
      let cands = candidates current in
      if Obs.enabled () then
        Obs.Histogram.observe candidates_per_iteration
          (float_of_int (List.length cands));
      (* One round, one scorer: the incremental path factors [current]
         once here and each candidate below is a low-rank solve. [None]
         means this round runs on the plain objective. *)
      let edge_score = scorer current in
      let eval_candidate edge trial =
        match edge_score with
        | Some score ->
            Atomic.incr evaluations;
            score edge trial
        | None -> eval trial
      in
      let scored =
        Obs.span "ldrg.iteration" (fun () ->
            Pool.map pool
              (fun (u, v) ->
                let trial = Routing.add_edge current u v in
                ((u, v), trial, eval_candidate (u, v) trial))
              cands)
      in
      let best =
        List.fold_left
          (fun best ((_, _, obj) as cand) ->
            match best with
            | Some (_, _, obj') when obj' <= obj -> best
            | _ -> Some cand)
          None scored
      in
      match best with
      | Some (edge, trial, obj)
        when obj < current_obj *. (1.0 -. min_improvement) ->
          let step =
            { edge;
              objective_before = current_obj;
              objective_after = obj;
              cost_before = Routing.cost current;
              cost_after = Routing.cost trial }
          in
          loop trial obj (step :: steps) (added + 1)
      | _ -> (current, steps)
    end
  in
  let initial_obj = eval initial in
  let final, steps = loop initial initial_obj [] 0 in
  { initial; final; steps = List.rev steps;
    evaluations = Atomic.get evaluations }

let run ?pool ?max_edges ?candidates ~model ~tech initial =
  let objective = Oracle.objective ~model ~tech in
  run_objective ?pool ?max_edges ?candidates
    ~scorer:(Incremental.make_scorer ~model ~tech ~fallback:objective)
    ~objective initial

let run_budgeted ?pool ?max_edges ~max_cost_ratio ~model ~tech initial =
  if max_cost_ratio < 1.0 then
    invalid_arg "Ldrg.run_budgeted: max_cost_ratio < 1";
  let budget = max_cost_ratio *. Routing.cost initial in
  let candidates r =
    let slack = budget -. Routing.cost r in
    List.filter
      (fun (u, v) ->
        Geom.Point.manhattan (Routing.point r u) (Routing.point r v) <= slack)
      (Routing.candidate_edges r)
  in
  let objective = Oracle.objective ~model ~tech in
  run_objective ?pool ?max_edges ~candidates
    ~scorer:(Incremental.make_scorer ~model ~tech ~fallback:objective)
    ~objective initial

let routing_after trace k =
  let rec apply r steps k =
    match (steps, k) with
    | _, 0 | [], _ -> r
    | step :: rest, k ->
        let u, v = step.edge in
        apply (Routing.add_edge r u v) rest (k - 1)
  in
  apply trace.initial trace.steps k
