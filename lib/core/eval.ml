type t = { delay : float; cost : float }

let measure ~model ~tech r =
  { delay = Delay.Model.max_delay model ~tech r; cost = Routing.cost r }

let ratio x ~baseline =
  { delay = x.delay /. baseline.delay; cost = x.cost /. baseline.cost }

let pp ppf t =
  Format.fprintf ppf "delay %.4g ns, cost %.1f um" (t.delay *. 1e9) t.cost
