type t = { delay : float; cost : float }

let measure_result ?policy ~model ~tech r =
  match Delay.Robust.max_delay ?policy ~model ~tech r with
  | Ok delay -> Ok { delay; cost = Routing.cost r }
  | Error e -> Error e

let measure ~model ~tech r =
  { delay = Oracle.Cache.max_delay ~model ~tech r; cost = Routing.cost r }

let ratio x ~baseline =
  { delay = x.delay /. baseline.delay; cost = x.cost /. baseline.cost }

let pp ppf t =
  Format.fprintf ppf "delay %.4g ns, cost %.1f um" (t.delay *. 1e9) t.cost
