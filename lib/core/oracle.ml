let src = Logs.Src.create "nontree.oracle" ~doc:"Greedy-loop delay oracle"

module Log = (val Logs.src_log src : Logs.LOG)

let net_of_points points =
  match Geom.Net.of_list points with
  | net -> Ok net
  | exception Invalid_argument msg -> Error (Nontree_error.Invalid_net msg)

let guard objective =
  (* Atomic exchange, not a plain ref: with --jobs > 1 the candidate
     evaluations run on worker domains, and exactly one evaluation (the
     sequential baseline, in practice) must get first-call semantics. *)
  let first = Atomic.make true in
  fun r ->
    let initial = Atomic.exchange first false in
    match Nontree_error.protect (fun () -> objective r) with
    | Ok d -> d
    | Error e when initial -> Nontree_error.raise_error e
    | Error e ->
        Nontree_error.Counters.incr_dropped_evaluations ();
        Log.warn (fun f ->
            f "dropping candidate evaluation: %s" (Nontree_error.to_string e));
        Float.infinity

(* Memo layer over the robust oracle ------------------------------------ *)

module Cache = struct
  type stats = { hits : int; misses : int; entries : int }

  let enabled_flag = Atomic.make false

  (* Registry counters, so the manifest's counter section carries the
     cache traffic without extra plumbing; [stats] reads them back. *)
  let hits = Obs.Counter.make "oracle.cache.hits"
  let misses = Obs.Counter.make "oracle.cache.misses"
  let capacity = Atomic.make 200_000
  let lock = Mutex.create ()

  let table : (string, (int * float) list) Hashtbl.t = Hashtbl.create 4096

  let set_enabled b = Atomic.set enabled_flag b
  let enabled () = Atomic.get enabled_flag
  let set_capacity n = Atomic.set capacity (max 0 n)

  let reset () =
    Mutex.lock lock;
    Hashtbl.reset table;
    Mutex.unlock lock;
    Obs.Counter.set hits 0;
    Obs.Counter.set misses 0

  let stats () =
    Mutex.lock lock;
    let entries = Hashtbl.length table in
    Mutex.unlock lock;
    { hits = Obs.Counter.value hits;
      misses = Obs.Counter.value misses;
      entries }

  let summary () =
    let s = stats () in
    let total = s.hits + s.misses in
    (* An enabled cache that saw no traffic still reports — with an
       explicit "n/a" hit rate, never 0/0 = NaN. Only a cache that was
       never switched on stays silent. *)
    if total = 0 && not (Atomic.get enabled_flag) then None
    else
      Some
        (Printf.sprintf
           "oracle cache: %d hits, %d misses (%s hit rate), %d entries" s.hits
           s.misses
           (if total = 0 then "n/a"
            else
              Printf.sprintf "%.1f%%"
                (100.0 *. float_of_int s.hits /. float_of_int total))
           s.entries)

  (* The key is an explicit rendering of everything the robust oracle's
     result depends on: the model (with its full SPICE configuration),
     the technology constants, the vertex geometry, and the edge set
     with widths. Floats print as %h (exact hex), so two routings map
     to one key iff the oracle inputs are bit-identical; the rendering
     is then digested to keep per-entry memory small. Wgraph stores
     edges canonically (smaller endpoint first, lexicographic order),
     so structurally equal routings built along different edit paths
     produce the same key. *)
  let render_model buf model =
    match model with
    | Delay.Model.Elmore_tree -> Buffer.add_string buf "elmore"
    | Delay.Model.First_moment -> Buffer.add_string buf "moment1"
    | Delay.Model.Two_pole -> Buffer.add_string buf "two-pole"
    | Delay.Model.Spice { options; segmentation; include_inductance } ->
        Printf.bprintf buf "spice:%s:%d:%d:%s:%b"
          (match options.Spice.Engine.method_ with
           | Spice.Transient.Backward_euler -> "be"
           | Spice.Transient.Trapezoidal -> "tr")
          options.Spice.Engine.steps_per_chunk
          options.Spice.Engine.max_extensions
          (match segmentation with
           | Delay.Lumping.Fixed n -> Printf.sprintf "f%d" n
           | Delay.Lumping.Per_length { unit_length; max_segments } ->
               Printf.sprintf "p%h:%d" unit_length max_segments)
          include_inductance

  let render_tech buf (t : Circuit.Technology.t) =
    Printf.bprintf buf "|%h:%h:%h:%h:%h:%h|" t.driver_resistance
      t.wire_resistance t.wire_capacitance t.wire_inductance
      t.sink_capacitance t.layout_side

  let key ~model ~tech r =
    let buf = Buffer.create 512 in
    render_model buf model;
    render_tech buf tech;
    Printf.bprintf buf "%d/" (Routing.num_terminals r);
    Array.iter
      (fun (p : Geom.Point.t) -> Printf.bprintf buf "%h,%h;" p.x p.y)
      (Routing.points r);
    Buffer.add_char buf '/';
    List.iter
      (fun ((u, v), w) -> Printf.bprintf buf "%d-%d*%h;" u v w)
      (Routing.widths r);
    Digest.string (Buffer.contents buf)

  let find k =
    Mutex.lock lock;
    let v = Hashtbl.find_opt table k in
    Mutex.unlock lock;
    v

  let store k ds =
    Mutex.lock lock;
    if Hashtbl.length table < Atomic.get capacity then Hashtbl.replace table k ds;
    Mutex.unlock lock

  (* External producers (the incremental scorer) publish through the
     same key and counters the memoised oracle uses, so a routing
     scored incrementally is a later cache hit for the measurement
     replays, exactly as a robust-path evaluation would have been. *)
  let find_delays ~model ~tech r =
    if not (Atomic.get enabled_flag) then None
    else begin
      match find (key ~model ~tech r) with
      | Some ds ->
          Obs.Counter.incr hits;
          Some ds
      | None ->
          Obs.Counter.incr misses;
          None
    end

  let store_delays ~model ~tech r ds =
    if Atomic.get enabled_flag then store (key ~model ~tech r) ds

  let sink_delays ~model ~tech r =
    if not (Atomic.get enabled_flag) then
      Delay.Robust.sink_delays_exn ~model ~tech r
    else begin
      let k = key ~model ~tech r in
      match find k with
      | Some ds ->
          Obs.Counter.incr hits;
          ds
      | None ->
          Obs.Counter.incr misses;
          (* Computed outside the lock; two domains racing on the same
             key both compute the same value, and the second store is a
             no-op overwrite. Failed evaluations are never cached — a
             retry under fault injection may still succeed. *)
          let ds = Delay.Robust.sink_delays_exn ~model ~tech r in
          store k ds;
          ds
    end

  let max_delay ~model ~tech r =
    List.fold_left
      (fun acc (_, d) -> Float.max acc d)
      0.0
      (sink_delays ~model ~tech r)
end

let objective ~model ~tech = guard (fun r -> Cache.max_delay ~model ~tech r)
