let src = Logs.Src.create "nontree.oracle" ~doc:"Greedy-loop delay oracle"

module Log = (val Logs.src_log src : Logs.LOG)

let net_of_points points =
  match Geom.Net.of_list points with
  | net -> Ok net
  | exception Invalid_argument msg -> Error (Nontree_error.Invalid_net msg)

let guard objective =
  let first = ref true in
  fun r ->
    let initial = !first in
    first := false;
    match Nontree_error.protect (fun () -> objective r) with
    | Ok d -> d
    | Error e when initial -> Nontree_error.raise_error e
    | Error e ->
        Nontree_error.Counters.incr_dropped_evaluations ();
        Log.warn (fun f ->
            f "dropping candidate evaluation: %s" (Nontree_error.to_string e));
        Float.infinity

let objective ~model ~tech =
  guard (fun r -> Delay.Robust.max_delay_exn ~model ~tech r)
