(* Incremental candidate scoring for the greedy loops.

   A greedy round evaluates every absent edge (u,v) against the same
   base routing; re-stamping and re-factoring the full MNA system per
   candidate is O(n³) each. Adding one wire, though, is a handful of
   symmetric rank-1 terms on the base matrices, so this module factors
   the base once per round and scores each candidate through
   [Numeric.Lu.Update] (Sherman–Morrison–Woodbury) instead:

   - moment models: G gains one conductance term, the capacitance
     vector two half-cap entries — first (and second) moments are
     low-rank solves against the round's factorisation.
   - SPICE (RC): the horizon comes from the incremental first moments;
     the DC operating point and the settled state are Woodbury solves
     against the round's factored MNA conductance matrix (the added
     wire's π-segments enter as rank-1 terms, interior nodes as padded
     unknowns); only the transient's companion matrix — which depends
     on the candidate's own horizon-derived timestep — is factored
     fresh, once, by the shared threshold scan.

   Any numeric degeneracy, injected fault or never-settling probe
   abandons the incremental attempt and re-evaluates the candidate on
   the plain robust path (retry-with-refinement, model degradation),
   counted under oracle.incremental_fallbacks. Results are published to
   [Oracle.Cache], so measurement replays hit the cache exactly as they
   do without incremental scoring. Disabled by default in the library;
   the binaries enable it unless --no-incremental is given. *)

let src =
  Logs.Src.create "nontree.incremental" ~doc:"Incremental candidate scoring"

module Log = (val Logs.src_log src : Logs.LOG)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag
let hits = Obs.Counter.make "oracle.incremental_hits"
let fallbacks = Obs.Counter.make "oracle.incremental_fallbacks"

exception Fall_back of string

let fall_back why = raise (Fall_back why)
let all_finite a = Array.for_all Float.is_finite a

let max_sink_delay ds =
  List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 ds

(* Per-round moments context: base conductance factorisation plus the
   base capacitance vector. Shared read-only across worker domains;
   every candidate builds its own Update. *)
type moments_ctx = {
  m_lu : Numeric.Backend.t;
  m_cap : float array;
  m_n : int;
}

let prepare_moments ~tech r =
  match Numeric.Backend.try_factor (Delay.Moments.conductance_matrix ~tech r) with
  | Error _ -> None
  | Ok m_lu ->
      Some
        { m_lu;
          m_cap = Delay.Moments.node_capacitances ~tech r;
          m_n = Routing.num_vertices r }

(* Candidate wires always carry width 1.0 (Routing.add_edge) and
   Manhattan length. *)
let edge_length r (u, v) =
  Geom.Point.manhattan (Routing.point r u) (Routing.point r v)

let moment_update ctx ~tech r edge =
  let length = edge_length r edge in
  let u, v = edge in
  let cond =
    1.0 /. Circuit.Technology.wire_resistance_of tech ~length ~width:1.0
  in
  let cap = Circuit.Technology.wire_capacitance_of tech ~length ~width:1.0 in
  let w = Array.make ctx.m_n 0.0 in
  w.(u) <- 1.0;
  w.(v) <- w.(v) -. 1.0;
  let c = Array.copy ctx.m_cap in
  c.(u) <- c.(u) +. (cap /. 2.0);
  c.(v) <- c.(v) +. (cap /. 2.0);
  match Numeric.Backend.update ctx.m_lu [ (cond, w, w) ] with
  | None -> fall_back "degenerate moments update"
  | Some up ->
      let m1 = Numeric.Lu.Update.solve up c in
      if not (all_finite m1) then fall_back "non-finite first moments";
      (up, c, m1)

let first_moment_delays ctx ~tech r edge =
  let _, _, m1 = moment_update ctx ~tech r edge in
  List.map (fun s -> (s, m1.(s))) (Routing.sinks r)

let two_pole_delays ctx ~tech r edge =
  let up, c, m1 = moment_update ctx ~tech r edge in
  let rhs = Array.init (Array.length c) (fun i -> c.(i) *. m1.(i)) in
  let m2 = Numeric.Lu.Update.solve up rhs in
  if not (all_finite m2) then fall_back "non-finite second moments";
  let d = Delay.Moments.two_pole_fit ~m1 ~m2 in
  List.map (fun s -> (s, d.(s))) (Routing.sinks r)

(* Per-round SPICE context: the base lumped netlist built and its MNA
   conductance matrix factored once. *)
type spice_ctx = {
  cfg : Delay.Model.spice_config;
  sys : Spice.Mna.t;
  g_lu : Numeric.Backend.t;
  sink_unknowns : int array;  (* probe indices, in sink order *)
  vertex_unknown : int array;  (* routing vertex -> MNA unknown *)
  mom : moments_ctx;  (* for the horizon estimate *)
}

let prepare_spice ~tech cfg r =
  if cfg.Delay.Model.include_inductance then None
  else
    match prepare_moments ~tech r with
    | None -> None
    | Some mom -> (
        match
          let nl, sink_names =
            Delay.Lumping.circuit_of_routing
              ~segmentation:cfg.Delay.Model.segmentation
              ~include_inductance:false ~tech r
          in
          let sys = Spice.Mna.build nl in
          (nl, sink_names, sys)
        with
        | exception _ -> None
        | nl, sink_names, sys -> (
            match Spice.Mna.factor_g_result sys with
            | Error _ -> None
            | Ok g_lu ->
                let unknown_of name =
                  match Circuit.Netlist.find_node nl name with
                  | Some node -> sys.Spice.Mna.unknown_of_node.(node)
                  | None -> -1
                in
                let vertex_unknown =
                  Array.init (Routing.num_vertices r) (fun i ->
                      unknown_of (Delay.Lumping.vertex_node_name i))
                in
                let sink_unknowns =
                  Array.of_list (List.map unknown_of sink_names)
                in
                if
                  Array.exists (fun u -> u < 0) vertex_unknown
                  || Array.exists (fun u -> u < 0) sink_unknowns
                then None
                else Some { cfg; sys; g_lu; sink_unknowns; vertex_unknown; mom }
            ))

let spice_delays ctx ~tech r edge =
  (* Horizon from the trial's first moments — Model.spice_horizon
     computed incrementally. *)
  let _, _, m1 = moment_update ctx.mom ~tech r edge in
  let m1max =
    List.fold_left (fun acc s -> Float.max acc m1.(s)) 0.0 (Routing.sinks r)
  in
  let horizon = 4.0 *. m1max in
  if not (Float.is_finite horizon && horizon > 0.0) then
    fall_back "degenerate horizon";
  (* The engine consumes one fault draw per threshold query; keep that
     budget identical so --fault-rate schedules stay aligned. *)
  if Fault.draw ~stage:"spice" <> None then fall_back "injected fault";
  let u, v = edge in
  let n_seg, seg_r, seg_c =
    Delay.Lumping.pi_segments ~segmentation:ctx.cfg.Delay.Model.segmentation
      ~tech ~length:(edge_length r edge) ~width:1.0
  in
  let d = Spice.Mna.Delta.create ctx.sys in
  let chain =
    Array.init (n_seg + 1) (fun s ->
        if s = 0 then ctx.vertex_unknown.(u)
        else if s = n_seg then ctx.vertex_unknown.(v)
        else Spice.Mna.Delta.fresh_unknown d)
  in
  for s = 0 to n_seg - 1 do
    Spice.Mna.Delta.add_conductance d chain.(s) chain.(s + 1) (1.0 /. seg_r);
    Spice.Mna.Delta.add_capacitance d chain.(s) (-1) (seg_c /. 2.0);
    Spice.Mna.Delta.add_capacitance d chain.(s + 1) (-1) (seg_c /. 2.0)
  done;
  let pad = Spice.Mna.Delta.added_unknowns d in
  match Numeric.Backend.update ~pad ctx.g_lu (Spice.Mna.Delta.g_terms d) with
  | None -> fall_back "degenerate conductance update"
  | Some gup -> (
      let nt = Numeric.Lu.Update.size gup in
      let rhs_ext t =
        let b = ctx.sys.Spice.Mna.rhs t in
        let out = Array.make nt 0.0 in
        Array.blit b 0 out 0 (Array.length b);
        out
      in
      let x0 = Numeric.Lu.Update.solve gup (rhs_ext 0.0) in
      if not (all_finite x0) then fall_back "non-finite operating point";
      let xf =
        Numeric.Lu.Update.solve gup
          (rhs_ext (Spice.Engine.settled_time ~horizon))
      in
      if not (all_finite xf) then fall_back "non-finite settled state";
      (* Only the companion matrix is factored fresh: its timestep
         derives from this candidate's horizon, so it cannot be shared
         across candidates. *)
      let ext_sys = Spice.Mna.Delta.extend ctx.sys d in
      match
        Spice.Engine.threshold_scan_result
          ~options:ctx.cfg.Delay.Model.options ext_sys ~idx:ctx.sink_unknowns
          ~x0 ~xf ~horizon
      with
      | Error e -> fall_back (Nontree_error.to_string e)
      | Ok found ->
          List.mapi
            (fun i s ->
              match found.(i) with
              | Some t when Float.is_finite t -> (s, t)
              | Some _ -> fall_back "non-finite delay"
              | None -> fall_back "probe never settled")
            (Routing.sinks r))

let make_scorer ~model ~tech ~fallback r =
  if not (Atomic.get enabled_flag) then None
  else begin
    let wrap compute =
      Some
        (fun edge trial ->
          match Oracle.Cache.find_delays ~model ~tech trial with
          | Some ds -> max_sink_delay ds
          | None -> (
              match compute edge with
              | ds ->
                  Obs.Counter.incr hits;
                  Oracle.Cache.store_delays ~model ~tech trial ds;
                  max_sink_delay ds
              | exception Fall_back why ->
                  Obs.Counter.incr fallbacks;
                  Log.info (fun f ->
                      f "incremental scoring fell back (%s)" why);
                  fallback trial
              | exception Numeric.Lu.Singular _ ->
                  Obs.Counter.incr fallbacks;
                  fallback trial))
    in
    let moment_scorer compute_delays =
      match prepare_moments ~tech r with
      | None ->
          (* The base would not factor; the whole round takes the
             robust path. *)
          Obs.Counter.incr fallbacks;
          None
      | Some ctx ->
          wrap (fun edge ->
              (* Parity with Model.sink_delays_result's injection
                 point for the moment oracles. *)
              if Fault.draw ~stage:"moments" <> None then
                fall_back "injected fault"
              else compute_delays ctx ~tech r edge)
    in
    match model with
    | Delay.Model.First_moment -> moment_scorer first_moment_delays
    | Delay.Model.Two_pole -> moment_scorer two_pole_delays
    | Delay.Model.Spice cfg when not cfg.Delay.Model.include_inductance -> (
        match prepare_spice ~tech cfg r with
        | None ->
            Obs.Counter.incr fallbacks;
            None
        | Some ctx -> wrap (fun edge -> spice_delays ctx ~tech r edge))
    | Delay.Model.Elmore_tree | Delay.Model.Spice _ ->
        (* Elmore needs trees (candidates never are); RLC wires are not
           rank-1 on G alone. Unsupported, not a failure. *)
        None
  end
