(** Delay-preserving wirelength reclamation for non-tree routings.

    Once LDRG has added shortcut wires, some of the original tree edges
    carry little current: removing them can reclaim wirelength with no
    (or bounded) delay loss. This post-pass greedily removes the
    longest edge whose deletion keeps the routing connected and keeps
    the objective within [tolerance] of its current value, until no
    edge qualifies. The result may be a different tree, or stay a
    graph — whatever the delay landscape supports.

    This addresses the paper's main cost: LDRG's wirelength penalties
    (its Tables' Cost columns) are uncontrolled; prune gives some of
    that wire back for free. *)

type removal = {
  edge : int * int;
  objective_before : float;
  objective_after : float;
  cost_saved : float;  (** wirelength reclaimed by this removal *)
}

type trace = {
  initial : Routing.t;
  final : Routing.t;
  removals : removal list;
  evaluations : int;
}

val run :
  ?tolerance:float ->
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  trace
(** [run ~model ~tech r] removes edges greedily (longest candidate
    first) while the model objective stays within a relative
    [tolerance] (default 1e-3) of the objective before the pass.
    Edges whose removal would disconnect the routing are never
    candidates. The model must handle non-tree inputs. *)
