let source = 0

let worst_sink delays =
  List.fold_left
    (fun best (v, d) ->
      match best with Some (_, d') when d' >= d -> best | _ -> Some (v, d))
    None delays

let h1 ?(max_iterations = max_int) ~model ~tech initial =
  let evaluations = ref 0 in
  let sink_delays r =
    incr evaluations;
    Oracle.Cache.sink_delays ~model ~tech r
  in
  let max_of delays =
    List.fold_left (fun acc (_, d) -> Float.max acc d) 0.0 delays
  in
  let rec loop current current_delays steps iter =
    if iter >= max_iterations then (current, steps)
    else begin
      match worst_sink current_delays with
      | None -> (current, steps)
      | Some (w, _) ->
          if Graphs.Wgraph.mem_edge (Routing.graph current) source w then
            (current, steps)
          else begin
            let trial = Routing.add_edge current source w in
            match Nontree_error.protect (fun () -> sink_delays trial) with
            | Error _ ->
                (* A candidate that cannot be evaluated even after retry
                   and fallback is simply not taken. *)
                Nontree_error.Counters.incr_dropped_evaluations ();
                (current, steps)
            | Ok trial_delays ->
            let before = max_of current_delays in
            let after = max_of trial_delays in
            if after < before *. (1.0 -. 1e-9) then begin
              let step =
                { Ldrg.edge = (source, w);
                  objective_before = before;
                  objective_after = after;
                  cost_before = Routing.cost current;
                  cost_after = Routing.cost trial }
              in
              loop trial trial_delays (step :: steps) (iter + 1)
            end
            else (current, steps)
          end
    end
  in
  let initial_delays = sink_delays initial in
  let final, steps = loop initial initial_delays [] 0 in
  { Ldrg.initial;
    final;
    steps = List.rev steps;
    evaluations = !evaluations }

let add_source_edge r = function
  | None -> (r, None)
  | Some v ->
      if Graphs.Wgraph.mem_edge (Routing.graph r) source v then (r, None)
      else (Routing.add_edge r source v, Some (source, v))

let h2 ~tech r =
  let delays = Delay.Elmore.sink_delays ~tech r in
  add_source_edge r (Option.map fst (worst_sink delays))

let h3 ~tech r =
  let delays = Delay.Elmore.delays ~tech r in
  let rooted = Routing.rooted r in
  let best = ref None in
  List.iter
    (fun v ->
      if not (Graphs.Wgraph.mem_edge (Routing.graph r) source v) then begin
        let new_edge_len =
          Geom.Point.manhattan (Routing.point r source) (Routing.point r v)
        in
        let score =
          rooted.Graphs.Rooted.depth.(v) *. delays.(v) /. new_edge_len
        in
        match !best with
        | Some (_, s) when s >= score -> ()
        | _ -> best := Some (v, score)
      end)
    (Routing.sinks r);
  add_source_edge r (Option.map fst !best)
