type config = {
  seed : int;
  trials : int;
  sizes : int list;
  tech : Circuit.Technology.t;
  eval_model : Delay.Model.t;
  search_model : Delay.Model.t;
  jobs : int;
}

let default =
  { seed = 1994;
    trials = 50;
    sizes = [ 5; 10; 20; 30 ];
    tech = Circuit.Technology.table1;
    eval_model = Delay.Model.Spice Delay.Model.fast_spice;
    search_model = Delay.Model.Spice Delay.Model.fast_spice;
    jobs = 1 }

let accurate =
  { default with eval_model = Delay.Model.Spice Delay.Model.accurate_spice }

let nets config ~size =
  let side = config.tech.Circuit.Technology.layout_side in
  (* Offset the seed by the size so each size draws an independent,
     individually reproducible stream. *)
  Geom.Netgen.uniform_batch
    ~seed:(config.seed + (1_000_003 * size))
    ~region:(Geom.Rect.square side) ~pins:size ~trials:config.trials

let sample config ~baseline ~routing =
  let measure = Eval.measure ~model:config.eval_model ~tech:config.tech in
  let b = measure baseline in
  let r = Eval.ratio (measure routing) ~baseline:b in
  { Stats.delay_ratio = r.Eval.delay; cost_ratio = r.Eval.cost }

let per_size config ~size f =
  let samples = Array.to_list (Array.map f (nets config ~size)) in
  Stats.summarize samples

let per_size_multi config ~size f =
  let per_net = Array.to_list (Array.map f (nets config ~size)) in
  let depth =
    List.fold_left (fun acc l -> Int.max acc (List.length l)) 0 per_net
  in
  if depth = 0 then []
  else begin
    let padded =
      List.map
        (fun l ->
          match l with
          | [] -> invalid_arg "Experiment.per_size_multi: empty sample list"
          | _ ->
              let last = List.nth l (List.length l - 1) in
              Array.init depth (fun i ->
                  if i < List.length l then List.nth l i else last))
        per_net
    in
    List.init depth (fun i ->
        Stats.summarize (List.map (fun a -> a.(i)) padded))
  end
