type sample = { delay_ratio : float; cost_ratio : float }

type row = {
  n : int;
  all_delay : float;
  all_cost : float;
  pct_winners : float;
  win_delay : float option;
  win_cost : float option;
}

let winner s = s.delay_ratio < 1.0 -. 1e-9

let mean f samples =
  List.fold_left (fun acc s -> acc +. f s) 0.0 samples
  /. float_of_int (List.length samples)

let summarize samples =
  if samples = [] then invalid_arg "Stats.summarize: no samples";
  let n = List.length samples in
  let winners = List.filter winner samples in
  let pct = 100.0 *. float_of_int (List.length winners) /. float_of_int n in
  { n;
    all_delay = mean (fun s -> s.delay_ratio) samples;
    all_cost = mean (fun s -> s.cost_ratio) samples;
    pct_winners = pct;
    win_delay =
      (if winners = [] then None else Some (mean (fun s -> s.delay_ratio) winners));
    win_cost =
      (if winners = [] then None else Some (mean (fun s -> s.cost_ratio) winners))
  }

let pp_opt ppf = function
  | None -> Format.fprintf ppf "   NA"
  | Some x -> Format.fprintf ppf "%5.2f" x

let pp_row ppf r =
  Format.fprintf ppf "%5.2f %5.2f  %4.0f  %a %a" r.all_delay r.all_cost
    r.pct_winners pp_opt r.win_delay pp_opt r.win_cost
