let initial_tree net = Steiner.Iterated_1steiner.construct net

let run ?pool ?max_edges ~model ~tech net =
  Ldrg.run ?pool ?max_edges ~model ~tech (initial_tree net)
