(** Incremental (rank-1 Woodbury) candidate scoring for the greedy
    loops.

    A greedy round scores every absent edge against one base routing.
    Instead of rebuilding and re-factoring the moment / MNA systems per
    candidate, this module factors the base once per round and treats
    each candidate wire as a low-rank update ({!Numeric.Lu.Update},
    {!Spice.Mna.Delta}): first/second moments and the SPICE operating
    and settled states become O(n²) solves. Only the transient
    companion matrix — tied to the candidate's own horizon-derived
    timestep — is still factored fresh.

    Every incremental evaluation consults {!Oracle.Cache} first and
    publishes its result there, so measurement replays and cached runs
    behave identically with the scorer on or off. Degenerate updates,
    injected faults, and unsettled probes fall back to the ordinary
    robust objective, counted under [oracle.incremental_fallbacks]. *)

val set_enabled : bool -> unit
(** Off by default (library semantics unchanged); the binaries enable
    it unless [--no-incremental] is given. *)

val enabled : unit -> bool

val make_scorer :
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  fallback:(Routing.t -> float) ->
  Routing.t ->
  (int * int -> Routing.t -> float) option
(** [make_scorer ~model ~tech ~fallback base] prepares one greedy
    round: factor [base]'s systems once and return a per-candidate
    scorer [score (u, v) trial] giving the max sink delay of [trial] =
    [base] plus edge [(u, v)]. Returns [None] — meaning "use the plain
    objective for this round" — when scoring is disabled, the model is
    unsupported ([Elmore_tree], RLC SPICE), or the base system fails to
    factor. On any per-candidate failure the scorer evaluates
    [fallback trial] instead; pass the same guarded objective the round
    uses for non-incremental evaluations so failure semantics and
    counters match exactly. *)
