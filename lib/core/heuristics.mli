(** The paper's three fixed-rule heuristics (Section 3).

    Each starts from a spanning tree (the MST in the experiments) and
    connects the source n0 to one chosen pin:

    - H1: the pin with the longest simulated (SPICE) delay; the step
      may be iterated, each time keeping the new wire only when the
      simulated delay actually improves.
    - H2: the pin with the longest Elmore delay; not iterable (Elmore
      is tree-only) and applied unconditionally.
    - H3: the pin maximising (pathlength × Elmore) / length-of-new-edge,
      also unconditional and single-shot.

    H2 and H3 need no simulation at all; H1 needs one simulation per
    iteration to find the worst sink plus one to accept/reject — still
    far cheaper than LDRG's quadratic candidate sweep. *)

val h1 :
  ?max_iterations:int ->
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  Ldrg.trace
(** Iterated worst-sink connection. [model] is SPICE in the paper; any
    graph-capable oracle works (used by the oracle ablation). Stops
    when connecting the worst sink no longer improves, when the worst
    sink is already adjacent to the source, or after
    [max_iterations] (default: unlimited). *)

val h2 : tech:Circuit.Technology.t -> Routing.t -> Routing.t * (int * int) option
(** Adds source→(worst Elmore sink). Returns the edge added, or [None]
    when the worst sink is already adjacent to the source.

    @raise Invalid_argument on a non-tree input. *)

val h3 : tech:Circuit.Technology.t -> Routing.t -> Routing.t * (int * int) option
(** Adds source→argmax of (tree pathlength × Elmore delay) / (Manhattan
    distance to source), skipping sinks already adjacent to the source.

    @raise Invalid_argument on a non-tree input. *)
