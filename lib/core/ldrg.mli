(** The Low Delay Routing Graph (LDRG) algorithm — Figure 4.

    Starting from any spanning topology (MST in the paper's main
    experiments, a Steiner tree in SLDRG, an ERT in Table 7), greedily
    add the candidate edge that most reduces the objective, while any
    addition improves it:

    1.  G = initial routing
    2.  While ∃ e ∈ N×N with t(G + e) < t(G)
    3.    G = G + (best such e)
    4.  Output G

    The objective t is pluggable: the paper's t(G) (max sink delay
    under SPICE) via {!run}, or anything else (e.g. the CSORG weighted
    sum) via {!run_objective}. *)

type step = {
  edge : int * int;  (** the added edge *)
  objective_before : float;
  objective_after : float;
  cost_before : float;
  cost_after : float;  (** wirelength after the addition *)
}

type trace = {
  initial : Routing.t;
  final : Routing.t;
  steps : step list;  (** in application order; empty when no edge helped *)
  evaluations : int;  (** number of objective evaluations performed *)
}

val run_objective :
  ?pool:Pool.t ->
  ?max_edges:int ->
  ?min_improvement:float ->
  ?candidates:(Routing.t -> (int * int) list) ->
  ?scorer:(Routing.t -> (int * int -> Routing.t -> float) option) ->
  objective:(Routing.t -> float) ->
  Routing.t ->
  trace
(** Greedy loop under an arbitrary objective. [max_edges] caps the
    number of additions (default: unlimited); [min_improvement] is the
    relative improvement an addition must achieve to be taken (default
    1e-9, guarding against float noise); [candidates] defaults to
    {!Routing.candidate_edges} — every absent vertex pair.

    [scorer] is called once per iteration with the iteration's base
    routing; when it returns [Some score], every candidate of that
    iteration is evaluated as [score edge trial] instead of
    [objective trial] (the incremental Woodbury path of
    {!Incremental.make_scorer}). The default returns [None] — all
    evaluations go through [objective]. Either way each candidate
    counts one evaluation.

    [pool] (default {!Pool.sequential}) scores the candidate edges of
    each iteration concurrently. The selection is deterministic for any
    worker count: results come back in candidate order and ties keep
    the earliest candidate, so the trace equals the sequential one.
    The [objective] must therefore be safe to call from several domains
    at once — the {!Oracle} objectives are. *)

val run :
  ?pool:Pool.t ->
  ?max_edges:int ->
  ?candidates:(Routing.t -> (int * int) list) ->
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  trace
(** {!run_objective} with the paper's objective: the model's maximum
    source→sink delay. *)

val run_budgeted :
  ?pool:Pool.t ->
  ?max_edges:int ->
  max_cost_ratio:float ->
  model:Delay.Model.t ->
  tech:Circuit.Technology.t ->
  Routing.t ->
  trace
(** Wirelength-budgeted variant: like {!run}, but a candidate wire is
    only considered while the resulting total wirelength stays within
    [max_cost_ratio] × the initial routing's wirelength. The paper's
    LDRG spends wire freely (its cost columns are uncontrolled
    outputs); this is the production knob that caps the spend.

    @raise Invalid_argument when [max_cost_ratio < 1]. *)

val routing_after : trace -> int -> Routing.t
(** [routing_after trace k] replays only the first [k] additions onto
    the initial topology — how the per-iteration rows of Tables 2 and 4
    are produced. [k] larger than the step count returns the final
    routing. *)
