type removal = {
  edge : int * int;
  objective_before : float;
  objective_after : float;
  cost_saved : float;
}

type trace = {
  initial : Routing.t;
  final : Routing.t;
  removals : removal list;
  evaluations : int;
}

let run ?(tolerance = 1e-3) ~model ~tech initial =
  let evaluations = ref 0 in
  let robust = Oracle.objective ~model ~tech in
  let objective r =
    incr evaluations;
    robust r
  in
  let baseline = objective initial in
  let ceiling = baseline *. (1.0 +. tolerance) in
  let rec loop current current_obj removals =
    (* Longest removable edge first: reclaim the most wire per try. *)
    let candidates =
      Graphs.Wgraph.edges (Routing.graph current)
      |> List.sort (fun (a : Graphs.Wgraph.edge) b -> Float.compare b.w a.w)
    in
    let removal =
      List.find_map
        (fun (e : Graphs.Wgraph.edge) ->
          match Routing.remove_edge current e.u e.v with
          | exception Invalid_argument _ -> None (* would disconnect *)
          | trial ->
              let obj = objective trial in
              if obj <= ceiling then
                Some
                  ( trial,
                    { edge = (e.u, e.v);
                      objective_before = current_obj;
                      objective_after = obj;
                      cost_saved = e.w } )
              else None)
        candidates
    in
    match removal with
    | Some (trial, r) -> loop trial r.objective_after (r :: removals)
    | None -> (current, removals)
  in
  let final, removals = loop initial baseline [] in
  { initial; final; removals = List.rev removals; evaluations = !evaluations }
