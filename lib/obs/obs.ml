(* Domain-safe observability: a process-wide metrics registry (named
   atomic counters and fixed-bucket histograms), lightweight tracing
   spans with per-domain parent/child nesting, and a machine-readable
   run-manifest writer (schema nontree-obs-v1).

   Cost model. Counters are bare atomics — the exact cost of the ad-hoc
   [Atomic.t] tallies they replaced — so they stay unconditional and the
   pre-existing stderr summaries (robustness, cache hit rate) keep
   working with observability off. Spans and histograms are the *new*
   instrumentation this layer adds; both begin with a single
   [Atomic.get] of [enabled_flag] and do nothing else when disabled, so
   an instrumented hot path (the LDRG iteration loop, the robust
   oracle) runs at its previous speed unless --trace or --metrics-json
   turned observability on. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* JSON ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape_string s =
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

  (* Integral floats print as "x.0" so the parser reads them back as
     [Float], keeping to_string/of_string a round trip; %.17g preserves
     every bit of a finite double. Non-finite values have no JSON
     spelling and become null. *)
  let float_string f =
    if not (Float.is_finite f) then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f

  let to_string t =
    let buf = Buffer.create 1024 in
    let pad n = Buffer.add_string buf (String.make n ' ') in
    let rec go indent = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (string_of_bool b)
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f -> Buffer.add_string buf (float_string f)
      | String s -> Buffer.add_string buf (escape_string s)
      | List [] -> Buffer.add_string buf "[]"
      | List xs ->
          Buffer.add_string buf "[\n";
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_string buf ",\n";
              pad (indent + 2);
              go (indent + 2) x)
            xs;
          Buffer.add_char buf '\n';
          pad indent;
          Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj kvs ->
          Buffer.add_string buf "{\n";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_string buf ",\n";
              pad (indent + 2);
              Buffer.add_string buf (escape_string k);
              Buffer.add_string buf ": ";
              go (indent + 2) v)
            kvs;
          Buffer.add_char buf '\n';
          pad indent;
          Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  exception Parse_error of string * int

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (msg, !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let m = String.length lit in
      if !pos + m <= n && String.sub s !pos m = lit then begin
        pos := !pos + m;
        v
      end
      else fail ("expected " ^ lit)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' ->
              incr pos;
              Buffer.contents buf
          | '\\' ->
              incr pos;
              if !pos >= n then fail "truncated escape";
              (match s.[!pos] with
              | '"' -> Buffer.add_char buf '"'; incr pos
              | '\\' -> Buffer.add_char buf '\\'; incr pos
              | '/' -> Buffer.add_char buf '/'; incr pos
              | 'n' -> Buffer.add_char buf '\n'; incr pos
              | 't' -> Buffer.add_char buf '\t'; incr pos
              | 'r' -> Buffer.add_char buf '\r'; incr pos
              | 'b' -> Buffer.add_char buf '\b'; incr pos
              | 'f' -> Buffer.add_char buf '\012'; incr pos
              | 'u' ->
                  if !pos + 4 >= n then fail "truncated \\u escape";
                  let code =
                    match
                      int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4)
                    with
                    | Some c when Uchar.is_valid c -> c
                    | _ -> fail "bad \\u escape"
                  in
                  Buffer.add_utf_8_uchar buf (Uchar.of_int code);
                  pos := !pos + 5
              | _ -> fail "unknown escape");
              go ()
          | c ->
              Buffer.add_char buf c;
              incr pos;
              go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok)
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail ("bad number " ^ tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  items (v :: acc)
              | Some ']' ->
                  incr pos;
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            items []
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing content after value";
      v
    with
    | v -> Ok v
    | exception Parse_error (msg, p) ->
        Error (Printf.sprintf "%s at offset %d" msg p)

  let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
end

(* Counters --------------------------------------------------------------- *)

module Counter = struct
  type t = { name : string; value : int Atomic.t }

  let lock = Mutex.create ()
  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  (* Idempotent: two modules naming the same counter share one cell, so
     a migrated tally keeps its identity wherever it is bumped from. *)
  let make name =
    Mutex.lock lock;
    let c =
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { name; value = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c
    in
    Mutex.unlock lock;
    c

  let name c = c.name
  let incr c = Atomic.incr c.value
  let add c n = ignore (Atomic.fetch_and_add c.value n)
  let value c = Atomic.get c.value
  let set c n = Atomic.set c.value n

  let snapshot () =
    Mutex.lock lock;
    let all = Hashtbl.fold (fun _ c acc -> c :: acc) registry [] in
    Mutex.unlock lock;
    List.sort compare (List.map (fun c -> (c.name, value c)) all)
end

(* Histograms ------------------------------------------------------------- *)

module Histogram = struct
  type t = {
    name : string;
    bounds : float array;  (* strictly increasing inclusive upper bounds *)
    counts : int Atomic.t array;  (* length = bounds + 1 (overflow last) *)
    sum : float Atomic.t;
  }

  type view = {
    view_name : string;
    view_bounds : float array;
    view_counts : int array;
    count : int;
    total : float;
  }

  let lock = Mutex.create ()
  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name ~buckets =
    if Array.length buckets = 0 then
      invalid_arg "Obs.Histogram.make: no buckets";
    Array.iteri
      (fun i b ->
        if i > 0 && buckets.(i - 1) >= b then
          invalid_arg "Obs.Histogram.make: buckets must increase")
      buckets;
    Mutex.lock lock;
    let h =
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            { name;
              bounds = Array.copy buckets;
              counts =
                Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
              sum = Atomic.make 0.0 }
          in
          Hashtbl.add registry name h;
          h
    in
    Mutex.unlock lock;
    h

  let rec atomic_add_float a x =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

  let observe h v =
    if Atomic.get enabled_flag then begin
      let n = Array.length h.bounds in
      let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
      Atomic.incr h.counts.(bucket 0);
      atomic_add_float h.sum v
    end

  let view h =
    let counts = Array.map Atomic.get h.counts in
    { view_name = h.name;
      view_bounds = Array.copy h.bounds;
      view_counts = counts;
      count = Array.fold_left ( + ) 0 counts;
      total = Atomic.get h.sum }

  let reset h =
    Array.iter (fun c -> Atomic.set c 0) h.counts;
    Atomic.set h.sum 0.0

  let snapshot () =
    Mutex.lock lock;
    let all = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
    Mutex.unlock lock;
    List.sort compare (List.map (fun h -> (h.name, view h)) all)
end

(* Tracing spans ---------------------------------------------------------- *)

module Span = struct
  type t = {
    id : int;
    parent : int option;  (* enclosing span on the same domain *)
    name : string;
    domain : int;  (* Domain.self of the domain that ran the span *)
    start_s : float;  (* seconds since process start *)
    dur_s : float;
  }

  (* gettimeofday is the only wall clock the stdlib offers; spans store
     offsets from one process-wide origin, so the log is consistent and
     monotone for any realistic run even if the absolute clock steps. *)
  let t0 = Unix.gettimeofday ()

  let lock = Mutex.create ()
  let log : t list ref = ref []  (* newest first *)
  let next_id = Atomic.make 0

  (* Per-domain stack of open span ids: nesting is attributed within a
     domain; a span opened on a worker domain starts a fresh root there
     (cross-domain parentage cannot be observed without threading
     context through Pool, and per-domain roots are what the per-Domain
     breakdown wants anyway). *)
  let stack : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let record sp =
    Mutex.lock lock;
    log := sp :: !log;
    Mutex.unlock lock

  let reset () =
    Mutex.lock lock;
    log := [];
    Mutex.unlock lock

  let all () =
    Mutex.lock lock;
    let l = !log in
    Mutex.unlock lock;
    List.rev l

  let find name =
    Mutex.lock lock;
    let r = List.find_opt (fun sp -> sp.name = name) !log in
    Mutex.unlock lock;
    r
end

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let id = Atomic.fetch_and_add Span.next_id 1 in
    let stack = Domain.DLS.get Span.stack in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    stack := id :: !stack;
    let start = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        (* Pop even on exception so the failed span is still recorded
           (its duration covers work up to the raise). *)
        (match !stack with i :: rest when i = id -> stack := rest | _ -> ());
        Span.record
          { Span.id;
            parent;
            name;
            domain = (Domain.self () :> int);
            start_s = start -. Span.t0;
            dur_s = Unix.gettimeofday () -. start })
      f
  end

let timed h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> Histogram.observe h (Unix.gettimeofday () -. t0))
      f
  end

let span_summary () =
  let spans = Span.all () in
  if spans = [] then None
  else begin
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (sp : Span.t) ->
        match Hashtbl.find_opt tbl sp.Span.name with
        | Some (calls, total) ->
            Hashtbl.replace tbl sp.Span.name (calls + 1, total +. sp.Span.dur_s)
        | None ->
            Hashtbl.add tbl sp.Span.name (1, sp.Span.dur_s);
            order := sp.Span.name :: !order)
      spans;
    let buf = Buffer.create 256 in
    Buffer.add_string buf "trace spans (calls, total wall time):\n";
    List.iter
      (fun name ->
        let calls, total = Hashtbl.find tbl name in
        Printf.bprintf buf "  %-32s %7d  %10.3f s\n" name calls total)
      (List.rev !order);
    Buffer.contents buf |> Option.some
  end

(* Run manifests ---------------------------------------------------------- *)

module Manifest = struct
  let schema_version = "nontree-obs-v1"

  let git_describe () =
    match
      let ic =
        Unix.open_process_in "git describe --always --dirty 2>/dev/null"
      in
      let line = try input_line ic with End_of_file -> "" in
      (Unix.close_process_in ic, line)
    with
    | Unix.WEXITED 0, line when line <> "" -> line
    | _ | (exception _) -> "unknown"

  let json_of_span (sp : Span.t) =
    Json.Obj
      [ ("name", Json.String sp.Span.name);
        ("id", Json.Int sp.Span.id);
        ( "parent",
          match sp.Span.parent with
          | None -> Json.Null
          | Some p -> Json.Int p );
        ("domain", Json.Int sp.Span.domain);
        ("start_s", Json.Float sp.Span.start_s);
        ("dur_s", Json.Float sp.Span.dur_s) ]

  let json_of_histogram (v : Histogram.view) =
    Json.Obj
      [ ( "buckets",
          Json.List
            (List.map (fun b -> Json.Float b) (Array.to_list v.Histogram.view_bounds))
        );
        ( "counts",
          Json.List
            (List.map (fun c -> Json.Int c) (Array.to_list v.Histogram.view_counts))
        );
        ("count", Json.Int v.Histogram.count);
        ("sum", Json.Float v.Histogram.total) ]

  let to_json ?(argv = []) ?(meta = []) ?(extra = []) () =
    Json.Obj
      ([ ("schema", Json.String schema_version);
         ("git", Json.String (git_describe ()));
         ("argv", Json.List (List.map (fun a -> Json.String a) argv));
         ("meta", Json.Obj meta);
         ( "counters",
           Json.Obj
             (List.map (fun (n, v) -> (n, Json.Int v)) (Counter.snapshot ())) );
         ( "histograms",
           Json.Obj
             (List.map
                (fun (n, v) -> (n, json_of_histogram v))
                (Histogram.snapshot ())) );
         ("spans", Json.List (List.map json_of_span (Span.all ()))) ]
      @ extra)

  let write ~path ?argv ?meta ?extra () =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Json.to_string (to_json ?argv ?meta ?extra ())))
end
