(** Observability: metrics registry, tracing spans, run manifests.

    One process-wide, domain-safe subsystem behind every counter the
    harness reports: named atomic counters and fixed-bucket histograms
    (the metrics registry), lightweight wall-time tracing spans with
    per-domain parent/child nesting, and a writer that serialises the
    whole lot — plus caller-supplied run metadata — to a JSON manifest
    with schema [nontree-obs-v1].

    {b Cost model.} Counters are bare atomics, exactly what the ad-hoc
    tallies they replaced cost, and are always live (the robustness and
    cache summaries depend on them regardless of flags). Spans and
    histogram observations are gated on one [Atomic.get] of the global
    enabled flag and are no-ops when observability is off, so
    instrumented hot paths pay a single atomic load unless [--trace] or
    [--metrics-json] enabled recording. Nothing here ever writes to
    stdout: table output is byte-identical with observability on or
    off. *)

val set_enabled : bool -> unit
(** Turn span recording and histogram observation on or off (off at
    start-up). Counters tally regardless. *)

val enabled : unit -> bool
(** Current state of the flag — use to guard argument preparation that
    would itself cost something (e.g. a [List.length] feeding
    {!Histogram.observe}). *)

(** Minimal JSON values: enough to write and re-read manifests without
    any external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Pretty-printed with two-space indentation and a trailing newline.
      Finite floats round-trip exactly ([%.17g], integral values as
      ["x.0"]); non-finite floats print as [null]. *)

  val of_string : string -> (t, string) result
  (** Strict parser for the subset {!to_string} emits plus standard
      escapes (including [\uXXXX] for BMP scalars). *)

  val member : string -> t -> t option
  (** [member k (Obj kvs)] is the value bound to [k]; [None] on missing
      keys and non-objects. *)
end

(** Named monotonic counters. *)
module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up — [make] is idempotent) the counter named
      [name]. Registration takes a lock; do it at module init, not on
      the hot path. *)

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int

  val set : t -> int -> unit
  (** Reset support for tests and per-run zeroing. *)

  val snapshot : unit -> (string * int) list
  (** Every registered counter with its current value, sorted by name. *)
end

(** Fixed-bucket histograms. *)
module Histogram : sig
  type t

  type view = {
    view_name : string;
    view_bounds : float array;
    view_counts : int array;  (** one per bound, plus a final overflow *)
    count : int;
    total : float;
  }

  val make : string -> buckets:float array -> t
  (** [buckets] are strictly increasing inclusive upper bounds; a last
      implicit overflow bucket catches everything above. Idempotent per
      name (the first registration's buckets win).
      @raise Invalid_argument on empty or non-increasing buckets. *)

  val observe : t -> float -> unit
  (** Record one sample — a no-op unless {!enabled}. *)

  val view : t -> view
  val reset : t -> unit
  val snapshot : unit -> (string * view) list
end

(** Completed tracing spans. *)
module Span : sig
  type t = {
    id : int;
    parent : int option;
        (** the enclosing span {e on the same domain}, if any *)
    name : string;
    domain : int;  (** [Domain.self] of the domain that ran it *)
    start_s : float;  (** seconds since process start *)
    dur_s : float;
  }

  val all : unit -> t list
  (** Completed spans in completion order. *)

  val find : string -> t option
  (** Most recently completed span with that name. *)

  val reset : unit -> unit
end

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when {!enabled}, records a {!Span.t}
    with its wall time, the current domain, and the enclosing span on
    this domain as parent. Exceptions propagate; the interrupted span
    is still recorded. When disabled this is [f ()] after one atomic
    load. *)

val timed : Histogram.t -> (unit -> 'a) -> 'a
(** [timed h f] runs [f] and, when {!enabled}, observes its wall time
    in seconds into [h] (even when [f] raises). When disabled this is
    [f ()] after one atomic load. *)

val span_summary : unit -> string option
(** Multi-line per-name aggregate (call count, total wall seconds) in
    first-seen order, or [None] when no spans were recorded — what
    [--trace] prints to stderr. *)

(** Serialising a run to a [nontree-obs-v1] JSON manifest. *)
module Manifest : sig
  val schema_version : string
  (** ["nontree-obs-v1"]. *)

  val git_describe : unit -> string
  (** [git describe --always --dirty] of the working directory, or
      ["unknown"] outside a repository. *)

  val to_json :
    ?argv:string list ->
    ?meta:(string * Json.t) list ->
    ?extra:(string * Json.t) list ->
    unit ->
    Json.t
  (** The manifest object: [schema], [git], [argv], [meta] (run
      parameters the caller supplies: seed, flags, technology), the
      registry ([counters], [histograms]), [spans], and any [extra]
      top-level sections (e.g. cache statistics). *)

  val write :
    path:string ->
    ?argv:string list ->
    ?meta:(string * Json.t) list ->
    ?extra:(string * Json.t) list ->
    unit ->
    unit
  (** {!to_json} pretty-printed to [path]. *)
end
