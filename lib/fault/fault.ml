type kind = Singular_stamp | Nan_value | Never_settles

type mode =
  | Off
  | Probabilistic of {
      rng : Rng.t;
      p_singular : float;
      p_nan : float;
      p_stall : float;
    }
  | Scripted of kind option list ref

(* The schedule state (RNG position, scripted queue) is shared by every
   domain of the Pool evaluation layer; the mutex keeps draws atomic so
   a parallel run consumes the schedule without losing or duplicating
   entries. Mode changes happen between runs, on the main domain. *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let mode = ref Off

let disable () = with_lock (fun () -> mode := Off)

let check_p name p =
  if p < 0.0 || p > 1.0 || not (Float.is_finite p) then
    invalid_arg ("Fault.enable: " ^ name ^ " must be in [0, 1]")

let enable ?(p_singular = 0.0) ?(p_nan = 0.0) ?(p_stall = 0.0) ~seed () =
  check_p "p_singular" p_singular;
  check_p "p_nan" p_nan;
  check_p "p_stall" p_stall;
  if p_singular +. p_nan +. p_stall > 1.0 then
    invalid_arg "Fault.enable: probabilities sum past 1";
  with_lock (fun () ->
      mode := Probabilistic { rng = Rng.create seed; p_singular; p_nan; p_stall })

let enable_uniform ~rate ~seed =
  let p = rate /. 3.0 in
  enable ~p_singular:p ~p_nan:p ~p_stall:p ~seed ()

let script kinds = with_lock (fun () -> mode := Scripted (ref kinds))

let active () = with_lock (fun () -> !mode <> Off)

let record = function
  | Some _ as k ->
      Nontree_error.Counters.incr_faults_injected ();
      k
  | None -> None

let draw ~stage:_ =
  (* Unsynchronised fast path: [mode] is only written between runs, so
     observing [Off] without the lock is safe and keeps the hot path
     lock-free when injection is disabled. *)
  match !mode with
  | Off -> None
  | Probabilistic _ | Scripted _ ->
      record
        (with_lock (fun () ->
             match !mode with
             | Off -> None
             | Probabilistic { rng; p_singular; p_nan; p_stall } ->
                 let u = Rng.float rng 1.0 in
                 if u < p_singular then Some Singular_stamp
                 else if u < p_singular +. p_nan then Some Nan_value
                 else if u < p_singular +. p_nan +. p_stall then
                   Some Never_settles
                 else None
             | Scripted queue -> (
                 match !queue with
                 | [] -> None
                 | k :: rest ->
                     queue := rest;
                     k)))
