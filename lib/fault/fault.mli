(** Fault injection for the delay-oracle stack.

    The oracle layers (SPICE engine, moment solver) consult {!draw} at
    the start of every evaluation; when injection is enabled the draw
    occasionally tells them to fail as if a singular MNA stamp, a NaN
    waveform, or a never-settling probe had occurred. The robustness
    layer ({!Delay.Robust}) must then absorb the failure via
    retry-with-refinement and model degradation — which is exactly what
    the fault-injection test suite asserts.

    Injection is process-global, off by default, and — in probabilistic
    mode — keyed by the repository's splitmix64 RNG, so a given
    [(seed, rate)] pair reproduces the same fault schedule every run.
    The schedule state is mutex-protected: concurrent draws from
    worker domains (the [--jobs] evaluation layer) consume it without
    losing or duplicating entries, though the *assignment* of schedule
    entries to evaluations then depends on domain interleaving. *)

type kind =
  | Singular_stamp  (** behave as if LU factorisation found no pivot *)
  | Nan_value  (** behave as if a NaN escaped the transient waveform *)
  | Never_settles  (** behave as if a probe never crossed threshold *)

val disable : unit -> unit
(** Turn injection off (the default). *)

val enable :
  ?p_singular:float -> ?p_nan:float -> ?p_stall:float -> seed:int -> unit ->
  unit
(** Probabilistic mode: each {!draw} independently injects
    [Singular_stamp] with probability [p_singular], [Nan_value] with
    [p_nan], [Never_settles] with [p_stall] (all default 0). *)

val enable_uniform : rate:float -> seed:int -> unit
(** [enable_uniform ~rate ~seed] splits [rate] evenly over the three
    kinds — the [--fault-rate] switch of [bin/tables]. *)

val script : kind option list -> unit
(** Deterministic mode: successive {!draw} calls consume the list
    ([None] = no fault); once exhausted, no further faults fire. Used
    by tests to force exact failure sequences, e.g. "SPICE fails three
    times, then the first-moment fallback fails once". *)

val active : unit -> bool

val draw : stage:string -> kind option
(** Consulted by the oracle layers; [stage] names the caller ("spice",
    "moments"). Every injected fault bumps
    {!Nontree_error.Counters.incr_faults_injected}. *)
