type t = {
  mutable names : string array;  (* node id -> name; grows *)
  by_name : (string, int) Hashtbl.t;
  mutable elements : Element.t list;  (* reversed insertion order *)
  element_names : (string, unit) Hashtbl.t;
  mutable num_nodes : int;
  mutable fresh_counter : int;
}

let ground = 0

let create () =
  let t =
    { names = Array.make 16 "";
      by_name = Hashtbl.create 64;
      elements = [];
      element_names = Hashtbl.create 64;
      num_nodes = 1;
      fresh_counter = 0 }
  in
  t.names.(0) <- "0";
  Hashtbl.replace t.by_name "0" 0;
  t

let grow t =
  if t.num_nodes >= Array.length t.names then begin
    let bigger = Array.make (2 * Array.length t.names) "" in
    Array.blit t.names 0 bigger 0 t.num_nodes;
    t.names <- bigger
  end

let node t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      grow t;
      let id = t.num_nodes in
      t.names.(id) <- name;
      Hashtbl.replace t.by_name name id;
      t.num_nodes <- id + 1;
      id

let fresh_node t prefix =
  let rec try_name () =
    t.fresh_counter <- t.fresh_counter + 1;
    let candidate = Printf.sprintf "%s_%d" prefix t.fresh_counter in
    if Hashtbl.mem t.by_name candidate then try_name () else candidate
  in
  node t (try_name ())

let node_name t id =
  if id < 0 || id >= t.num_nodes then
    invalid_arg "Netlist.node_name: unknown node";
  t.names.(id)

let find_node t name = Hashtbl.find_opt t.by_name name

let num_nodes t = t.num_nodes

let add t e =
  (match Element.validate e with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Netlist.add: " ^ msg));
  let nm = Element.name e in
  if Hashtbl.mem t.element_names nm then
    invalid_arg ("Netlist.add: duplicate element name " ^ nm);
  let pos, neg = Element.nodes e in
  if pos < 0 || pos >= t.num_nodes || neg < 0 || neg >= t.num_nodes then
    invalid_arg "Netlist.add: element references unknown node";
  Hashtbl.replace t.element_names nm ();
  t.elements <- e :: t.elements

let auto_name t prefix = function
  | Some name -> name
  | None ->
      let rec unique i =
        let candidate = Printf.sprintf "%s%d" prefix i in
        if Hashtbl.mem t.element_names candidate then unique (i + 1)
        else candidate
      in
      unique (List.length t.elements + 1)

let resistor t ?name pos neg ohms =
  add t (Element.Resistor { name = auto_name t "R" name; pos; neg; ohms })

let capacitor t ?name pos neg farads =
  add t (Element.Capacitor { name = auto_name t "C" name; pos; neg; farads })

let inductor t ?name pos neg henries =
  add t (Element.Inductor { name = auto_name t "L" name; pos; neg; henries })

let vsource t ?name pos neg wave =
  add t (Element.Vsource { name = auto_name t "V" name; pos; neg; wave })

let isource t ?name pos neg wave =
  add t (Element.Isource { name = auto_name t "I" name; pos; neg; wave })

let elements t = List.rev t.elements

let stats t =
  let r = ref 0 and c = ref 0 and l = ref 0 and v = ref 0 and i = ref 0 in
  List.iter
    (function
      | Element.Resistor _ -> incr r
      | Element.Capacitor _ -> incr c
      | Element.Inductor _ -> incr l
      | Element.Vsource _ -> incr v
      | Element.Isource _ -> incr i)
    t.elements;
  Printf.sprintf "%d nodes, %dR %dC %dL %dV %dI" t.num_nodes !r !c !l !v !i
