(** Interconnect technology parameters.

    [table1] reproduces the paper's Table 1 exactly: "Parameter values
    for the CMOS interconnect technology used in our SPICE model",
    representative of a 0.8 µm CMOS process. All lengths in this
    repository are micrometres, so the per-unit-length values are per
    µm and SI elsewhere (Ω, F, H, s, V). *)

type t = {
  driver_resistance : float;  (** Ω — output resistance driving the net *)
  wire_resistance : float;  (** Ω/µm *)
  wire_capacitance : float;  (** F/µm *)
  wire_inductance : float;  (** H/µm *)
  sink_capacitance : float;  (** F — loading capacitance at every pin *)
  layout_side : float;  (** µm — side of the square layout region *)
}

val table1 : t
(** 100 Ω driver, 0.03 Ω/µm, 0.352 fF/µm, 492 fH/µm, 15.3 fF sink
    loads, 10 mm × 10 mm layout area. *)

val scaled : t -> resistance:float -> capacitance:float -> t
(** [scaled t ~resistance ~capacitance] multiplies the per-unit wire
    resistance and capacitance — used by sensitivity ablations. *)

val wire_resistance_of : t -> length:float -> width:float -> float
(** Total resistance of a wire of [length] µm and relative [width]
    (wider wires have proportionally lower resistance). *)

val wire_capacitance_of : t -> length:float -> width:float -> float
(** Total capacitance: area term scales with width. *)

val wire_inductance_of : t -> length:float -> float

val region : t -> float * float
(** The layout region as (side, side) in µm. *)

val pp : Format.formatter -> t -> unit
(** Prints the Table 1 rows. *)
