(** SPICE deck (circuit file) input/output.

    The dialect is classic SPICE2: a title line, one element per card,
    [*] comments, [+] continuations, engineering suffixes
    (f p n u m k meg g t), and a final [.end]. Two waveform spellings
    are local extensions so that every {!Waveform.t} round-trips
    exactly: [STEP(t0 v0 v1)] and [RAMP(t0 t1 v0 v1)]; standard
    [DC], [PULSE(...)] and [PWL(...)] are also read and written. *)

val number_to_string : float -> string
(** Engineering-notation rendering, e.g. [1.53e-14] as ["15.3f"]. *)

val parse_number : string -> (float, string) result
(** Parses ["4.7k"], ["15.3f"], ["3meg"], ["1e-9"], ... *)

val to_string :
  ?title:string -> ?directive_cards:string list -> Netlist.t -> string
(** Renders a netlist as a deck; [directive_cards] (e.g. from
    {!tran_card} and {!probe_card}) are written verbatim before
    [.end]. *)

val tran_card : step:float -> stop:float -> string
(** A [.tran tstep tstop] card. *)

val probe_card : string list -> string
(** A [.probe v(n1) v(n2) ...] card. *)

val write_file :
  ?title:string -> ?directive_cards:string list -> string -> Netlist.t -> unit

val of_string : string -> (Netlist.t, string) result
(** Parses a deck; on failure the error names the offending line.
    Directives ([.tran], [.ac], ...) are accepted and ignored; use
    {!of_string_full} to retrieve them. *)

val read_file : string -> (Netlist.t, string) result

(** {1 Analysis directives} *)

type analysis =
  | Tran of { step : float; stop : float }  (** [.tran tstep tstop] *)
  | Ac of { points_per_decade : int; f_start : float; f_stop : float }
      (** [.ac dec N fstart fstop] (only the DEC sweep is supported) *)

type directives = {
  analyses : analysis list;  (** in deck order *)
  probes : string list;
      (** node names from [.probe]/[.print] cards; [v(node)] wrappers
          are unwrapped *)
}

val of_string_full : string -> (Netlist.t * directives, string) result
(** Like {!of_string} but also returns the recognised analysis and
    probe directives. A malformed recognised directive (e.g. [.tran]
    with a bad number) is an error; unrecognised dot-cards are still
    ignored. *)

val read_file_full : string -> (Netlist.t * directives, string) result
