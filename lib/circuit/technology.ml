type t = {
  driver_resistance : float;
  wire_resistance : float;
  wire_capacitance : float;
  wire_inductance : float;
  sink_capacitance : float;
  layout_side : float;
}

let table1 =
  { driver_resistance = 100.0;
    wire_resistance = 0.03;
    wire_capacitance = 0.352e-15;
    wire_inductance = 492e-18;
    sink_capacitance = 15.3e-15;
    (* 10^2 mm^2 layout area = 10 mm x 10 mm = 10^4 µm per side. *)
    layout_side = 10_000.0 }

let scaled t ~resistance ~capacitance =
  { t with
    wire_resistance = t.wire_resistance *. resistance;
    wire_capacitance = t.wire_capacitance *. capacitance }

let wire_resistance_of t ~length ~width = t.wire_resistance *. length /. width

let wire_capacitance_of t ~length ~width = t.wire_capacitance *. length *. width

let wire_inductance_of t ~length = t.wire_inductance *. length

let region t = (t.layout_side, t.layout_side)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>driver resistance        %g Ohm@,\
     wire resistance          %g Ohm/um@,\
     wire capacitance         %g fF/um@,\
     wire inductance          %g fH/um@,\
     sink loading capacitance %g fF@,\
     layout area              %g mm^2@]"
    t.driver_resistance t.wire_resistance
    (t.wire_capacitance /. 1e-15)
    (t.wire_inductance /. 1e-18)
    (t.sink_capacitance /. 1e-15)
    (t.layout_side *. t.layout_side /. 1e6)
