type t =
  | Dc of float
  | Step of { t0 : float; v0 : float; v1 : float }
  | Ramp of { t0 : float; t1 : float; v0 : float; v1 : float }
  | Pulse of {
      v0 : float;
      v1 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Pwl of (float * float) list

let lerp v0 v1 f = v0 +. (f *. (v1 -. v0))

let pwl_value corners t =
  let rec walk prev = function
    | [] ->
        let _, v = prev in
        v
    | ((t1, v1) as c) :: rest ->
        let t0, v0 = prev in
        if t <= t1 then
          if t1 = t0 then v1 else lerp v0 v1 ((t -. t0) /. (t1 -. t0))
        else walk c rest
  in
  match corners with
  | [] -> 0.0
  | (t0, v0) :: rest -> if t <= t0 then v0 else walk (t0, v0) rest

let value w t =
  match w with
  | Dc v -> v
  | Step { t0; v0; v1 } -> if t <= t0 then v0 else v1
  | Ramp { t0; t1; v0; v1 } ->
      if t <= t0 then v0
      else if t >= t1 then v1
      else lerp v0 v1 ((t -. t0) /. (t1 -. t0))
  | Pulse { v0; v1; delay; rise; fall; width; period } ->
      if t < delay then v0
      else begin
        let tau = mod_float (t -. delay) period in
        if tau < rise then
          if rise = 0.0 then v1 else lerp v0 v1 (tau /. rise)
        else if tau < rise +. width then v1
        else if tau < rise +. width +. fall then
          if fall = 0.0 then v0 else lerp v1 v0 ((tau -. rise -. width) /. fall)
        else v0
      end
  | Pwl corners -> pwl_value corners t

let validate w =
  match w with
  | Dc _ | Step _ -> Ok ()
  | Ramp { t0; t1; _ } ->
      if t1 >= t0 then Ok () else Error "ramp: t1 < t0"
  | Pulse { rise; fall; width; period; _ } ->
      if rise < 0.0 || fall < 0.0 || width < 0.0 then
        Error "pulse: negative timing parameter"
      else if period <= 0.0 then Error "pulse: period must be positive"
      else if rise +. fall +. width > period then
        Error "pulse: rise+width+fall exceeds period"
      else Ok ()
  | Pwl corners ->
      let rec increasing = function
        | (t0, _) :: ((t1, _) :: _ as rest) ->
            if t1 > t0 then increasing rest else Error "pwl: times not increasing"
        | _ -> Ok ()
      in
      if corners = [] then Error "pwl: empty corner list" else increasing corners

let pp ppf = function
  | Dc v -> Format.fprintf ppf "DC %g" v
  | Step { t0; v0; v1 } -> Format.fprintf ppf "STEP(%g->%g @%g)" v0 v1 t0
  | Ramp { t0; t1; v0; v1 } ->
      Format.fprintf ppf "RAMP(%g->%g over [%g,%g])" v0 v1 t0 t1
  | Pulse { v0; v1; delay; rise; fall; width; period } ->
      Format.fprintf ppf "PULSE(%g %g %g %g %g %g %g)" v0 v1 delay rise fall
        width period
  | Pwl corners ->
      Format.fprintf ppf "PWL(";
      List.iter (fun (t, v) -> Format.fprintf ppf "%g %g " t v) corners;
      Format.fprintf ppf ")"
