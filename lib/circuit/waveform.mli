(** Independent-source waveforms.

    Only the shapes needed for interconnect delay simulation are
    provided; all are piecewise linear, which keeps the transient
    engine's right-hand side exact at every timestep. *)

type t =
  | Dc of float  (** constant value *)
  | Step of { t0 : float; v0 : float; v1 : float }
      (** ideal step from [v0] to [v1] at time [t0]; the value at
          exactly [t0] is still [v0], so a DC solve at the step time
          yields the pre-step operating point *)
  | Ramp of { t0 : float; t1 : float; v0 : float; v1 : float }
      (** linear transition between [t0] and [t1] *)
  | Pulse of {
      v0 : float;
      v1 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }  (** SPICE PULSE source *)
  | Pwl of (float * float) list
      (** piecewise-linear (time, value) corner list; times must be
          strictly increasing *)

val value : t -> float -> float
(** [value w t] evaluates the waveform at time [t] (clamped to the end
    values outside the defined range; PULSE repeats with its period). *)

val validate : t -> (unit, string) result
(** Checks structural invariants (increasing PWL times, positive pulse
    period, non-negative ramp duration). *)

val pp : Format.formatter -> t -> unit
