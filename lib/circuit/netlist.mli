(** Circuit netlists: a set of named nodes and linear elements.

    A netlist is built imperatively (the natural style when lowering a
    routing graph into hundreds of wire segments) and then treated as
    immutable by the simulator. *)

type t

val create : unit -> t

val ground : Element.node
(** Node 0. *)

val node : t -> string -> Element.node
(** [node nl name] returns the node with this name, creating it on
    first use. The name ["0"] maps to ground. *)

val fresh_node : t -> string -> Element.node
(** [fresh_node nl prefix] creates a new node with a unique generated
    name starting with [prefix]. *)

val node_name : t -> Element.node -> string
(** @raise Invalid_argument for an unknown node id. *)

val find_node : t -> string -> Element.node option

val num_nodes : t -> int
(** Number of nodes including ground. *)

val add : t -> Element.t -> unit
(** @raise Invalid_argument when the element fails
    {!Element.validate}, reuses an existing element name, or mentions
    an unknown node id. *)

val resistor : t -> ?name:string -> Element.node -> Element.node -> float -> unit
val capacitor : t -> ?name:string -> Element.node -> Element.node -> float -> unit
val inductor : t -> ?name:string -> Element.node -> Element.node -> float -> unit

val vsource :
  t -> ?name:string -> Element.node -> Element.node -> Waveform.t -> unit

val isource :
  t -> ?name:string -> Element.node -> Element.node -> Waveform.t -> unit

val elements : t -> Element.t list
(** In insertion order. *)

val stats : t -> string
(** Human-readable one-line summary: node and element counts. *)
