type node = int

type t =
  | Resistor of { name : string; pos : node; neg : node; ohms : float }
  | Capacitor of { name : string; pos : node; neg : node; farads : float }
  | Inductor of { name : string; pos : node; neg : node; henries : float }
  | Vsource of { name : string; pos : node; neg : node; wave : Waveform.t }
  | Isource of { name : string; pos : node; neg : node; wave : Waveform.t }

let name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ } -> name

let nodes = function
  | Resistor { pos; neg; _ }
  | Capacitor { pos; neg; _ }
  | Inductor { pos; neg; _ }
  | Vsource { pos; neg; _ }
  | Isource { pos; neg; _ } -> (pos, neg)

let validate = function
  | Resistor { ohms; pos; neg; _ } ->
      if ohms <= 0.0 then Error "resistor: non-positive resistance"
      else if pos = neg then Error "resistor: shorted terminals"
      else Ok ()
  | Capacitor { farads; pos; neg; _ } ->
      if farads <= 0.0 then Error "capacitor: non-positive capacitance"
      else if pos = neg then Error "capacitor: shorted terminals"
      else Ok ()
  | Inductor { henries; pos; neg; _ } ->
      if henries <= 0.0 then Error "inductor: non-positive inductance"
      else if pos = neg then Error "inductor: shorted terminals"
      else Ok ()
  | Vsource { wave; pos; neg; _ } ->
      if pos = neg then Error "vsource: shorted terminals"
      else Waveform.validate wave
  | Isource { wave; _ } -> Waveform.validate wave

let pp ppf e =
  match e with
  | Resistor { name; pos; neg; ohms } ->
      Format.fprintf ppf "%s %d %d %g" name pos neg ohms
  | Capacitor { name; pos; neg; farads } ->
      Format.fprintf ppf "%s %d %d %g" name pos neg farads
  | Inductor { name; pos; neg; henries } ->
      Format.fprintf ppf "%s %d %d %g" name pos neg henries
  | Vsource { name; pos; neg; wave } ->
      Format.fprintf ppf "%s %d %d %a" name pos neg Waveform.pp wave
  | Isource { name; pos; neg; wave } ->
      Format.fprintf ppf "%s %d %d %a" name pos neg Waveform.pp wave
