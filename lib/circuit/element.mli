(** Linear circuit elements.

    Nodes are small integers; node 0 is ground. The interconnect
    circuits of the paper need exactly these five element kinds:
    resistors and capacitors for the wire model and loads, inductors
    for the 492 fH/µm wire inductance, and independent sources for the
    driver. *)

type node = int

type t =
  | Resistor of { name : string; pos : node; neg : node; ohms : float }
  | Capacitor of { name : string; pos : node; neg : node; farads : float }
  | Inductor of { name : string; pos : node; neg : node; henries : float }
  | Vsource of { name : string; pos : node; neg : node; wave : Waveform.t }
  | Isource of { name : string; pos : node; neg : node; wave : Waveform.t }

val name : t -> string
val nodes : t -> node * node

val validate : t -> (unit, string) result
(** Element-level sanity: positive R/C/L values, valid waveform,
    distinct terminals for R/L/V (a shorted source or zero-ohm loop is
    a modelling error; a capacitor across identical nodes is also
    rejected). *)

val pp : Format.formatter -> t -> unit
