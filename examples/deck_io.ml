(* Deck I/O and the raw simulator API.

   Lower a routing to a SPICE deck, write it, read it back, simulate,
   and measure — everything an external SPICE flow would do, but
   self-contained.

     dune exec examples/deck_io.exe *)

let () =
  let tech = Circuit.Technology.table1 in
  let rng = Rng.create 3 in
  let net =
    Geom.Netgen.uniform rng
      ~region:(Geom.Rect.square tech.Circuit.Technology.layout_side)
      ~pins:6
  in
  let routing = Routing.mst_of_net net in

  (* Lower to a lumped RC circuit and write it as a deck. *)
  let nl, sinks = Delay.Lumping.circuit_of_routing ~tech routing in
  let deck = Circuit.Deck.to_string ~title:"6-pin MST, Table 1 technology" nl in
  let path = "deck_io_example.cir" in
  Circuit.Deck.write_file ~title:"6-pin MST, Table 1 technology" path nl;
  Printf.printf "wrote %s (%s)\n" path (Circuit.Netlist.stats nl);
  print_string (String.concat "\n" (List.filteri (fun i _ -> i < 8)
    (String.split_on_char '\n' deck)));
  print_endline "\n  ...";

  (* Read it back and verify the round trip is exact. *)
  (match Circuit.Deck.read_file path with
  | Error e -> failwith e
  | Ok nl' ->
      assert (Circuit.Deck.to_string ~title:"t" nl'
              = Circuit.Deck.to_string ~title:"t" nl);
      print_endline "deck round-trip: exact");

  (* Simulate and measure. *)
  let horizon = Delay.Model.spice_horizon ~tech routing in
  let delays = Spice.Engine.threshold_delays nl ~probes:sinks ~horizon in
  List.iter
    (fun (probe, d) ->
      match d with
      | Some t -> Printf.printf "  %-4s 50%% delay %.3f ns\n" probe (t *. 1e9)
      | None -> Printf.printf "  %-4s did not settle\n" probe)
    delays;

  (* Waveform of the slowest sink, as CSV and an ASCII plot. *)
  let slowest =
    fst
      (List.fold_left
         (fun (bp, bt) (p, d) ->
           match d with Some t when t > bt -> (p, t) | _ -> (bp, bt))
         ("", 0.0) delays)
  in
  let trace = Spice.Engine.transient nl ~tstop:(2.0 *. horizon) ~probes:[ slowest ] in
  Spice.Trace.write_csv "deck_io_wave.csv" trace;
  Printf.printf "wrote deck_io_wave.csv (%d samples)\n" (Spice.Trace.length trace);
  print_string (Spice.Trace.ascii_plot trace slowest)
