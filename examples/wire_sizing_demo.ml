(* Wire sizing (WSORG, paper Section 5.2).

   Widths trade resistance for capacitance: a width-w wire has r/w
   resistance and c*w capacitance per unit length. Greedily widen the
   edges where that trade wins, on both the tree and the non-tree
   routing.

     dune exec examples/wire_sizing_demo.exe *)

let () =
  let tech = Circuit.Technology.table1 in
  let rng = Rng.create 13 in
  let net =
    Geom.Netgen.uniform rng
      ~region:(Geom.Rect.square tech.Circuit.Technology.layout_side)
      ~pins:10
  in
  let spice = Delay.Model.Spice Delay.Model.default_spice in
  let moment = Delay.Model.First_moment in
  let mst = Routing.mst_of_net net in

  let report name r =
    Printf.printf "  %-20s delay %.3f ns, wire area %.0f um (x%.2f)\n" name
      (Delay.Model.max_delay spice ~tech r *. 1e9)
      (Nontree.Wire_sizing.wire_area r)
      (Nontree.Wire_sizing.wire_area r /. Routing.cost mst)
  in

  Printf.printf "widths allowed: 1, 2, 3\n";
  report "MST" mst;

  let mst_sized, changes =
    Nontree.Wire_sizing.size_greedy ~model:moment ~tech mst
  in
  report "MST sized" mst_sized;
  List.iter
    (fun (((u, v), w)) -> Printf.printf "    widened %d-%d to %.0fx\n" u v w)
    changes;

  let ldrg = (Nontree.Ldrg.run ~model:moment ~tech mst).Nontree.Ldrg.final in
  report "LDRG" ldrg;

  let ldrg_sized, changes =
    Nontree.Wire_sizing.size_greedy ~model:moment ~tech ldrg
  in
  report "LDRG sized" ldrg_sized;
  List.iter
    (fun (((u, v), w)) -> Printf.printf "    widened %d-%d to %.0fx\n" u v w)
    changes;

  (* The Section 5.2 observation: doubling a width is exactly a merged
     pair of parallel wires. *)
  let e = List.hd (Graphs.Wgraph.edges (Routing.graph mst)) in
  Printf.printf
    "merged-parallel check on edge %d-%d: doubled width gives %.3f ns\n"
    e.Graphs.Wgraph.u e.Graphs.Wgraph.v
    (Nontree.Wire_sizing.merge_parallel_delay ~model:moment ~tech mst
       (e.Graphs.Wgraph.u, e.Graphs.Wgraph.v)
    *. 1e9)
