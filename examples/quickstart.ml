(* Quickstart: the paper's core idea in ~40 lines.

   Build a random 10-pin net, route it as an MST, then let the LDRG
   greedy loop add non-tree wires, and compare SPICE delays.

     dune exec examples/quickstart.exe *)

let () =
  let tech = Circuit.Technology.table1 in

  (* A net: pin 0 is the source, the rest are sinks, placed uniformly
     in the technology's 10 mm x 10 mm layout region. *)
  let rng = Rng.create 42 in
  let net =
    Geom.Netgen.uniform rng
      ~region:(Geom.Rect.square tech.Circuit.Technology.layout_side)
      ~pins:10
  in
  Format.printf "%a@." Geom.Net.pp net;

  (* The classical routing: a minimum spanning tree. *)
  let mst = Routing.mst_of_net net in
  let spice = Delay.Model.Spice Delay.Model.default_spice in
  let mst_delay = Delay.Model.max_delay spice ~tech mst in
  Printf.printf "MST : delay %.2f ns, wirelength %.0f um\n" (mst_delay *. 1e9)
    (Routing.cost mst);

  (* Non-tree routing: greedily add wires while SPICE says they help. *)
  let trace = Nontree.Ldrg.run ~model:spice ~tech mst in
  let graph = trace.Nontree.Ldrg.final in
  let graph_delay = Delay.Model.max_delay spice ~tech graph in
  Printf.printf "LDRG: delay %.2f ns, wirelength %.0f um (%d extra wires)\n"
    (graph_delay *. 1e9) (Routing.cost graph)
    (List.length trace.Nontree.Ldrg.steps);
  Printf.printf "delay improvement %.1f%%, wirelength penalty %.1f%%\n"
    (100.0 *. (1.0 -. (graph_delay /. mst_delay)))
    (100.0 *. ((Routing.cost graph /. Routing.cost mst) -. 1.0));

  (* Render both topologies; the added wires are highlighted. *)
  Routing_svg.render_to_file ~title:"MST" "quickstart_mst.svg" mst;
  Routing_svg.render_to_file ~title:"LDRG"
    ~highlight:(List.map (fun s -> s.Nontree.Ldrg.edge) trace.Nontree.Ldrg.steps)
    "quickstart_ldrg.svg" graph;
  print_endline "wrote quickstart_mst.svg and quickstart_ldrg.svg"
