(* Frequency-domain view of non-tree routing.

   The time-domain story (lower 50% delay) has a frequency-domain
   twin: the extra wire widens the interconnect's bandwidth at the
   slow sinks. Sweep MST vs LDRG at the slowest sink and render a
   Bode magnitude plot plus the step responses.

     dune exec examples/frequency_response.exe *)

let () =
  let tech = Circuit.Technology.table1 in
  let rng = Rng.create 2024 in
  let net =
    Geom.Netgen.uniform rng
      ~region:(Geom.Rect.square tech.Circuit.Technology.layout_side)
      ~pins:10
  in
  let mst = Routing.mst_of_net net in
  let trace = Nontree.Ldrg.run ~model:Delay.Model.First_moment ~tech mst in
  let graph = trace.Nontree.Ldrg.final in

  (* Slowest MST sink. *)
  let worst, _ =
    List.fold_left
      (fun (bv, bd) (v, d) -> if d > bd then (v, d) else (bv, bd))
      (1, 0.0)
      (Delay.Moments.sink_delays ~tech mst)
  in
  let probe = Delay.Lumping.vertex_node_name worst in
  Printf.printf "slowest MST sink: n%d\n" worst;

  (* AC sweeps. *)
  let freqs =
    Spice.Ac.log_frequencies ~f_start:1e6 ~f_stop:1e11 ~points_per_decade:12
  in
  let sweep r =
    let nl, _ = Delay.Lumping.circuit_of_routing ~tech r in
    Spice.Ac.analyze nl ~source:"Vin" ~probe ~frequencies:freqs
  in
  let s_mst = sweep mst and s_graph = sweep graph in
  let report name s =
    match Spice.Ac.bandwidth_3db s with
    | Some bw -> Printf.printf "  %-5s 3 dB bandwidth %.3g MHz\n" name (bw /. 1e6)
    | None -> Printf.printf "  %-5s band edge beyond sweep\n" name
  in
  report "MST" s_mst;
  report "LDRG" s_graph;

  let bode_series name s =
    { Plot.label = name;
      points =
        Array.of_list
          (List.map
             (fun (p : Spice.Ac.point) ->
               (p.Spice.Ac.freq_hz, Spice.Ac.magnitude_db p))
             s) }
  in
  Plot.write_svg "frequency_response_bode.svg"
    (Plot.create ~x_axis:Plot.Log10 ~x_label:"frequency (Hz)"
       ~y_label:"|V(sink)| (dB)" ~title:"MST vs LDRG at the slowest sink"
       [ bode_series "MST" s_mst; bode_series "LDRG" s_graph ]);

  (* Step responses of the same sink. *)
  let horizon = 3.0 *. Delay.Model.spice_horizon ~tech mst in
  let wave r =
    let nl, _ = Delay.Lumping.circuit_of_routing ~tech r in
    let trace = Spice.Engine.transient nl ~tstop:horizon ~probes:[ probe ] in
    let v = Spice.Trace.signal trace probe in
    Array.mapi (fun i t -> (t *. 1e9, v.(i))) trace.Spice.Trace.times
  in
  Plot.write_svg "frequency_response_step.svg"
    (Plot.create ~x_label:"time (ns)" ~y_label:"V(sink) (V)"
       ~title:"step response at the slowest sink"
       [ { Plot.label = "MST"; points = wave mst };
         { Plot.label = "LDRG"; points = wave graph } ]);
  print_endline "wrote frequency_response_bode.svg and frequency_response_step.svg"
