(* Steiner routing flow (paper Section 3, SLDRG).

   Compare four topologies on the same net: MST, Iterated-1-Steiner
   tree, ERT, and the SLDRG non-tree graph built on the Steiner tree.

     dune exec examples/steiner_flow.exe *)

let () =
  let tech = Circuit.Technology.table1 in
  let rng = Rng.create 99 in
  let net =
    Geom.Netgen.uniform rng
      ~region:(Geom.Rect.square tech.Circuit.Technology.layout_side)
      ~pins:10
  in
  let spice = Delay.Model.Spice Delay.Model.default_spice in

  let mst = Routing.mst_of_net net in
  let steiner = Steiner.Iterated_1steiner.construct net in
  let ert = Ert.construct ~tech net in
  let sldrg_trace = Nontree.Sldrg.run ~model:spice ~tech net in
  let sldrg = sldrg_trace.Nontree.Ldrg.final in

  Printf.printf "10-pin net, SPICE-evaluated (normalised to MST):\n";
  let mst_delay = Delay.Model.max_delay spice ~tech mst in
  let mst_cost = Routing.cost mst in
  List.iter
    (fun (name, r) ->
      let d = Delay.Model.max_delay spice ~tech r in
      Printf.printf
        "  %-18s delay %.2f ns (%.2fx), wire %.0f um (%.2fx)%s\n" name
        (d *. 1e9) (d /. mst_delay) (Routing.cost r)
        (Routing.cost r /. mst_cost)
        (if Routing.is_tree r then "" else "  [non-tree]"))
    [ ("MST", mst); ("Iterated 1-Steiner", steiner); ("ERT", ert);
      ("SLDRG", sldrg) ];
  Printf.printf "Steiner points used: %d; SLDRG added %d extra wires\n"
    (Routing.num_vertices steiner - Routing.num_terminals steiner)
    (List.length sldrg_trace.Nontree.Ldrg.steps);
  Routing_svg.render_to_file ~title:"SLDRG"
    ~highlight:
      (List.map (fun s -> s.Nontree.Ldrg.edge) sldrg_trace.Nontree.Ldrg.steps)
    "steiner_flow_sldrg.svg" sldrg;
  print_endline "wrote steiner_flow_sldrg.svg"
