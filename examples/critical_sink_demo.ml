(* Critical-sink routing (CSORG, paper Section 5.1).

   A placement tool has marked one sink of this net as timing-critical.
   Compare how the generic max-delay objective and the criticality-
   weighted objective treat that sink.

     dune exec examples/critical_sink_demo.exe *)

let () =
  let tech = Circuit.Technology.table1 in
  let rng = Rng.create 7 in
  let net =
    Geom.Netgen.uniform rng
      ~region:(Geom.Rect.square tech.Circuit.Technology.layout_side)
      ~pins:12
  in

  (* Say the farthest sink is the critical one. *)
  let src = Geom.Net.source net in
  let critical =
    List.fold_left
      (fun best v ->
        if
          Geom.Point.manhattan src (Geom.Net.pin net v)
          > Geom.Point.manhattan src (Geom.Net.pin net best)
        then v
        else best)
      1
      (List.init (Geom.Net.num_sinks net) (fun i -> i + 1))
  in
  Printf.printf "critical sink: n%d at %s\n" critical
    (Geom.Point.to_string (Geom.Net.pin net critical));

  let spice = Delay.Model.Spice Delay.Model.default_spice in
  let sink_delay r =
    List.assoc critical (Delay.Model.sink_delays spice ~tech r)
  in
  let mst = Routing.mst_of_net net in

  (* Objective 1: classic ORG — minimise the max over all sinks. *)
  let org =
    (Nontree.Ldrg.run ~model:Delay.Model.First_moment ~tech mst)
      .Nontree.Ldrg.final
  in

  (* Objective 2: CSORG with a one-hot criticality on our sink. *)
  let alphas = Nontree.Critical_sink.one_hot net ~critical in
  let csorg =
    (Nontree.Critical_sink.ldrg ~model:Delay.Model.First_moment ~tech ~alphas
       mst)
      .Nontree.Ldrg.final
  in

  (* Objective 3: grow the tree itself criticality-aware (weighted ERT). *)
  let wert = Nontree.Critical_sink.ert_seed ~tech ~alphas net in

  Printf.printf "critical sink SPICE delay (and total wirelength):\n";
  List.iter
    (fun (name, r) ->
      Printf.printf "  %-22s %.3f ns  (%.0f um)\n" name
        (sink_delay r *. 1e9) (Routing.cost r))
    [ ("MST", mst); ("LDRG (max objective)", org);
      ("LDRG (critical sink)", csorg); ("weighted ERT", wert) ]
