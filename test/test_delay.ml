(* Tests for lumping, Elmore delay, graph moments, and delay models. *)

open Geom

let tech = Circuit.Technology.table1

let two_pin_net length =
  Net.of_list [ Point.origin; Point.make length 0.0 ]

let random_routing seed pins =
  let g = Rng.create seed in
  Routing.mst_of_net (Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins)

(* Elmore ------------------------------------------------------------- *)

let test_elmore_single_wire_analytic () =
  (* One 1000 um wire: t_ED = rd*(cw + 2*cpin) + rw*(cw/2 + cpin). *)
  let r = Routing.mst_of_net (two_pin_net 1000.0) in
  let cw = 0.352e-15 *. 1000.0 in
  let cpin = 15.3e-15 in
  let expected =
    (100.0 *. (cw +. (2.0 *. cpin))) +. (30.0 *. ((cw /. 2.0) +. cpin))
  in
  let d = Delay.Elmore.delays ~tech r in
  Alcotest.(check bool)
    (Printf.sprintf "elmore %.4g vs %.4g" d.(1) expected)
    true
    (abs_float (d.(1) -. expected) < 1e-15)

let test_elmore_monotone_along_path () =
  (* Delay accumulates along any root-to-leaf path. *)
  let r = random_routing 31 20 in
  let d = Delay.Elmore.delays ~tech r in
  let rooted = Routing.rooted r in
  Array.iteri
    (fun v parent ->
      if parent >= 0 then
        Alcotest.(check bool) "child >= parent" true (d.(v) >= d.(parent)))
    rooted.Graphs.Rooted.parent

let test_elmore_longer_wire_slower () =
  let d1 = (Delay.Elmore.delays ~tech (Routing.mst_of_net (two_pin_net 1000.0))).(1) in
  let d2 = (Delay.Elmore.delays ~tech (Routing.mst_of_net (two_pin_net 5000.0))).(1) in
  Alcotest.(check bool) "5mm slower than 1mm" true (d2 > d1);
  (* Wire delay grows quadratically; with the driver term the total is
     super-linear: more than 5x here. *)
  Alcotest.(check bool) "superlinear growth" true (d2 > 5.0 *. d1)

let test_elmore_rejects_non_tree () =
  let r = random_routing 7 10 in
  let u, v = List.hd (Routing.candidate_edges r) in
  let r' = Routing.add_edge r u v in
  Alcotest.check_raises "non-tree" (Invalid_argument "Routing.rooted: not a tree")
    (fun () -> ignore (Delay.Elmore.delays ~tech r'))

let test_total_capacitance () =
  let r = Routing.mst_of_net (two_pin_net 1000.0) in
  let expected = (0.352e-15 *. 1000.0) +. (2.0 *. 15.3e-15) in
  Alcotest.(check bool) "C_n0" true
    (abs_float (Delay.Elmore.total_capacitance ~tech r -. expected) < 1e-20)

(* The repository's key invariant: the conductance-matrix first moment
   must equal the Elmore formula on every tree. *)
let prop_elmore_equals_first_moment_on_trees =
  QCheck.Test.make ~name:"elmore = first moment on trees" ~count:60
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, pins) ->
      let r = random_routing seed pins in
      let e = Delay.Elmore.delays ~tech r in
      let m = Delay.Moments.first_moments ~tech r in
      let ok = ref true in
      Array.iteri
        (fun v ev ->
          let rel = abs_float (ev -. m.(v)) /. Float.max ev 1e-18 in
          if rel > 1e-9 then ok := false)
        e;
      !ok)

let prop_elmore_equals_first_moment_with_widths =
  QCheck.Test.make ~name:"elmore = first moment with wire widths" ~count:30
    QCheck.(pair small_int (int_range 3 15))
    (fun (seed, pins) ->
      let r = random_routing seed pins in
      (* Widen a couple of edges. *)
      let g = Rng.create (seed + 99) in
      let r =
        List.fold_left
          (fun acc (e : Graphs.Wgraph.edge) ->
            if Rng.bool g then
              Routing.set_width acc e.u e.v (float_of_int (1 + Rng.int g 3))
            else acc)
          r
          (Graphs.Wgraph.edges (Routing.graph r))
      in
      let e = Delay.Elmore.delays ~tech r in
      let m = Delay.Moments.first_moments ~tech r in
      Array.for_all Fun.id
        (Array.mapi
           (fun v ev -> abs_float (ev -. m.(v)) /. Float.max ev 1e-18 < 1e-9)
           e))

(* Moments on non-tree graphs ----------------------------------------- *)

let test_moments_on_cycle () =
  let r = random_routing 11 10 in
  let u, v = List.hd (Routing.candidate_edges r) in
  let r' = Routing.add_edge r u v in
  let m = Delay.Moments.first_moments ~tech r' in
  Array.iter
    (fun x -> Alcotest.(check bool) "positive moment" true (x > 0.0))
    m

let prop_extra_edge_never_hurts_its_endpoint_resistance =
  (* Adding an edge from the source lowers (or keeps) the first moment
     at the far endpoint when that edge is a direct source connection
     of significant width... in general moments can go either way, but
     they must stay positive and finite. *)
  QCheck.Test.make ~name:"moments stay positive/finite on graphs" ~count:40
    QCheck.(pair small_int (int_range 4 20))
    (fun (seed, pins) ->
      let r = random_routing seed pins in
      let g = Rng.create (seed + 1) in
      let candidates = Array.of_list (Routing.candidate_edges r) in
      let u, v = candidates.(Rng.int g (Array.length candidates)) in
      let m = Delay.Moments.first_moments ~tech (Routing.add_edge r u v) in
      Array.for_all (fun x -> Float.is_finite x && x > 0.0) m)

let test_two_pole_bounds () =
  let r = random_routing 13 20 in
  let m1 = Delay.Moments.first_moments ~tech r in
  let t2 = Delay.Moments.two_pole_delay ~tech r in
  Array.iteri
    (fun v t ->
      if v > 0 then begin
        Alcotest.(check bool) "positive" true (t > 0.0);
        Alcotest.(check bool) "below m1" true (t <= m1.(v) +. 1e-18)
      end)
    t2

let test_higher_moments_shape () =
  let r = random_routing 3 8 in
  let ms = Delay.Moments.higher_moments ~tech r ~order:3 in
  Alcotest.(check int) "order rows" 3 (Array.length ms);
  Array.iter
    (fun row ->
      Alcotest.(check int) "vertex cols" 8 (Array.length row);
      Array.iter
        (fun x -> Alcotest.(check bool) "positive" true (x > 0.0))
        row)
    ms

(* Lumping ------------------------------------------------------------ *)

let test_segments_for () =
  Alcotest.(check int) "fixed" 4 (Delay.Lumping.segments_for (Delay.Lumping.Fixed 4) 123.0);
  let per = Delay.Lumping.Per_length { unit_length = 1000.0; max_segments = 6 } in
  Alcotest.(check int) "short wire 1 seg" 1 (Delay.Lumping.segments_for per 500.0);
  Alcotest.(check int) "3 segs" 3 (Delay.Lumping.segments_for per 2500.0);
  Alcotest.(check int) "capped" 6 (Delay.Lumping.segments_for per 50_000.0)

let count_elements nl pred =
  List.length (List.filter pred (Circuit.Netlist.elements nl))

let test_lumping_structure () =
  let r = Routing.mst_of_net (two_pin_net 2500.0) in
  let nl, sinks =
    Delay.Lumping.circuit_of_routing ~tech
      ~segmentation:(Delay.Lumping.Fixed 3) r
  in
  Alcotest.(check (list string)) "sink names" [ "n1" ] sinks;
  (* 1 driver R + 3 segment Rs. *)
  Alcotest.(check int) "resistors" 4
    (count_elements nl (function Circuit.Element.Resistor _ -> true | _ -> false));
  (* 2 pin caps + 2 half-caps per segment * 3 segments. *)
  Alcotest.(check int) "capacitors" 8
    (count_elements nl (function Circuit.Element.Capacitor _ -> true | _ -> false));
  Alcotest.(check int) "one source" 1
    (count_elements nl (function Circuit.Element.Vsource _ -> true | _ -> false));
  Alcotest.(check int) "no inductors" 0
    (count_elements nl (function Circuit.Element.Inductor _ -> true | _ -> false))

let test_lumping_inductance () =
  let r = Routing.mst_of_net (two_pin_net 2500.0) in
  let nl, _ =
    Delay.Lumping.circuit_of_routing ~tech ~include_inductance:true
      ~segmentation:(Delay.Lumping.Fixed 3) r
  in
  Alcotest.(check int) "inductors" 3
    (count_elements nl (function Circuit.Element.Inductor _ -> true | _ -> false))

let test_lumping_total_capacitance_matches () =
  (* The lumped circuit's total capacitance must equal the analytic
     C_n0 used by the Elmore formula. *)
  let r = random_routing 17 12 in
  let nl, _ = Delay.Lumping.circuit_of_routing ~tech r in
  let total =
    List.fold_left
      (fun acc e ->
        match e with
        | Circuit.Element.Capacitor { farads; _ } -> acc +. farads
        | _ -> acc)
      0.0
      (Circuit.Netlist.elements nl)
  in
  let expected = Delay.Elmore.total_capacitance ~tech r in
  Alcotest.(check bool)
    (Printf.sprintf "%.4g vs %.4g" total expected)
    true
    (abs_float (total -. expected) /. expected < 1e-9)

(* Model oracles ------------------------------------------------------ *)

let test_model_names () =
  Alcotest.(check string) "elmore" "elmore" (Delay.Model.name Delay.Model.Elmore_tree);
  Alcotest.(check string) "spice" "spice"
    (Delay.Model.name (Delay.Model.Spice Delay.Model.fast_spice));
  Alcotest.(check string) "rlc" "spice-rlc"
    (Delay.Model.name (Delay.Model.Spice Delay.Model.rlc_spice))

let test_spice_vs_elmore_fidelity () =
  (* On trees, SPICE's 50% delay is known to track Elmore closely
     (Boese et al. [4]); sanity: ratio within [0.3, 1.05] — Elmore is
     an upper-bound-flavoured estimate. *)
  let r = random_routing 23 10 in
  let e = Delay.Model.max_delay Delay.Model.Elmore_tree ~tech r in
  let s =
    Delay.Model.max_delay (Delay.Model.Spice Delay.Model.default_spice) ~tech r
  in
  let ratio = s /. e in
  Alcotest.(check bool)
    (Printf.sprintf "spice/elmore = %.3f" ratio)
    true
    (ratio > 0.3 && ratio < 1.05)

let prop_spice_elmore_fidelity =
  (* The Boese et al. observation the paper leans on: SPICE 50% delay
     tracks Elmore tightly on trees. Property over random nets. *)
  QCheck.Test.make ~name:"spice/elmore ratio stays in a tight band" ~count:15
    QCheck.(pair small_int (int_range 4 15))
    (fun (seed, pins) ->
      let r = random_routing seed pins in
      let e = Delay.Model.max_delay Delay.Model.Elmore_tree ~tech r in
      let s =
        Delay.Model.max_delay (Delay.Model.Spice Delay.Model.fast_spice) ~tech r
      in
      let ratio = s /. e in
      ratio > 0.3 && ratio < 1.1)

let prop_two_pole_at_least_as_good_as_ln2 =
  (* The two-pole estimate should beat the naive ln2*m1 rule against
     SPICE on most nets (it corrects for the pole spread). *)
  QCheck.Test.make ~name:"two-pole closer to spice than ln2*m1 (usually)"
    ~count:10
    QCheck.(pair small_int (int_range 5 12))
    (fun (seed, pins) ->
      let r = random_routing (seed + 500) pins in
      let spice =
        Delay.Model.max_delay (Delay.Model.Spice Delay.Model.fast_spice) ~tech r
      in
      let m1 = Delay.Moments.max_delay ~tech r in
      let tp = Delay.Model.max_delay Delay.Model.Two_pole ~tech r in
      let err_ln2 = abs_float ((m1 *. log 2.0) -. spice) in
      let err_tp = abs_float (tp -. spice) in
      (* Allow a small slack: on some topologies ln2*m1 happens to be
         lucky; two-pole must never be wildly worse. *)
      err_tp <= (2.0 *. err_ln2) +. (0.02 *. spice))

let test_spice_on_non_tree () =
  (* The whole point of the paper: the SPICE oracle must evaluate
     non-tree routings. *)
  let r = random_routing 29 8 in
  let u, v = List.hd (Routing.candidate_edges r) in
  let r' = Routing.add_edge r u v in
  let s =
    Delay.Model.max_delay (Delay.Model.Spice Delay.Model.fast_spice) ~tech r'
  in
  Alcotest.(check bool) "positive delay" true (s > 0.0 && Float.is_finite s)

let test_rlc_close_to_rc () =
  (* At these geometries inductive impedance is small; RLC delay should
     be within ~15% of RC delay. *)
  let r = random_routing 41 8 in
  let rc =
    Delay.Model.max_delay (Delay.Model.Spice Delay.Model.default_spice) ~tech r
  in
  let rlc =
    Delay.Model.max_delay (Delay.Model.Spice Delay.Model.rlc_spice) ~tech r
  in
  Alcotest.(check bool)
    (Printf.sprintf "rc %.3g vs rlc %.3g" rc rlc)
    true
    (abs_float (rlc -. rc) /. rc < 0.15)

let suites =
  [ ( "delay",
      [ Alcotest.test_case "elmore single wire analytic" `Quick
          test_elmore_single_wire_analytic;
        Alcotest.test_case "elmore monotone on paths" `Quick
          test_elmore_monotone_along_path;
        Alcotest.test_case "longer wire slower" `Quick
          test_elmore_longer_wire_slower;
        Alcotest.test_case "elmore rejects non-tree" `Quick
          test_elmore_rejects_non_tree;
        Alcotest.test_case "total capacitance" `Quick test_total_capacitance;
        QCheck_alcotest.to_alcotest prop_elmore_equals_first_moment_on_trees;
        QCheck_alcotest.to_alcotest prop_elmore_equals_first_moment_with_widths;
        Alcotest.test_case "moments on cycle" `Quick test_moments_on_cycle;
        QCheck_alcotest.to_alcotest
          prop_extra_edge_never_hurts_its_endpoint_resistance;
        Alcotest.test_case "two-pole bounds" `Quick test_two_pole_bounds;
        Alcotest.test_case "higher moments shape" `Quick
          test_higher_moments_shape;
        Alcotest.test_case "segments_for" `Quick test_segments_for;
        Alcotest.test_case "lumping structure" `Quick test_lumping_structure;
        Alcotest.test_case "lumping inductance" `Quick test_lumping_inductance;
        Alcotest.test_case "lumped C total matches" `Quick
          test_lumping_total_capacitance_matches;
        Alcotest.test_case "model names" `Quick test_model_names;
        Alcotest.test_case "spice vs elmore fidelity" `Quick
          test_spice_vs_elmore_fidelity;
        QCheck_alcotest.to_alcotest prop_spice_elmore_fidelity;
        QCheck_alcotest.to_alcotest prop_two_pole_at_least_as_good_as_ln2;
        Alcotest.test_case "spice on non-tree" `Quick test_spice_on_non_tree;
        Alcotest.test_case "rlc close to rc" `Quick test_rlc_close_to_rc ] ) ]
