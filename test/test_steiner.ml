(* Tests for the Hanan grid and Iterated 1-Steiner. *)

open Geom

let test_hanan_generic () =
  let pins =
    [| Point.make 0.0 0.0; Point.make 10.0 20.0; Point.make 30.0 5.0 |]
  in
  (* 3 distinct xs x 3 distinct ys = 9 grid points, minus the 3 pins. *)
  Alcotest.(check int) "count" 6 (List.length (Steiner.Hanan.points pins));
  Alcotest.(check (pair int int)) "grid size" (3, 3)
    (Steiner.Hanan.grid_size pins)

let test_hanan_collinear () =
  let pins = [| Point.make 0.0 0.0; Point.make 5.0 0.0; Point.make 9.0 0.0 |] in
  (* One y value: the grid is the pins themselves. *)
  Alcotest.(check int) "no candidates" 0 (List.length (Steiner.Hanan.points pins))

let test_hanan_excludes_pins () =
  let pins = [| Point.make 0.0 0.0; Point.make 1.0 1.0 |] in
  let cands = Steiner.Hanan.points pins in
  Alcotest.(check int) "two corners" 2 (List.length cands);
  List.iter
    (fun c ->
      Alcotest.(check bool) "not a pin" false
        (Array.exists (Point.equal c) pins))
    cands

let plus_net () =
  (* Four arms of a plus: the optimal Steiner point is the centre. *)
  Net.of_list
    [ Point.make 50.0 0.0; Point.make 50.0 100.0; Point.make 0.0 50.0;
      Point.make 100.0 50.0 ]

let test_i1s_plus () =
  let net = plus_net () in
  let mst = Routing.mst_of_net net in
  Alcotest.(check (float 1e-9)) "mst cost" 300.0 (Routing.cost mst);
  let st = Steiner.Iterated_1steiner.construct net in
  Alcotest.(check (float 1e-9)) "steiner cost" 200.0 (Routing.cost st);
  Alcotest.(check int) "one steiner point" 5 (Routing.num_vertices st);
  Alcotest.(check int) "terminals preserved" 4 (Routing.num_terminals st);
  Alcotest.(check bool) "is a tree" true (Routing.is_tree st);
  (* The added point must be the centre. *)
  Alcotest.(check bool) "centre found" true
    (Point.close (Routing.point st 4) (Point.make 50.0 50.0))

let test_i1s_two_pins () =
  let net = Net.of_list [ Point.origin; Point.make 30.0 40.0 ] in
  let st = Steiner.Iterated_1steiner.construct net in
  (* No Steiner point can beat a single direct wire. *)
  Alcotest.(check int) "no steiner points" 2 (Routing.num_vertices st);
  Alcotest.(check (float 1e-9)) "cost" 70.0 (Routing.cost st)

let test_i1s_max_points () =
  let g = Rng.create 77 in
  let net = Netgen.uniform g ~region:(Rect.square 1000.0) ~pins:10 in
  let st = Steiner.Iterated_1steiner.construct ~max_points:1 net in
  Alcotest.(check bool) "at most one steiner point" true
    (Routing.num_vertices st <= 11)

let prop_i1s_cost_at_most_mst =
  QCheck.Test.make ~name:"I1S cost <= MST cost" ~count:25
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, pins) ->
      let g = Rng.create seed in
      let net = Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins in
      let mst_cost = Routing.cost (Routing.mst_of_net net) in
      let st = Steiner.Iterated_1steiner.construct net in
      Routing.cost st <= mst_cost +. 1e-6)

let prop_i1s_structure =
  QCheck.Test.make ~name:"I1S: tree, terminals intact, steiner degree >= 3"
    ~count:25
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, pins) ->
      let g = Rng.create (seed + 1000) in
      let net = Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins in
      let st = Steiner.Iterated_1steiner.construct net in
      Routing.is_tree st
      && Routing.num_terminals st = pins
      && List.for_all
           (fun v -> Graphs.Wgraph.degree (Routing.graph st) v >= 3)
           (List.init
              (Routing.num_vertices st - Routing.num_terminals st)
              (fun i -> Routing.num_terminals st + i)))

(* The classic worst case: I1S achieves 2/3 of the MST on a plus, and in
   general is never worse than the MST; the reduction ratio over random
   nets should average a few percent (Kahng-Robins report ~11 %). *)
let test_i1s_average_improvement () =
  let total_ratio = ref 0.0 in
  let trials = 12 in
  for seed = 1 to trials do
    let g = Rng.create (seed * 31) in
    let net = Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins:9 in
    let mst = Routing.cost (Routing.mst_of_net net) in
    let st = Routing.cost (Steiner.Iterated_1steiner.construct net) in
    total_ratio := !total_ratio +. (st /. mst)
  done;
  let avg = !total_ratio /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "avg ratio %.3f in (0.80, 1.0)" avg)
    true
    (avg > 0.80 && avg < 1.0)

let test_i1s_leaf_steiner_regression () =
  (* Regression: this net stream once made cleanup loop forever on a
     Steiner point that became a degree-0 vertex after a leaf drop. *)
  let nets =
    Netgen.uniform_batch
      ~seed:(1994 + (1_000_003 * 10))
      ~region:(Rect.square 10_000.0) ~pins:10 ~trials:2
  in
  let st = Steiner.Iterated_1steiner.construct nets.(1) in
  Alcotest.(check bool) "terminates and is a tree" true (Routing.is_tree st)

let test_mst_cost_with () =
  let pts = [| Point.make 0.0 0.0; Point.make 100.0 0.0 |] in
  Alcotest.(check (float 1e-9)) "base" 100.0
    (Steiner.Iterated_1steiner.mst_cost_with pts None);
  Alcotest.(check (float 1e-9)) "with midpoint unchanged" 100.0
    (Steiner.Iterated_1steiner.mst_cost_with pts (Some (Point.make 50.0 0.0)))

let suites =
  [ ( "steiner",
      [ Alcotest.test_case "hanan generic" `Quick test_hanan_generic;
        Alcotest.test_case "hanan collinear" `Quick test_hanan_collinear;
        Alcotest.test_case "hanan excludes pins" `Quick test_hanan_excludes_pins;
        Alcotest.test_case "i1s plus net" `Quick test_i1s_plus;
        Alcotest.test_case "i1s two pins" `Quick test_i1s_two_pins;
        Alcotest.test_case "i1s max_points" `Quick test_i1s_max_points;
        QCheck_alcotest.to_alcotest prop_i1s_cost_at_most_mst;
        QCheck_alcotest.to_alcotest prop_i1s_structure;
        Alcotest.test_case "i1s average improvement" `Quick
          test_i1s_average_improvement;
        Alcotest.test_case "i1s leaf-steiner regression" `Quick
          test_i1s_leaf_steiner_regression;
        Alcotest.test_case "mst_cost_with" `Quick test_mst_cost_with ] ) ]
