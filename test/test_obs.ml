(* Tests for the observability layer (lib/obs): registry semantics
   under a Domain pool, span nesting, manifest round-trips — and
   regression tests for the measurement bugfixes that shipped with
   it. *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

(* Spans and histogram observations record only while enabled; leave
   the global flag the way we found it even when a check fails. *)
let with_obs_enabled f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

(* Counters -------------------------------------------------------------- *)

let test_counter_basics () =
  let c = Obs.Counter.make "test.basics" in
  Obs.Counter.set c 0;
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "value" 42 (Obs.Counter.value c);
  Alcotest.(check string) "name" "test.basics" (Obs.Counter.name c);
  let c' = Obs.Counter.make "test.basics" in
  Obs.Counter.incr c';
  Alcotest.(check int) "make is idempotent (same cell)" 43 (Obs.Counter.value c);
  Alcotest.(check bool) "snapshot carries it" true
    (List.mem ("test.basics", 43) (Obs.Counter.snapshot ()))

let test_counter_under_domains () =
  let c = Obs.Counter.make "test.domains" in
  Obs.Counter.set c 0;
  let items = List.init 400 Fun.id in
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore (Pool.map pool (fun _ -> Obs.Counter.incr c) items));
  Alcotest.(check int) "no lost increments across 4 domains" 400
    (Obs.Counter.value c)

(* Histograms ------------------------------------------------------------ *)

let test_histogram_buckets () =
  let h = Obs.Histogram.make "test.hist" ~buckets:[| 1.0; 10.0; 100.0 |] in
  Obs.Histogram.reset h;
  with_obs_enabled (fun () ->
      List.iter (Obs.Histogram.observe h) [ 0.5; 1.0; 5.0; 99.0; 1000.0 ]);
  let v = Obs.Histogram.view h in
  Alcotest.(check (array int)) "bucket counts (incl. overflow)"
    [| 2; 1; 1; 1 |] v.Obs.Histogram.view_counts;
  Alcotest.(check int) "count" 5 v.Obs.Histogram.count;
  Alcotest.(check (float 1e-9)) "total" 1105.5 v.Obs.Histogram.total

let test_histogram_disabled_noop () =
  let h = Obs.Histogram.make "test.hist.noop" ~buckets:[| 1.0 |] in
  Obs.Histogram.reset h;
  Obs.set_enabled false;
  Obs.Histogram.observe h 0.5;
  Alcotest.(check int) "observe while disabled records nothing" 0
    (Obs.Histogram.view h).Obs.Histogram.count

let test_histogram_bad_buckets () =
  Alcotest.check_raises "non-increasing buckets rejected"
    (Invalid_argument "Obs.Histogram.make: buckets must increase") (fun () ->
      ignore (Obs.Histogram.make "test.bad" ~buckets:[| 2.0; 1.0 |]))

let test_histogram_under_domains () =
  let h = Obs.Histogram.make "test.hist.domains" ~buckets:[| 0.5 |] in
  Obs.Histogram.reset h;
  with_obs_enabled (fun () ->
      Pool.with_pool ~jobs:4 (fun pool ->
          ignore
            (Pool.map pool
               (fun i -> Obs.Histogram.observe h (if i mod 2 = 0 then 0.0 else 1.0))
               (List.init 200 Fun.id))));
  let v = Obs.Histogram.view h in
  Alcotest.(check int) "count" 200 v.Obs.Histogram.count;
  Alcotest.(check (array int)) "split" [| 100; 100 |] v.Obs.Histogram.view_counts

(* Spans ----------------------------------------------------------------- *)

let test_span_nesting () =
  Obs.Span.reset ();
  with_obs_enabled (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () -> ());
          Obs.span "inner" (fun () -> ())));
  let spans = Obs.Span.all () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let outer = Option.get (Obs.Span.find "outer") in
  Alcotest.(check (option int)) "outer has no parent" None outer.Obs.Span.parent;
  List.iter
    (fun (sp : Obs.Span.t) ->
      if sp.Obs.Span.name = "inner" then begin
        Alcotest.(check (option int)) "inner's parent is outer"
          (Some outer.Obs.Span.id) sp.Obs.Span.parent;
        Alcotest.(check bool) "inner within outer" true
          (sp.Obs.Span.dur_s <= outer.Obs.Span.dur_s +. 1e-6)
      end)
    spans;
  Alcotest.(check bool) "durations are non-negative" true
    (List.for_all (fun (sp : Obs.Span.t) -> sp.Obs.Span.dur_s >= 0.0) spans)

let test_span_records_on_raise () =
  Obs.Span.reset ();
  with_obs_enabled (fun () ->
      try Obs.span "raiser" (fun () -> failwith "boom")
      with Failure _ -> ());
  Alcotest.(check bool) "interrupted span still recorded" true
    (Obs.Span.find "raiser" <> None)

let test_span_disabled_noop () =
  Obs.Span.reset ();
  Obs.set_enabled false;
  Alcotest.(check int) "span returns f's value" 7 (Obs.span "off" (fun () -> 7));
  Alcotest.(check int) "nothing recorded while disabled" 0
    (List.length (Obs.Span.all ()));
  Alcotest.(check bool) "no summary without spans" true
    (Obs.span_summary () = None)

let test_span_summary () =
  Obs.Span.reset ();
  with_obs_enabled (fun () ->
      Obs.span "alpha" (fun () -> Obs.span "beta" (fun () -> ()));
      Obs.span "beta" (fun () -> ()));
  match Obs.span_summary () with
  | None -> Alcotest.fail "expected a summary"
  | Some s ->
      Alcotest.(check bool) "header" true (contains s "trace spans");
      Alcotest.(check bool) "has alpha" true (contains s "alpha");
      Alcotest.(check bool) "has beta" true (contains s "beta")

(* JSON ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Obs.Json.(
      Obj
        [ ("s", String "a\"b\\c\nd\te\x01");
          ("i", Int (-42));
          ("f", Float 0.1);
          ("whole", Float 3.0);
          ("t", Bool true);
          ("nil", Null);
          ("l", List [ Int 1; Float 2.5; String "x"; List []; Obj [] ]) ])
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips exactly" true (v = v')
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_parser_edges () =
  let ok s v =
    match Obs.Json.of_string s with
    | Ok v' -> Alcotest.(check bool) ("parse " ^ s) true (v = v')
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  ok "null" Obs.Json.Null;
  ok "[1, 2.5, \"\\u0041\"]"
    Obs.Json.(List [ Int 1; Float 2.5; String "A" ]);
  ok "{\"a\": {\"b\": []}}" Obs.Json.(Obj [ ("a", Obj [ ("b", List []) ]) ]);
  (match Obs.Json.of_string "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed object");
  (match Obs.Json.of_string "[1, 2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage");
  Alcotest.(check bool) "non-finite floats serialise as null" true
    (contains Obs.Json.(to_string (List [ Float nan ])) "null")

(* Manifest -------------------------------------------------------------- *)

let test_manifest_roundtrip () =
  Obs.Span.reset ();
  with_obs_enabled (fun () -> Obs.span "manifest.test" (fun () -> ()));
  let c = Obs.Counter.make "test.manifest" in
  Obs.Counter.set c 3;
  let path = Filename.temp_file "obs" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.Manifest.write ~path
        ~argv:[ "prog"; "--flag" ]
        ~meta:[ ("seed", Obs.Json.Int 1994) ]
        ~extra:[ ("cache", Obs.Json.Obj [ ("hits", Obs.Json.Int 0) ]) ]
        ();
      let text = In_channel.with_open_bin path In_channel.input_all in
      match Obs.Json.of_string text with
      | Error e -> Alcotest.fail ("manifest does not parse: " ^ e)
      | Ok json ->
          let str k =
            match Obs.Json.member k json with
            | Some (Obs.Json.String s) -> s
            | _ -> Alcotest.fail ("missing string " ^ k)
          in
          Alcotest.(check string) "schema" "nontree-obs-v1" (str "schema");
          Alcotest.(check bool) "git is non-empty" true (str "git" <> "");
          (match Obs.Json.member "argv" json with
          | Some (Obs.Json.List [ Obs.Json.String a; Obs.Json.String b ]) ->
              Alcotest.(check (pair string string)) "argv" ("prog", "--flag")
                (a, b)
          | _ -> Alcotest.fail "argv shape");
          (match Obs.Json.member "counters" json with
          | Some counters ->
              Alcotest.(check bool) "registry counter serialised" true
                (Obs.Json.member "test.manifest" counters
                = Some (Obs.Json.Int 3))
          | None -> Alcotest.fail "no counters");
          (match Obs.Json.member "spans" json with
          | Some (Obs.Json.List spans) ->
              Alcotest.(check bool) "span serialised" true
                (List.exists
                   (fun sp ->
                     Obs.Json.member "name" sp
                     = Some (Obs.Json.String "manifest.test"))
                   spans)
          | _ -> Alcotest.fail "no spans");
          Alcotest.(check bool) "extra section survives" true
            (Obs.Json.member "cache" json <> None))

(* Regression: Measure.first_crossing ------------------------------------ *)

let test_first_crossing_initially_above () =
  (* A falling waveform that starts above the level never crosses from
     below; the old code reported a spurious times.(0). *)
  let times = [| 0.0; 1.0; 2.0 |] and values = [| 2.0; 1.5; 1.2 |] in
  Alcotest.(check (option (float 1e-12))) "no crossing" None
    (Spice.Measure.first_crossing ~times ~values ~level:1.0)

let test_first_crossing_starts_at_level () =
  let times = [| 3.0; 4.0 |] and values = [| 1.0; 2.0 |] in
  Alcotest.(check (option (float 1e-12))) "exact first sample" (Some 3.0)
    (Spice.Measure.first_crossing ~times ~values ~level:1.0)

let test_first_crossing_dip_then_rise () =
  (* Starts high, dips below, rises back through the level: the crossing
     is the *second* rise, interpolated between t=2 (0.5) and t=3 (1.5),
     i.e. t = 2.5. *)
  let times = [| 0.0; 1.0; 2.0; 3.0 |] in
  let values = [| 2.0; 0.8; 0.5; 1.5 |] in
  Alcotest.(check (option (float 1e-12))) "interpolated rise" (Some 2.5)
    (Spice.Measure.first_crossing ~times ~values ~level:1.0)

let test_first_crossing_plain_rise () =
  (* The common case must be unchanged: interpolate in the first
     below→above interval. *)
  let times = [| 0.0; 1.0 |] and values = [| 0.0; 2.0 |] in
  Alcotest.(check (option (float 1e-12))) "midpoint" (Some 0.5)
    (Spice.Measure.first_crossing ~times ~values ~level:1.0)

(* Regression: Measure.overshoot on empty waveforms ----------------------- *)

let test_overshoot_empty_rejected () =
  Alcotest.check_raises "empty waveform"
    (Invalid_argument "Measure.overshoot: empty waveform") (fun () ->
      ignore (Spice.Measure.overshoot ~values:[||] ~vfinal:1.0))

let test_overshoot_values () =
  Alcotest.(check (float 1e-12)) "underdamped peak" 0.5
    (Spice.Measure.overshoot ~values:[| 0.0; 1.5; 1.0 |] ~vfinal:1.0);
  Alcotest.(check (float 1e-12)) "monotone rise has none" 0.0
    (Spice.Measure.overshoot ~values:[| 0.0; 0.5; 1.0 |] ~vfinal:1.0)

(* Regression: cache summary hit rate ------------------------------------ *)

let test_cache_summary_idle () =
  let was_enabled = Nontree.Oracle.Cache.enabled () in
  Nontree.Oracle.Cache.reset ();
  Nontree.Oracle.Cache.set_enabled false;
  Alcotest.(check bool) "disabled and idle: no summary" true
    (Nontree.Oracle.Cache.summary () = None);
  Nontree.Oracle.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Nontree.Oracle.Cache.set_enabled was_enabled;
      Nontree.Oracle.Cache.reset ())
    (fun () ->
      match Nontree.Oracle.Cache.summary () with
      | None -> Alcotest.fail "enabled cache should summarise even when idle"
      | Some line ->
          Alcotest.(check bool) "n/a, never NaN" true (contains line "n/a");
          Alcotest.(check bool) "no nan leaks" false (contains line "nan"))

(* Regression: Table.render groups non-contiguous labels ------------------ *)

let test_render_non_contiguous_labels () =
  let row d =
    { Nontree.Stats.n = 1;
      all_delay = d;
      all_cost = 1.0;
      pct_winners = 0.0;
      win_delay = None;
      win_cost = None }
  in
  let rows =
    [ { Harness.Table.label = "Alpha"; size = 5; row = Some (row 0.9) };
      { Harness.Table.label = "Beta"; size = 5; row = Some (row 0.8) };
      { Harness.Table.label = "Alpha"; size = 10; row = Some (row 0.7) } ]
  in
  let text = Harness.Table.render ~title:"T" ~baseline:"MST" rows in
  let count needle =
    let n = String.length text and m = String.length needle in
    let rec scan i acc =
      if i + m > n then acc
      else if String.sub text i m = needle then scan (i + 1) (acc + 1)
      else scan (i + 1) acc
    in
    scan 0 0
  in
  (* One header per label: the stray Alpha row folds into the first
     block instead of opening a duplicate one. *)
  Alcotest.(check int) "one Alpha block" 1 (count "Alpha");
  Alcotest.(check int) "one Beta block" 1 (count "Beta");
  let idx needle =
    let m = String.length needle in
    let rec find i =
      if i + m > String.length text then max_int
      else if String.sub text i m = needle then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "first-occurrence order" true (idx "Alpha" < idx "Beta")

let suites =
  [ ( "obs.registry",
      [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "counters under 4 domains" `Quick
          test_counter_under_domains;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "histogram disabled no-op" `Quick
          test_histogram_disabled_noop;
        Alcotest.test_case "histogram bad buckets" `Quick
          test_histogram_bad_buckets;
        Alcotest.test_case "histograms under 4 domains" `Quick
          test_histogram_under_domains ] );
    ( "obs.spans",
      [ Alcotest.test_case "nesting and parents" `Quick test_span_nesting;
        Alcotest.test_case "recorded on raise" `Quick test_span_records_on_raise;
        Alcotest.test_case "disabled no-op" `Quick test_span_disabled_noop;
        Alcotest.test_case "summary" `Quick test_span_summary ] );
    ( "obs.json",
      [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "parser edges" `Quick test_json_parser_edges;
        Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip ]
    );
    ( "obs.bugfixes",
      [ Alcotest.test_case "first_crossing: initially above" `Quick
          test_first_crossing_initially_above;
        Alcotest.test_case "first_crossing: starts at level" `Quick
          test_first_crossing_starts_at_level;
        Alcotest.test_case "first_crossing: dip then rise" `Quick
          test_first_crossing_dip_then_rise;
        Alcotest.test_case "first_crossing: plain rise" `Quick
          test_first_crossing_plain_rise;
        Alcotest.test_case "overshoot: empty rejected" `Quick
          test_overshoot_empty_rejected;
        Alcotest.test_case "overshoot: values" `Quick test_overshoot_values;
        Alcotest.test_case "cache summary: idle never NaN" `Quick
          test_cache_summary_idle;
        Alcotest.test_case "render: non-contiguous labels" `Quick
          test_render_non_contiguous_labels ] ) ]
