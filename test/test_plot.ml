(* Tests for the SVG line-plot renderer. *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

let sine_series =
  { Plot.label = "sine";
    points = Array.init 50 (fun i ->
        let x = float_of_int i /. 5.0 in
        (x, sin x)) }

let test_basic_svg () =
  let p = Plot.create ~title:"t" [ sine_series ] in
  let svg = Plot.to_svg p in
  Alcotest.(check bool) "svg root" true (contains svg "<svg");
  Alcotest.(check bool) "one polyline" true (contains svg "<polyline");
  Alcotest.(check bool) "title" true (contains svg ">t</text>");
  Alcotest.(check bool) "legend label" true (contains svg ">sine</text>")

let test_multi_series_colors () =
  let s2 = { sine_series with label = "other" } in
  let svg = Plot.to_svg (Plot.create ~title:"m" [ sine_series; s2 ]) in
  Alcotest.(check bool) "two colors" true
    (contains svg "#2563eb" && contains svg "#dc2626")

let test_log_axis () =
  let s =
    { Plot.label = "log";
      points = Array.init 5 (fun i -> (10.0 ** float_of_int i, float_of_int i)) }
  in
  let svg = Plot.to_svg (Plot.create ~x_axis:Plot.Log10 ~title:"l" [ s ]) in
  Alcotest.(check bool) "log tick format" true (contains svg "1e");
  Alcotest.check_raises "negative x rejected"
    (Invalid_argument "Plot.create: log axis needs positive x") (fun () ->
      ignore
        (Plot.create ~x_axis:Plot.Log10 ~title:"bad"
           [ { Plot.label = "x"; points = [| (-1.0, 0.0) |] } ]))

let test_empty_rejected () =
  Alcotest.check_raises "no data" (Invalid_argument "Plot.create: no data")
    (fun () ->
      ignore (Plot.create ~title:"e" [ { Plot.label = "e"; points = [||] } ]))

let test_axis_labels () =
  let svg =
    Plot.to_svg
      (Plot.create ~x_label:"time" ~y_label:"volts" ~title:"a" [ sine_series ])
  in
  Alcotest.(check bool) "x label" true (contains svg ">time</text>");
  Alcotest.(check bool) "y label" true (contains svg ">volts</text>")

let test_write_svg () =
  let path = Filename.temp_file "plot" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Plot.write_svg path (Plot.create ~title:"f" [ sine_series ]);
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) "non-empty file" true (len > 500))

let suites =
  [ ( "plot",
      [ Alcotest.test_case "basic svg" `Quick test_basic_svg;
        Alcotest.test_case "multi series" `Quick test_multi_series_colors;
        Alcotest.test_case "log axis" `Quick test_log_axis;
        Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        Alcotest.test_case "axis labels" `Quick test_axis_labels;
        Alcotest.test_case "write svg" `Quick test_write_svg ] ) ]
