(* Tests for Manhattan-plane geometry and net generation. *)

open Geom

let point_gen =
  QCheck.Gen.(
    map2 (fun x y -> Point.make x y) (float_bound_inclusive 10_000.0)
      (float_bound_inclusive 10_000.0))

let arb_point = QCheck.make ~print:Point.to_string point_gen

let test_manhattan_known () =
  let p = Point.make 0.0 0.0 and q = Point.make 3.0 4.0 in
  Alcotest.(check (float 1e-12)) "3+4" 7.0 (Point.manhattan p q)

let test_euclidean_known () =
  let p = Point.make 0.0 0.0 and q = Point.make 3.0 4.0 in
  Alcotest.(check (float 1e-12)) "5" 5.0 (Point.euclidean p q)

let test_midpoint () =
  let m = Point.midpoint (Point.make 0.0 2.0) (Point.make 4.0 0.0) in
  Alcotest.(check bool) "midpoint" true (Point.equal m (Point.make 2.0 1.0))

let prop_manhattan_symmetric =
  QCheck.Test.make ~name:"manhattan symmetric" ~count:200
    QCheck.(pair arb_point arb_point)
    (fun (p, q) -> Point.manhattan p q = Point.manhattan q p)

let prop_manhattan_triangle =
  QCheck.Test.make ~name:"manhattan triangle inequality" ~count:200
    QCheck.(triple arb_point arb_point arb_point)
    (fun (p, q, r) ->
      Point.manhattan p r <= Point.manhattan p q +. Point.manhattan q r +. 1e-6)

let prop_manhattan_dominates_euclidean =
  QCheck.Test.make ~name:"L1 >= L2" ~count:200
    QCheck.(pair arb_point arb_point)
    (fun (p, q) -> Point.manhattan p q +. 1e-9 >= Point.euclidean p q)

let prop_manhattan_zero_iff_equal =
  QCheck.Test.make ~name:"L1 = 0 iff equal" ~count:200
    QCheck.(pair arb_point arb_point)
    (fun (p, q) -> Point.manhattan p q = 0.0 = Point.equal p q)

let test_rect_normalises () =
  let r = Rect.make 5.0 7.0 1.0 2.0 in
  Alcotest.(check (float 0.0)) "width" 4.0 (Rect.width r);
  Alcotest.(check (float 0.0)) "height" 5.0 (Rect.height r)

let test_rect_contains () =
  let r = Rect.square 10.0 in
  Alcotest.(check bool) "inside" true (Rect.contains r (Point.make 5.0 5.0));
  Alcotest.(check bool) "boundary" true (Rect.contains r (Point.make 0.0 10.0));
  Alcotest.(check bool) "outside" false
    (Rect.contains r (Point.make 10.1 5.0))

let test_bounding_box () =
  let pts =
    [| Point.make 1.0 5.0; Point.make 3.0 2.0; Point.make (-1.0) 4.0 |]
  in
  let b = Rect.bounding_box pts in
  Alcotest.(check (float 0.0)) "x0" (-1.0) b.Rect.x0;
  Alcotest.(check (float 0.0)) "x1" 3.0 b.Rect.x1;
  Alcotest.(check (float 0.0)) "y0" 2.0 b.Rect.y0;
  Alcotest.(check (float 0.0)) "y1" 5.0 b.Rect.y1

let test_bounding_box_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Rect.bounding_box: empty")
    (fun () -> ignore (Rect.bounding_box [||]))

let test_net_rejects_small () =
  Alcotest.check_raises "one pin"
    (Invalid_argument "Net.create: a net needs a source and at least one sink")
    (fun () -> ignore (Net.create [| Point.origin |]))

let test_net_rejects_coincident () =
  Alcotest.check_raises "dup pins" (Invalid_argument "Net.create: coincident pins")
    (fun () ->
      ignore (Net.create [| Point.origin; Point.make 1.0 1.0; Point.origin |]))

let test_net_accessors () =
  let net =
    Net.of_list [ Point.origin; Point.make 1.0 0.0; Point.make 0.0 2.0 ]
  in
  Alcotest.(check int) "size" 3 (Net.size net);
  Alcotest.(check int) "sinks" 2 (Net.num_sinks net);
  Alcotest.(check bool) "source" true (Point.equal (Net.source net) Point.origin);
  Alcotest.(check bool) "pin 2" true
    (Point.equal (Net.pin net 2) (Point.make 0.0 2.0))

let test_netgen_in_region () =
  let g = Rng.create 21 in
  let region = Rect.square 10_000.0 in
  let net = Netgen.uniform g ~region ~pins:30 in
  Alcotest.(check int) "pin count" 30 (Net.size net);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "inside region" true (Rect.contains region p))
    (Net.pins net)

let test_netgen_batch_reproducible () =
  let region = Rect.square 10_000.0 in
  let b1 = Netgen.uniform_batch ~seed:5 ~region ~pins:10 ~trials:5 in
  let b2 = Netgen.uniform_batch ~seed:5 ~region ~pins:10 ~trials:5 in
  Array.iteri
    (fun i net ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d identical" i)
        true
        (Net.pins net = Net.pins b2.(i)))
    b1

let test_netgen_batch_prefix_stable () =
  (* Asking for more trials must not change the earlier nets. *)
  let region = Rect.square 10_000.0 in
  let b1 = Netgen.uniform_batch ~seed:5 ~region ~pins:10 ~trials:3 in
  let b2 = Netgen.uniform_batch ~seed:5 ~region ~pins:10 ~trials:6 in
  for i = 0 to 2 do
    Alcotest.(check bool) "prefix stable" true
      (Net.pins b1.(i) = Net.pins b2.(i))
  done

let test_netgen_clustered () =
  let g = Rng.create 8 in
  let region = Rect.square 10_000.0 in
  let net = Netgen.clustered g ~region ~clusters:3 ~pins:20 in
  Alcotest.(check int) "pin count" 20 (Net.size net);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "inside region" true (Rect.contains region p))
    (Net.pins net)

let test_half_perimeter () =
  let r = Rect.make 0.0 0.0 30.0 40.0 in
  Alcotest.(check (float 0.0)) "hpwl" 70.0 (Rect.half_perimeter r);
  Alcotest.(check (float 0.0)) "area" 1200.0 (Rect.area r)

let test_point_compare_total_order () =
  let pts =
    [ Point.make 1.0 2.0; Point.make 0.0 9.0; Point.make 1.0 0.0;
      Point.make 0.0 0.0 ]
  in
  let sorted = List.sort Point.compare pts in
  Alcotest.(check bool) "lexicographic" true
    (sorted
    = [ Point.make 0.0 0.0; Point.make 0.0 9.0; Point.make 1.0 0.0;
        Point.make 1.0 2.0 ])

let test_point_close () =
  Alcotest.(check bool) "close within eps" true
    (Point.close ~eps:0.1 (Point.make 0.0 0.0) (Point.make 0.05 (-0.05)));
  Alcotest.(check bool) "not close" false
    (Point.close ~eps:0.01 (Point.make 0.0 0.0) (Point.make 0.05 0.0))

let suites =
  [ ( "geom",
      [ Alcotest.test_case "manhattan 3-4-5" `Quick test_manhattan_known;
        Alcotest.test_case "euclidean 3-4-5" `Quick test_euclidean_known;
        Alcotest.test_case "midpoint" `Quick test_midpoint;
        QCheck_alcotest.to_alcotest prop_manhattan_symmetric;
        QCheck_alcotest.to_alcotest prop_manhattan_triangle;
        QCheck_alcotest.to_alcotest prop_manhattan_dominates_euclidean;
        QCheck_alcotest.to_alcotest prop_manhattan_zero_iff_equal;
        Alcotest.test_case "rect normalises" `Quick test_rect_normalises;
        Alcotest.test_case "rect contains" `Quick test_rect_contains;
        Alcotest.test_case "bounding box" `Quick test_bounding_box;
        Alcotest.test_case "bounding box empty" `Quick test_bounding_box_empty;
        Alcotest.test_case "net rejects 1 pin" `Quick test_net_rejects_small;
        Alcotest.test_case "net rejects coincident" `Quick
          test_net_rejects_coincident;
        Alcotest.test_case "net accessors" `Quick test_net_accessors;
        Alcotest.test_case "netgen stays in region" `Quick test_netgen_in_region;
        Alcotest.test_case "netgen batch reproducible" `Quick
          test_netgen_batch_reproducible;
        Alcotest.test_case "netgen batch prefix stable" `Quick
          test_netgen_batch_prefix_stable;
        Alcotest.test_case "netgen clustered" `Quick test_netgen_clustered;
        Alcotest.test_case "half perimeter" `Quick test_half_perimeter;
        Alcotest.test_case "point compare" `Quick test_point_compare_total_order;
        Alcotest.test_case "point close" `Quick test_point_close ] ) ]
