(* Tests for the fault-tolerant delay-oracle stack: typed errors, the
   retry-with-refinement schedule, graceful SPICE -> first moment ->
   Elmore degradation, and fault injection. *)

open Geom

let tech = Circuit.Technology.table1

let two_pin_net length =
  Net.of_list [ Point.origin; Point.make length 0.0 ]

let random_routing seed pins =
  let g = Rng.create seed in
  Routing.mst_of_net (Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins)

let fast = Delay.Model.Spice Delay.Model.fast_spice

let counters () = Nontree_error.Counters.snapshot ()

(* Every test must leave injection off for whoever runs next. *)
let with_clean_faults f =
  Fault.disable ();
  Nontree_error.Counters.reset ();
  Fun.protect ~finally:Fault.disable f

(* Refinement schedule ------------------------------------------------- *)

let test_refine_schedule () =
  let base =
    { Delay.Model.options = Spice.Engine.fast_options;
      segmentation = Delay.Lumping.Fixed 2;
      include_inductance = false }
  in
  let steps c = c.Delay.Model.options.Spice.Engine.steps_per_chunk in
  Alcotest.(check bool)
    "attempt 1 is the unmodified config" true
    (Delay.Robust.refine_spice base ~attempt:1 = base);
  let a2 = Delay.Robust.refine_spice base ~attempt:2 in
  Alcotest.(check int) "attempt 2 doubles steps" (2 * steps base) (steps a2);
  Alcotest.(check bool) "attempt 2 adds 2 segments" true
    (a2.Delay.Model.segmentation = Delay.Lumping.Fixed 4);
  let a3 = Delay.Robust.refine_spice base ~attempt:3 in
  Alcotest.(check int) "attempt 3 quadruples steps" (4 * steps base) (steps a3);
  Alcotest.(check bool) "attempt 3 adds 4 segments" true
    (a3.Delay.Model.segmentation = Delay.Lumping.Fixed 6);
  let per =
    { base with
      Delay.Model.segmentation =
        Delay.Lumping.Per_length { unit_length = 1000.0; max_segments = 6 } }
  in
  let p3 = Delay.Robust.refine_spice per ~attempt:3 in
  Alcotest.(check bool) "per-length refinement quarters the unit" true
    (p3.Delay.Model.segmentation
    = Delay.Lumping.Per_length { unit_length = 250.0; max_segments = 10 })

let test_fallback_chain () =
  let tree = random_routing 3 8 in
  let u, v = List.hd (Routing.candidate_edges tree) in
  let graph = Routing.add_edge tree u v in
  Alcotest.(check bool) "spice on a tree" true
    (Delay.Robust.fallback_chain fast tree
    = [ Delay.Model.First_moment; Delay.Model.Elmore_tree ]);
  Alcotest.(check bool) "spice on a graph skips elmore" true
    (Delay.Robust.fallback_chain fast graph = [ Delay.Model.First_moment ]);
  Alcotest.(check bool) "first moment on a tree" true
    (Delay.Robust.fallback_chain Delay.Model.First_moment tree
    = [ Delay.Model.Elmore_tree ]);
  Alcotest.(check bool) "elmore has nowhere to go" true
    (Delay.Robust.fallback_chain Delay.Model.Elmore_tree tree = [])

(* Degradation order, scripted ----------------------------------------- *)

let test_scripted_degradation_order () =
  with_clean_faults (fun () ->
      let r = random_routing 5 8 in
      (* SPICE fails three times (all attempts), the first-moment
         fallback fails once, Elmore absorbs the evaluation. *)
      Fault.script
        [ Some Fault.Nan_value;
          Some Fault.Nan_value;
          Some Fault.Nan_value;
          Some Fault.Singular_stamp ];
      let delays = Delay.Robust.sink_delays_exn ~model:fast ~tech r in
      let s = counters () in
      Alcotest.(check int) "two refined retries" 2 s.retries;
      Alcotest.(check int) "one moment fallback" 1 s.moment_fallbacks;
      Alcotest.(check int) "one elmore fallback" 1 s.elmore_fallbacks;
      Alcotest.(check int) "four faults injected" 4 s.faults_injected;
      Alcotest.(check int) "all four survived" 4 s.faults_survived;
      Alcotest.(check int) "no oracle error" 0 s.oracle_errors;
      let elmore =
        Delay.Model.sink_delays Delay.Model.Elmore_tree ~tech r
      in
      Alcotest.(check bool) "result is the elmore evaluation" true
        (delays = elmore))

let test_bounded_retries () =
  with_clean_faults (fun () ->
      let r = random_routing 7 6 in
      Fault.script (List.init 10 (fun _ -> Some Fault.Nan_value));
      let policy = { Delay.Robust.max_attempts = 3; allow_fallback = false } in
      (match Delay.Robust.sink_delays ~policy ~model:fast ~tech r with
      | Ok _ -> Alcotest.fail "expected failure with fallback disabled"
      | Error (Nontree_error.Non_finite _) -> ()
      | Error e -> Alcotest.fail ("unexpected error " ^ Nontree_error.to_string e));
      let s = counters () in
      Alcotest.(check int) "exactly max_attempts - 1 retries" 2 s.retries;
      Alcotest.(check int) "one draw per attempt" 3 s.faults_injected;
      Alcotest.(check int) "nothing survived" 0 s.faults_survived;
      Alcotest.(check int) "counted as oracle error" 1 s.oracle_errors)

let test_invalid_net_never_retried () =
  with_clean_faults (fun () ->
      let tree = random_routing 9 6 in
      let u, v = List.hd (Routing.candidate_edges tree) in
      let graph = Routing.add_edge tree u v in
      (match
         Delay.Robust.sink_delays ~model:Delay.Model.Elmore_tree ~tech graph
       with
      | Error (Nontree_error.Invalid_net _) -> ()
      | Ok _ -> Alcotest.fail "elmore on a graph must fail"
      | Error e -> Alcotest.fail ("unexpected error " ^ Nontree_error.to_string e));
      let s = counters () in
      Alcotest.(check int) "no retries on Invalid_net" 0 s.retries;
      Alcotest.(check int) "no fallbacks on Invalid_net" 0
        (s.moment_fallbacks + s.elmore_fallbacks))

(* No faults => exactly the plain oracle -------------------------------- *)

let test_no_fault_identical_to_plain_oracle () =
  with_clean_faults (fun () ->
      let tree = random_routing 11 7 in
      let u, v = List.hd (Routing.candidate_edges tree) in
      let graph = Routing.add_edge tree u v in
      List.iter
        (fun r ->
          let robust = Delay.Robust.sink_delays_exn ~model:fast ~tech r in
          let plain = Delay.Model.sink_delays fast ~tech r in
          Alcotest.(check bool) "bit-identical delays" true (robust = plain))
        [ tree; graph ];
      let s = counters () in
      Alcotest.(check int) "no retries without faults" 0 s.retries;
      Alcotest.(check bool) "no events at all" false
        (Nontree_error.Counters.any ()))

let test_single_sink_net () =
  with_clean_faults (fun () ->
      let r = Routing.mst_of_net (two_pin_net 1500.0) in
      match Delay.Robust.sink_delays ~model:fast ~tech r with
      | Ok [ (1, d) ] ->
          Alcotest.(check bool) "finite positive delay" true
            (Float.is_finite d && d > 0.0)
      | Ok _ -> Alcotest.fail "expected exactly one sink"
      | Error e -> Alcotest.fail (Nontree_error.to_string e))

(* Fault module -------------------------------------------------------- *)

let test_fault_schedule_deterministic () =
  with_clean_faults (fun () ->
      let draws n = List.init n (fun _ -> Fault.draw ~stage:"spice") in
      Fault.enable_uniform ~rate:0.5 ~seed:77;
      let a = draws 200 in
      Fault.enable_uniform ~rate:0.5 ~seed:77;
      let b = draws 200 in
      Fault.enable_uniform ~rate:0.5 ~seed:78;
      let c = draws 200 in
      Alcotest.(check bool) "same seed, same schedule" true (a = b);
      Alcotest.(check bool) "schedule actually fires" true
        (List.exists Option.is_some a);
      Alcotest.(check bool) "different seed, different schedule" true (a <> c))

let test_fault_off_draws_nothing () =
  with_clean_faults (fun () ->
      Alcotest.(check bool) "inactive" false (Fault.active ());
      Alcotest.(check bool) "no draws when off" true
        (List.init 50 (fun _ -> Fault.draw ~stage:"spice")
        |> List.for_all Option.is_none);
      Alcotest.(check int) "no faults counted" 0 (counters ()).faults_injected)

(* Degenerate inputs never crash --------------------------------------- *)

let arb_grid_points =
  let open QCheck in
  let point =
    Gen.map
      (fun (x, y) ->
        Point.make (float_of_int x *. 400.0) (float_of_int y *. 400.0))
      Gen.(pair (int_range 0 3) (int_range 0 3))
  in
  make
    ~print:(fun pts ->
      String.concat "; " (List.map Point.to_string pts))
    Gen.(list_size (int_range 1 8) point)

(* Duplicate and collinear pins abound on a 4x4 grid; construction must
   answer Invalid_net (never Invalid_argument), and any net that does
   construct must evaluate to finite positive delays. *)
let prop_degenerate_nets_never_crash =
  QCheck.Test.make ~name:"degenerate nets: Ok or Invalid_net" ~count:120
    arb_grid_points (fun pts ->
      Fault.disable ();
      match Nontree.Oracle.net_of_points pts with
      | Error (Nontree_error.Invalid_net _) -> true
      | Error _ -> false
      | Ok net -> (
          let r = Routing.mst_of_net net in
          match
            Delay.Robust.sink_delays ~model:Delay.Model.First_moment ~tech r
          with
          | Ok ds -> List.for_all (fun (_, d) -> Float.is_finite d && d > 0.0) ds
          | Error _ -> true))

(* A Steiner point coincident with a pin creates a zero-length edge and
   an infinite conductance stamp; the robust path must degrade to
   Elmore rather than crash or return garbage. *)
let prop_zero_length_edges_never_crash =
  QCheck.Test.make ~name:"zero-length edges: robust oracle survives"
    ~count:30
    QCheck.(pair small_int (int_range 3 10))
    (fun (seed, pins) ->
      Fault.disable ();
      let r = random_routing seed pins in
      let pts = Routing.points r in
      let n = Array.length pts in
      let dup = Array.append pts [| pts.(1) |] in
      let edges =
        (1, n)
        :: List.map
             (fun (e : Graphs.Wgraph.edge) -> (e.u, e.v))
             (Graphs.Wgraph.edges (Routing.graph r))
      in
      let r' =
        Routing.with_points ~source:0
          ~num_terminals:(Routing.num_terminals r) dup edges
      in
      match
        Delay.Robust.sink_delays ~model:Delay.Model.First_moment ~tech r'
      with
      | Ok ds -> List.for_all (fun (_, d) -> Float.is_finite d && d > 0.0) ds
      | Error (Nontree_error.Invalid_net _) -> true
      | Error _ -> true)

(* Whole-run fault injection ------------------------------------------- *)

let test_probabilistic_run_completes () =
  with_clean_faults (fun () ->
      Fault.enable_uniform ~rate:0.3 ~seed:2024;
      let config =
        { Nontree.Experiment.default with trials = 2; sizes = [ 5 ] }
      in
      let rows = Harness.Runs.table2 config in
      let s = counters () in
      Alcotest.(check bool) "table rows produced" true (rows <> []);
      Alcotest.(check bool) "faults actually fired" true (s.faults_injected > 0);
      Alcotest.(check bool) "summary line available" true
        (Harness.Runs.robustness_summary () <> None))

let test_protect_net () =
  with_clean_faults (fun () ->
      (match
         Harness.Runs.protect_net ~what:"unit" (fun () ->
             Nontree_error.raise_error (Nontree_error.Invalid_net "broken"))
       with
      | None -> ()
      | Some _ -> Alcotest.fail "expected the net to be dropped");
      Alcotest.(check int) "drop counted" 1 (counters ()).dropped_nets;
      match Harness.Runs.protect_net ~what:"unit" (fun () -> 42) with
      | Some 42 -> ()
      | _ -> Alcotest.fail "healthy nets pass through")

let test_counters_summary_mentions_events () =
  with_clean_faults (fun () ->
      Alcotest.(check bool) "fresh counters are quiet" false
        (Nontree_error.Counters.any ());
      Nontree_error.Counters.incr_retries ();
      Alcotest.(check bool) "any() sees the retry" true
        (Nontree_error.Counters.any ());
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      let line = Nontree_error.Counters.summary () in
      Alcotest.(check bool) "summary mentions retries" true
        (contains line "1 retries"))

let suites =
  [ ( "robust",
      [ Alcotest.test_case "refinement schedule" `Quick test_refine_schedule;
        Alcotest.test_case "fallback chain" `Quick test_fallback_chain;
        Alcotest.test_case "scripted degradation order" `Quick
          test_scripted_degradation_order;
        Alcotest.test_case "bounded retries" `Quick test_bounded_retries;
        Alcotest.test_case "invalid net never retried" `Quick
          test_invalid_net_never_retried;
        Alcotest.test_case "no faults = plain oracle" `Quick
          test_no_fault_identical_to_plain_oracle;
        Alcotest.test_case "single-sink net" `Quick test_single_sink_net;
        Alcotest.test_case "fault schedule deterministic" `Quick
          test_fault_schedule_deterministic;
        Alcotest.test_case "fault off draws nothing" `Quick
          test_fault_off_draws_nothing;
        QCheck_alcotest.to_alcotest prop_degenerate_nets_never_crash;
        QCheck_alcotest.to_alcotest prop_zero_length_edges_never_crash;
        Alcotest.test_case "fault-injected table run completes" `Quick
          test_probabilistic_run_completes;
        Alcotest.test_case "protect_net" `Quick test_protect_net;
        Alcotest.test_case "counter summary" `Quick
          test_counters_summary_mentions_events ] ) ]
