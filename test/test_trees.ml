(* Tests for the baseline tree constructions (PD, BRBC) and metrics. *)

open Geom

let random_net seed pins =
  let g = Rng.create seed in
  Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins

(* Metrics -------------------------------------------------------------- *)

let path_net () =
  (* 0 -> 1 -> 2 in a straight line. *)
  Net.of_list [ Point.origin; Point.make 100.0 0.0; Point.make 300.0 0.0 ]

let test_metrics_path () =
  let r = Routing.mst_of_net (path_net ()) in
  Alcotest.(check (float 1e-9)) "radius" 300.0 (Trees.Metrics.radius r);
  Alcotest.(check (float 1e-9)) "avg path" 200.0
    (Trees.Metrics.average_sink_path r);
  Alcotest.(check (float 1e-9)) "no detour" 1.0 (Trees.Metrics.max_path_ratio r)

let test_metrics_detour () =
  (* Force a detour: connect sink 2 through sink 1 although it is
     close to the source. Pins: src (0,0), far (1000,0), near (990, 10):
     MST chains near to far. *)
  let net =
    Net.of_list
      [ Point.origin; Point.make 1000.0 0.0; Point.make 990.0 10.0 ]
  in
  let r = Routing.mst_of_net net in
  Alcotest.(check bool) "detour > 1" true (Trees.Metrics.max_path_ratio r > 1.0);
  let sum = Trees.Metrics.summary r in
  Alcotest.(check bool) "summary mentions radius" true
    (String.length sum > 0)

(* PD -------------------------------------------------------------------- *)

let test_pd_c0_is_mst () =
  let net = random_net 5 15 in
  let pd0 = Trees.Pd.construct ~c:0.0 net in
  let mst = Routing.mst_of_net net in
  Alcotest.(check (float 1e-6)) "same cost as MST" (Routing.cost mst)
    (Routing.cost pd0)

let test_pd_c1_is_spt () =
  (* With c = 1 every pin connects by a shortest path; in the geometric
     complete graph that is the star (up to ties). *)
  let net = random_net 6 12 in
  let pd1 = Trees.Pd.construct ~c:1.0 net in
  let dist = Trees.Metrics.source_path_lengths pd1 in
  let src = Net.source net in
  List.iter
    (fun v ->
      let direct = Point.manhattan src (Net.pin net v) in
      Alcotest.(check bool)
        (Printf.sprintf "sink %d direct" v)
        true
        (dist.(v) <= direct +. 1e-6))
    (Routing.sinks pd1)

let test_pd_rejects_bad_c () =
  let net = random_net 7 5 in
  Alcotest.check_raises "c too big"
    (Invalid_argument "Pd.construct: need 0 <= c <= 1") (fun () ->
      ignore (Trees.Pd.construct ~c:1.5 net))

let prop_pd_monotone_tradeoff =
  QCheck.Test.make ~name:"PD: radius shrinks, cost grows with c" ~count:30
    QCheck.(pair small_int (int_range 4 20))
    (fun (seed, pins) ->
      let net = random_net seed pins in
      let r0 = Trees.Pd.construct ~c:0.0 net in
      let r5 = Trees.Pd.construct ~c:0.5 net in
      let r1 = Trees.Pd.construct ~c:1.0 net in
      (* Ends of the spectrum are clean bounds; the middle must lie
         within them (with float slack). *)
      Routing.cost r0 <= Routing.cost r5 +. 1e-6
      && Routing.cost r5 <= Routing.cost r1 +. 1e-6
      && Trees.Metrics.radius r1 <= Trees.Metrics.radius r5 +. 1e-6
      && Trees.Metrics.radius r5 <= Trees.Metrics.radius r0 +. 1e-6)
      |> fun t -> t

let prop_pd_is_spanning_tree =
  QCheck.Test.make ~name:"PD produces spanning trees" ~count:30
    QCheck.(triple small_int (int_range 2 20) (float_bound_inclusive 1.0))
    (fun (seed, pins, c) ->
      let net = random_net seed pins in
      let r = Trees.Pd.construct ~c net in
      Routing.is_tree r && Routing.num_vertices r = pins)

(* BRBC ------------------------------------------------------------------ *)

let test_brbc_epsilon_zero_is_star_radius () =
  let net = random_net 8 12 in
  let r = Trees.Brbc.construct ~epsilon:0.0 net in
  let dist = Trees.Metrics.source_path_lengths r in
  let src = Net.source net in
  List.iter
    (fun v ->
      Alcotest.(check bool) "direct distance" true
        (dist.(v) <= Point.manhattan src (Net.pin net v) +. 1e-6))
    (Routing.sinks r)

let test_brbc_large_epsilon_is_mst () =
  let net = random_net 9 12 in
  let r = Trees.Brbc.construct ~epsilon:1e9 net in
  let mst = Routing.mst_of_net net in
  Alcotest.(check (float 1e-6)) "mst cost" (Routing.cost mst) (Routing.cost r)

let test_brbc_rejects_negative () =
  let net = random_net 10 5 in
  Alcotest.check_raises "negative eps"
    (Invalid_argument "Brbc.construct: epsilon < 0") (fun () ->
      ignore (Trees.Brbc.construct ~epsilon:(-0.5) net))

let prop_brbc_radius_bound =
  QCheck.Test.make ~name:"BRBC: radius <= (1+eps) * direct radius" ~count:40
    QCheck.(
      triple small_int (int_range 2 25) (float_bound_inclusive 2.0))
    (fun (seed, pins, epsilon) ->
      let net = random_net seed pins in
      let r = Trees.Brbc.construct ~epsilon net in
      Routing.is_tree r
      && Trees.Metrics.radius r
         <= Trees.Brbc.radius_bound ~epsilon net +. 1e-6)

let prop_brbc_cost_interpolates =
  QCheck.Test.make ~name:"BRBC cost between MST and reasonable bound" ~count:30
    QCheck.(pair small_int (int_range 3 20))
    (fun (seed, pins) ->
      let net = random_net seed pins in
      let mst_cost = Routing.cost (Routing.mst_of_net net) in
      let r = Trees.Brbc.construct ~epsilon:0.5 net in
      (* Theory: cost <= (1 + 2/eps) * mst = 5x here. *)
      Routing.cost r >= mst_cost -. 1e-6
      && Routing.cost r <= (5.0 *. mst_cost) +. 1e-6)

(* Delay sanity: under Elmore, the tradeoff trees should usually sit
   between the MST and the star in delay on spread-out nets. *)
let test_pd_improves_elmore_on_average () =
  let tech = Circuit.Technology.table1 in
  let total = ref 0.0 in
  let trials = 12 in
  for seed = 1 to trials do
    let net = random_net (seed * 3) 15 in
    let mst_d = Delay.Elmore.max_delay ~tech (Routing.mst_of_net net) in
    let pd_d = Delay.Elmore.max_delay ~tech (Trees.Pd.construct ~c:0.5 net) in
    total := !total +. (pd_d /. mst_d)
  done;
  let avg = !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "avg PD/MST elmore %.3f < 1" avg)
    true (avg < 1.0)

let suites =
  [ ( "trees",
      [ Alcotest.test_case "metrics path" `Quick test_metrics_path;
        Alcotest.test_case "metrics detour" `Quick test_metrics_detour;
        Alcotest.test_case "pd c=0 is mst" `Quick test_pd_c0_is_mst;
        Alcotest.test_case "pd c=1 is spt" `Quick test_pd_c1_is_spt;
        Alcotest.test_case "pd rejects bad c" `Quick test_pd_rejects_bad_c;
        QCheck_alcotest.to_alcotest prop_pd_monotone_tradeoff;
        QCheck_alcotest.to_alcotest prop_pd_is_spanning_tree;
        Alcotest.test_case "brbc eps=0 star radius" `Quick
          test_brbc_epsilon_zero_is_star_radius;
        Alcotest.test_case "brbc eps=inf is mst" `Quick
          test_brbc_large_epsilon_is_mst;
        Alcotest.test_case "brbc rejects negative" `Quick
          test_brbc_rejects_negative;
        QCheck_alcotest.to_alcotest prop_brbc_radius_bound;
        QCheck_alcotest.to_alcotest prop_brbc_cost_interpolates;
        Alcotest.test_case "pd improves elmore" `Quick
          test_pd_improves_elmore_on_average ] ) ]
