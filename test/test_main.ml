let () =
  Alcotest.run "nontree"
    (List.concat
       [ Test_rng.suites;
         Test_geom.suites;
         Test_graphs.suites;
         Test_routing.suites;
         Test_numeric.suites;
         Test_circuit.suites;
         Test_spice.suites;
         Test_delay.suites;
         Test_steiner.suites;
         Test_ert.suites;
         Test_nontree.suites;
         Test_pool.suites;
         Test_prop.suites;
         Test_obs.suites;
         Test_harness.suites;
         Test_robust.suites;
         Test_trees.suites;
         Test_ac.suites;
         Test_plot.suites ])
