(* Tests for the table/figure harness and the net file format. *)

open Geom

(* A cheap config: first-moment evaluation, tiny trial counts. *)
let cheap_config =
  { Nontree.Experiment.default with
    trials = 4;
    sizes = [ 5; 8 ];
    eval_model = Delay.Model.First_moment;
    search_model = Delay.Model.First_moment }

let row d c pct =
  { Nontree.Stats.n = 4;
    all_delay = d;
    all_cost = c;
    pct_winners = pct;
    win_delay = Some d;
    win_cost = Some c }

(* Table rendering ------------------------------------------------------ *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

let test_render_groups_blocks () =
  let rows =
    [ { Harness.Table.label = "Iteration One"; size = 5; row = Some (row 0.9 1.2 50.0) };
      { Harness.Table.label = "Iteration One"; size = 10; row = Some (row 0.8 1.3 90.0) };
      { Harness.Table.label = "Iteration Two"; size = 5; row = None };
      { Harness.Table.label = "Iteration Two"; size = 10; row = Some (row 0.95 1.1 10.0) } ]
  in
  let text = Harness.Table.render ~title:"T" ~baseline:"MST" rows in
  Alcotest.(check bool) "has title" true (contains text "T\n");
  Alcotest.(check bool) "has NA row" true (contains text "NA");
  (* Iteration One must appear before Iteration Two. *)
  let idx s =
    let rec find i =
      if i + String.length s > String.length text then max_int
      else if String.sub text i (String.length s) = s then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "block order" true
    (idx "Iteration One" < idx "Iteration Two")

let test_render_simple_and_markdown () =
  let simple =
    Harness.Table.render_simple ~title:"S" ~baseline:"MST"
      [ (5, row 0.9 1.1 60.0); (10, row 0.8 1.2 80.0) ]
  in
  Alcotest.(check bool) "simple has data" true (contains simple "0.90");
  let md =
    Harness.Table.markdown ~title:"M" ~baseline:"MST"
      [ { Harness.Table.label = "x"; size = 5; row = Some (row 0.9 1.1 60.0) };
        { Harness.Table.label = "y"; size = 5; row = None } ]
  in
  Alcotest.(check bool) "md header" true (contains md "| Stage | Size |");
  Alcotest.(check bool) "md NA" true (contains md "| y | 5 | NA");
  Alcotest.(check bool) "md value" true (contains md "0.90")

(* Harness runs with the cheap oracle ----------------------------------- *)

let find_rows label rows =
  List.filter (fun r -> r.Harness.Table.label = label) rows

let test_table2_cheap () =
  let rows = Harness.Runs.table2 cheap_config in
  (* 2 iterations x 2 sizes. *)
  Alcotest.(check int) "row count" 4 (List.length rows);
  let iter1 = find_rows "Iteration One" rows in
  Alcotest.(check int) "iter1 rows" 2 (List.length iter1);
  List.iter
    (fun r ->
      match r.Harness.Table.row with
      | Some s ->
          Alcotest.(check bool) "iter1 delay <= 1" true
            (s.Nontree.Stats.all_delay <= 1.0 +. 1e-9);
          Alcotest.(check bool) "iter1 cost >= 1" true
            (s.Nontree.Stats.all_cost >= 1.0 -. 1e-9)
      | None -> ())
    iter1

let test_table5_cheap () =
  let h2, h3 = Harness.Runs.table5 cheap_config in
  Alcotest.(check int) "h2 sizes" 2 (List.length h2);
  Alcotest.(check int) "h3 sizes" 2 (List.length h3);
  List.iter
    (fun r ->
      match r.Harness.Table.row with
      | Some s ->
          (* H2/H3 add an edge unconditionally: cost strictly grows on
             nets where an edge was added. *)
          Alcotest.(check bool) "cost >= 1" true
            (s.Nontree.Stats.all_cost >= 1.0 -. 1e-9)
      | None -> Alcotest.fail "h2/h3 row missing")
    (h2 @ h3)

let test_table6_cheap () =
  let rows = Harness.Runs.table6 cheap_config in
  List.iter
    (fun r ->
      match r.Harness.Table.row with
      | Some s ->
          Alcotest.(check bool) "ERT improves delay on average" true
            (s.Nontree.Stats.all_delay < 1.05)
      | None -> Alcotest.fail "missing row")
    rows

let test_figure_machinery () =
  let f = Harness.Runs.figure2 cheap_config in
  Alcotest.(check int) "10 pins" 10 f.Harness.Runs.net_size;
  Alcotest.(check bool) "delay improved" true
    (f.Harness.Runs.final_delay < f.Harness.Runs.base_delay);
  Alcotest.(check bool) "cost grew" true
    (f.Harness.Runs.final_cost > f.Harness.Runs.base_cost);
  Alcotest.(check int) "stages = added edges" (List.length f.Harness.Runs.added)
    (List.length f.Harness.Runs.stages);
  let text = Harness.Runs.render_figure f in
  Alcotest.(check bool) "describes improvement" true
    (contains text "improvement");
  (* SVG output works. *)
  let dir = Filename.temp_file "figs" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let paths = Harness.Runs.save_figure_svgs ~dir f in
  Alcotest.(check int) "two svgs" 2 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check bool) "file exists" true (Sys.file_exists p);
      Sys.remove p)
    paths;
  Unix.rmdir dir

let test_extensions_render () =
  let tiny = { cheap_config with trials = 2 } in
  List.iter
    (fun (name, f) ->
      let text = f tiny in
      Alcotest.(check bool) (name ^ " non-empty") true (String.length text > 50))
    [ ("csorg", Harness.Runs.ext_csorg); ("wsorg", Harness.Runs.ext_wsorg);
      ("rlc", Harness.Runs.ext_rlc); ("trees", Harness.Runs.ext_trees);
      ("budget", Harness.Runs.ext_budget); ("prune", Harness.Runs.ext_prune) ]

(* Net files ------------------------------------------------------------- *)

let test_netfile_roundtrip () =
  let net =
    Net.of_list
      [ Point.make 0.5 1.25; Point.make 100.0 0.0; Point.make 3.75 9999.5 ]
  in
  match Netfile.of_string (Netfile.to_string net) with
  | Error e -> Alcotest.fail e
  | Ok net' ->
      Alcotest.(check bool) "pins identical" true (Net.pins net = Net.pins net')

let test_netfile_comments_and_blanks () =
  let text = "# header\n\n  0 0\n# middle\n10 20\n\n" in
  match Netfile.of_string text with
  | Error e -> Alcotest.fail e
  | Ok net -> Alcotest.(check int) "two pins" 2 (Net.size net)

let test_netfile_errors () =
  (match Netfile.of_string "0 0\n" with
  | Error e -> Alcotest.(check bool) "too few" true (contains e "two pins")
  | Ok _ -> Alcotest.fail "expected error");
  match Netfile.of_string "0 0\nnot numbers\n" with
  | Error e -> Alcotest.(check bool) "names line" true (contains e "line 2")
  | Ok _ -> Alcotest.fail "expected error"

let prop_netfile_roundtrip =
  QCheck.Test.make ~name:"netfile roundtrip on random nets" ~count:30
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, pins) ->
      let g = Rng.create seed in
      let net = Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins in
      match Netfile.of_string (Netfile.to_string net) with
      | Error _ -> false
      | Ok net' ->
          (* %.6g printing: coordinates agree to ~1e-4 um relative. *)
          Array.for_all2
            (fun (a : Point.t) (b : Point.t) ->
              abs_float (a.Point.x -. b.Point.x) < 0.5
              && abs_float (a.Point.y -. b.Point.y) < 0.5)
            (Net.pins net) (Net.pins net'))

let suites =
  [ ( "harness",
      [ Alcotest.test_case "render groups blocks" `Quick
          test_render_groups_blocks;
        Alcotest.test_case "render simple + markdown" `Quick
          test_render_simple_and_markdown;
        Alcotest.test_case "table2 (cheap oracle)" `Quick test_table2_cheap;
        Alcotest.test_case "table5 (cheap oracle)" `Quick test_table5_cheap;
        Alcotest.test_case "table6 (cheap oracle)" `Quick test_table6_cheap;
        Alcotest.test_case "figure machinery" `Quick test_figure_machinery;
        Alcotest.test_case "extensions render" `Quick test_extensions_render;
        Alcotest.test_case "netfile roundtrip" `Quick test_netfile_roundtrip;
        Alcotest.test_case "netfile comments" `Quick
          test_netfile_comments_and_blanks;
        Alcotest.test_case "netfile errors" `Quick test_netfile_errors;
        QCheck_alcotest.to_alcotest prop_netfile_roundtrip ] ) ]
