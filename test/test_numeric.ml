(* Tests for dense linear algebra. *)

open Numeric

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  Alcotest.(check (array (float 0.0))) "add" [| 5.0; 7.0; 9.0 |] (Vec.add a b);
  Alcotest.(check (array (float 0.0))) "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub a b);
  Alcotest.(check (float 0.0)) "dot" 32.0 (Vec.dot a b);
  Alcotest.(check (float 1e-12)) "norm2" (sqrt 14.0) (Vec.norm2 a);
  Alcotest.(check (float 0.0)) "norm_inf" 6.0 (Vec.norm_inf b);
  Alcotest.(check (float 0.0)) "max_abs_diff" 3.0 (Vec.max_abs_diff a b);
  let y = Array.copy b in
  Vec.axpy 2.0 a y;
  Alcotest.(check (array (float 0.0))) "axpy" [| 6.0; 9.0; 12.0 |] y;
  Alcotest.(check (float 0.0)) "lerp" 2.5 (Vec.lerp 2.0 3.0 0.5)

let test_matrix_basics () =
  let m = Matrix.create 2 3 in
  Matrix.set m 0 0 1.0;
  Matrix.add_to m 0 0 2.0;
  Matrix.update m 1 2 (fun x -> x +. 5.0);
  Alcotest.(check (float 0.0)) "set+add_to" 3.0 (Matrix.get m 0 0);
  Alcotest.(check (float 0.0)) "update" 5.0 (Matrix.get m 1 2);
  let t = Matrix.transpose m in
  Alcotest.(check int) "transpose rows" 3 (Matrix.rows t);
  Alcotest.(check (float 0.0)) "transpose entry" 5.0 (Matrix.get t 2 1)

let test_matrix_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  Alcotest.(check (float 0.0)) "c00" 19.0 (Matrix.get c 0 0);
  Alcotest.(check (float 0.0)) "c01" 22.0 (Matrix.get c 0 1);
  Alcotest.(check (float 0.0)) "c10" 43.0 (Matrix.get c 1 0);
  Alcotest.(check (float 0.0)) "c11" 50.0 (Matrix.get c 1 1)

let test_matrix_identity_mul () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Matrix.identity 2 in
  Alcotest.(check (float 0.0)) "I*A = A" 0.0
    (Matrix.max_abs (Matrix.sub (Matrix.mul i a) a))

let test_mul_vec () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 0.0))) "A*v" [| 5.0; 11.0 |]
    (Matrix.mul_vec a [| 1.0; 2.0 |])

let test_lu_known () =
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Lu.solve_matrix a [| 3.0; 5.0 |] in
  Alcotest.(check (float 1e-12)) "x0" 0.8 x.(0);
  Alcotest.(check (float 1e-12)) "x1" 1.4 x.(1)

let test_lu_pivoting_needed () =
  (* Zero top-left pivot forces a row swap. *)
  let a = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve_matrix a [| 2.0; 3.0 |] in
  Alcotest.(check (float 1e-12)) "x0" 3.0 x.(0);
  Alcotest.(check (float 1e-12)) "x1" 2.0 x.(1)

let test_lu_singular () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Lu.factor a with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_lu_try_factor_rank_deficient () =
  (* Rank-deficient within rounding: the pre-threshold code clamped the
     vanishing pivot to 1e-300 and returned garbage solutions. *)
  let a = Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 +. 1e-15 |] |] in
  (match Lu.try_factor a with
  | Error k -> Alcotest.(check int) "failing pivot column" 1 k
  | Ok _ -> Alcotest.fail "expected Error on a rank-deficient matrix");
  (match Lu.factor a with
  | exception Lu.Singular k -> Alcotest.(check int) "factor raises too" 1 k
  | _ -> Alcotest.fail "expected Singular");
  let nan_m = Matrix.of_arrays [| [| Float.nan; 0.0 |]; [| 0.0; 1.0 |] |] in
  (match Lu.try_factor nan_m with
  | Error k -> Alcotest.(check int) "non-finite input flag" (-1) k
  | Ok _ -> Alcotest.fail "expected Error on a NaN matrix");
  let inf_m =
    Matrix.of_arrays [| [| Float.infinity; 0.0 |]; [| 0.0; 1.0 |] |]
  in
  match Lu.try_factor inf_m with
  | Error k -> Alcotest.(check int) "infinite input flag" (-1) k
  | Ok _ -> Alcotest.fail "expected Error on an Inf matrix"

let test_lu_det () =
  let a = Matrix.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  Alcotest.(check (float 1e-12)) "det diag" 12.0 (Lu.det (Lu.factor a));
  let b = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  Alcotest.(check (float 1e-12)) "det swap" (-1.0) (Lu.det (Lu.factor b))

let test_lu_inverse () =
  let a = Matrix.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Lu.inverse a in
  let prod = Matrix.mul a inv in
  Alcotest.(check (float 1e-10)) "A * A^-1 = I" 0.0
    (Matrix.max_abs (Matrix.sub prod (Matrix.identity 2)))

(* Random diagonally-dominant systems are well conditioned, so the
   residual must be tiny. *)
let random_dd_system seed n =
  let g = Rng.create seed in
  let a = Matrix.create n n in
  for i = 0 to n - 1 do
    let row_sum = ref 0.0 in
    for j = 0 to n - 1 do
      if i <> j then begin
        let v = Rng.float_in g (-1.0) 1.0 in
        Matrix.set a i j v;
        row_sum := !row_sum +. abs_float v
      end
    done;
    Matrix.set a i i (!row_sum +. 1.0 +. Rng.float g 2.0)
  done;
  let b = Array.init n (fun _ -> Rng.float_in g (-10.0) 10.0) in
  (a, b)

let prop_lu_residual =
  QCheck.Test.make ~name:"LU solve residual small" ~count:60
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, n) ->
      let a, b = random_dd_system seed n in
      let x = Lu.solve_matrix a b in
      let r = Vec.sub (Matrix.mul_vec a x) b in
      Vec.norm_inf r < 1e-8)

let prop_lu_solve_in_place_matches =
  QCheck.Test.make ~name:"solve_in_place = solve" ~count:40
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let a, b = random_dd_system seed n in
      let f = Lu.factor a in
      let x1 = Lu.solve f b in
      let x2 = Array.copy b in
      Lu.solve_in_place f x2;
      Vec.max_abs_diff x1 x2 = 0.0)

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"inverse roundtrip" ~count:30
    QCheck.(pair small_int (int_range 1 15))
    (fun (seed, n) ->
      let a, _ = random_dd_system seed n in
      let inv = Lu.inverse a in
      Matrix.max_abs (Matrix.sub (Matrix.mul a inv) (Matrix.identity n)) < 1e-8)

let test_lu_rcond () =
  let id = Lu.factor (Matrix.identity 4) in
  Alcotest.(check (float 1e-9)) "identity is perfectly conditioned" 1.0
    (Lu.rcond id);
  let near = Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 +. 1e-8 |] |] in
  Alcotest.(check bool) "near-singular rcond is tiny" true
    (Lu.rcond (Lu.factor near) < 1e-6);
  let a, _ = random_dd_system 17 12 in
  let r = Lu.rcond (Lu.factor a) in
  Alcotest.(check bool) "well-conditioned system scores high" true
    (r > 1e-4 && r <= 1.0)

let prop_lu_transpose_solve =
  QCheck.Test.make ~name:"transpose solve residual small" ~count:40
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, n) ->
      let a, b = random_dd_system seed n in
      let f = Lu.factor a in
      let x = Array.copy b in
      Lu.solve_transpose_in_place f x;
      let r = Vec.sub (Matrix.mul_vec (Matrix.transpose a) x) b in
      Vec.norm_inf r < 1e-8)

let test_matrix_map_scale_frobenius () =
  let a = Matrix.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  Alcotest.(check (float 1e-12)) "frobenius" 5.0 (Matrix.frobenius a);
  let doubled = Matrix.scale 2.0 a in
  Alcotest.(check (float 0.0)) "scale" 8.0 (Matrix.get doubled 1 1);
  let negated = Matrix.map (fun x -> -.x) a in
  Alcotest.(check (float 0.0)) "map" (-3.0) (Matrix.get negated 0 0);
  Alcotest.(check (float 0.0)) "max_abs" 4.0 (Matrix.max_abs a)

let test_matrix_data_is_live () =
  let a = Matrix.create 2 2 in
  (Matrix.data a).(3) <- 7.0;
  Alcotest.(check (float 0.0)) "row-major live view" 7.0 (Matrix.get a 1 1)

let test_vec_small_helpers () =
  Alcotest.(check (array (float 0.0))) "make" [| 2.0; 2.0 |] (Vec.make 2 2.0);
  Alcotest.(check (array (float 0.0))) "zeros" [| 0.0 |] (Vec.zeros 1);
  let a = [| 1.0; 2.0 |] in
  let b = Vec.copy a in
  b.(0) <- 9.0;
  Alcotest.(check (float 0.0)) "copy is fresh" 1.0 a.(0);
  Alcotest.(check (array (float 0.0))) "scale" [| 2.0; 4.0 |] (Vec.scale 2.0 a)

let test_zmatrix_solve () =
  (* (1+i) x = 2  ->  x = 1 - i *)
  let m = Numeric.Zmatrix.create 1 1 in
  Numeric.Zmatrix.set m 0 0 { Complex.re = 1.0; im = 1.0 };
  let x = Numeric.Zmatrix.solve m [| { Complex.re = 2.0; im = 0.0 } |] in
  Alcotest.(check (float 1e-12)) "re" 1.0 x.(0).Complex.re;
  Alcotest.(check (float 1e-12)) "im" (-1.0) x.(0).Complex.im

let test_zmatrix_mul_and_roundtrip () =
  let g = Rng.create 55 in
  let n = 6 in
  let m = Numeric.Zmatrix.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v =
        { Complex.re = Rng.float_in g (-1.0) 1.0;
          im = Rng.float_in g (-1.0) 1.0 }
      in
      Numeric.Zmatrix.set m i j
        (if i = j then Complex.add v { Complex.re = 4.0; im = 0.0 } else v)
    done
  done;
  let b =
    Array.init n (fun _ ->
        { Complex.re = Rng.float_in g (-1.0) 1.0;
          im = Rng.float_in g (-1.0) 1.0 })
  in
  let x = Numeric.Zmatrix.solve m b in
  let r = Numeric.Zmatrix.mul_vec m x in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "residual small" true
        (Complex.norm (Complex.sub v b.(i)) < 1e-10))
    r

let test_zmatrix_singular () =
  let m = Numeric.Zmatrix.create 2 2 in
  (* Rank 1. *)
  Numeric.Zmatrix.set m 0 0 Complex.one;
  Numeric.Zmatrix.set m 0 1 Complex.one;
  Numeric.Zmatrix.set m 1 0 Complex.one;
  Numeric.Zmatrix.set m 1 1 Complex.one;
  match Numeric.Zmatrix.solve m [| Complex.one; Complex.zero |] with
  | exception Numeric.Zmatrix.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

(* Rank-1 updates (Woodbury) over a factored base ----------------------- *)

let test_lu_update_known () =
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let base = Lu.factor a in
  (* M = A + e0·e0ᵀ = [[3,1],[1,3]]; M·[1,1] = [4,4]. *)
  let u = [| 1.0; 0.0 |] in
  match Lu.Update.make base [ (1.0, u, Array.copy u) ] with
  | None -> Alcotest.fail "well-conditioned update reported degenerate"
  | Some up ->
      let x = Lu.Update.solve up [| 4.0; 4.0 |] in
      Alcotest.(check (float 1e-12)) "x0" 1.0 x.(0);
      Alcotest.(check (float 1e-12)) "x1" 1.0 x.(1);
      Alcotest.(check int) "rank" 1 (Lu.Update.rank up);
      Alcotest.(check int) "size" 2 (Lu.Update.size up)

let test_lu_update_zero_alpha_dropped () =
  let a = Matrix.of_arrays [| [| 2.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  let base = Lu.factor a in
  let u = [| 1.0; 1.0 |] in
  match Lu.Update.make base [ (0.0, u, Array.copy u) ] with
  | None -> Alcotest.fail "zero-alpha update reported degenerate"
  | Some up ->
      Alcotest.(check int) "rank 0" 0 (Lu.Update.rank up);
      let x = Lu.Update.solve up [| 2.0; 4.0 |] in
      Alcotest.(check (float 1e-12)) "x0" 1.0 x.(0);
      Alcotest.(check (float 1e-12)) "x1" 1.0 x.(1)

let test_lu_update_pad () =
  (* Base is 1x1 [[2]]; one padded unknown carrying only its own load:
     M = [[2,0],[0,3]]. The γI placeholder must cancel exactly. *)
  let base = Lu.factor (Matrix.of_arrays [| [| 2.0 |] |]) in
  let e1 = [| 0.0; 1.0 |] in
  match Lu.Update.make ~pad:1 base [ (3.0, e1, Array.copy e1) ] with
  | None -> Alcotest.fail "padded update reported degenerate"
  | Some up ->
      Alcotest.(check int) "extended size" 2 (Lu.Update.size up);
      let x = Lu.Update.solve up [| 2.0; 3.0 |] in
      Alcotest.(check (float 1e-12)) "head" 1.0 x.(0);
      Alcotest.(check (float 1e-12)) "pad" 1.0 x.(1)

let test_lu_update_singularising_rejected () =
  (* alpha = -1/(A⁻¹)₀₀ zeroes the Woodbury denominator: M is exactly
     singular and make must refuse. *)
  let base = Lu.factor (Matrix.of_arrays [| [| 4.0 |] |]) in
  let e0 = [| 1.0 |] in
  Alcotest.(check bool) "rejected" true
    (Lu.Update.make base [ (-4.0, e0, Array.copy e0) ] = None)

let test_lu_update_length_mismatch () =
  let base = Lu.factor (Matrix.of_arrays [| [| 1.0 |] |]) in
  let bad () =
    ignore (Lu.Update.make base [ (1.0, [| 1.0; 0.0 |], [| 1.0; 0.0 |]) ])
  in
  match bad () with
  | () -> Alcotest.fail "length mismatch accepted"
  | exception Invalid_argument _ -> ()

(* Sparse kernel and backend dispatch ----------------------------------- *)

let test_sparse_triplets_sum () =
  let t = Sparse.Triplets.create () in
  Sparse.Triplets.add t 0 0 1.0;
  Sparse.Triplets.add t 1 1 2.0;
  Sparse.Triplets.add t 0 0 0.5;
  Sparse.Triplets.add t 1 0 (-1.0);
  Alcotest.(check int) "length counts duplicates" 4 (Sparse.Triplets.length t);
  let csc = Sparse.Csc.of_triplets ~n:2 t in
  Alcotest.(check int) "nnz after summing" 3 (Sparse.Csc.nnz csc);
  let m = Sparse.Csc.to_matrix csc in
  Alcotest.(check (float 0.0)) "duplicates summed" 1.5 (Matrix.get m 0 0);
  Alcotest.(check (float 0.0)) "a11" 2.0 (Matrix.get m 1 1);
  Alcotest.(check (float 0.0)) "a10" (-1.0) (Matrix.get m 1 0);
  Alcotest.(check (float 0.0)) "absent entry" 0.0 (Matrix.get m 0 1);
  (* Replaying the triplet log into a dense matrix is the bit-identity
     contract the Mna materialisation relies on. *)
  let replay = Matrix.create 2 2 in
  Sparse.Triplets.iter t (fun i j v -> Matrix.add_to replay i j v);
  Alcotest.(check (float 0.0)) "replay matches csc" 0.0
    (Matrix.max_abs (Matrix.sub replay m))

let test_sparse_zero_diagonal_pivot () =
  (* A vsource-style MNA block [[g,1],[1,0]]: the branch row has a zero
     diagonal, so threshold pivoting must swap. *)
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  match Sparse.try_factor (Sparse.Csc.of_matrix a) with
  | Error k -> Alcotest.failf "factor failed at column %d" k
  | Ok f ->
      Alcotest.(check int) "size" 2 (Sparse.size f);
      let x = Sparse.solve f [| 3.0; 1.0 |] in
      Alcotest.(check (float 1e-12)) "x0" 1.0 x.(0);
      Alcotest.(check (float 1e-12)) "x1" 1.0 x.(1)

let test_sparse_singular_rejected () =
  (* Exact rank deficiency: elimination is exact in floats here, so the
     second pivot is exactly zero. *)
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  (match Sparse.try_factor (Sparse.Csc.of_matrix a) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on a rank-deficient matrix");
  (* A structurally empty column can never produce a pivot. *)
  let z = Matrix.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  (match Sparse.try_factor (Sparse.Csc.of_matrix z) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on an empty column");
  let nan_m = Matrix.of_arrays [| [| Float.nan; 0.0 |]; [| 0.0; 1.0 |] |] in
  match Sparse.try_factor (Sparse.Csc.of_matrix nan_m) with
  | Error k -> Alcotest.(check int) "non-finite input flag" (-1) k
  | Ok _ -> Alcotest.fail "expected Error on a NaN matrix"

let test_sparse_symbolic_reuse () =
  let a, b = random_dd_system 99 12 in
  let csc = Sparse.Csc.of_matrix a in
  let sym = Sparse.analyze csc in
  Alcotest.(check int) "symbolic size" 12 (Sparse.Symbolic.size sym);
  let order = Sparse.Symbolic.order sym in
  let seen = Array.make 12 false in
  Array.iter (fun c -> seen.(c) <- true) order;
  Alcotest.(check bool) "order is a permutation" true
    (Array.for_all Fun.id seen);
  match (Sparse.try_factor csc, Sparse.try_factor ~symbolic:sym csc) with
  | Ok f1, Ok f2 ->
      let x1 = Sparse.solve f1 b and x2 = Sparse.solve f2 b in
      Alcotest.(check (float 0.0)) "identical solves" 0.0
        (Vec.max_abs_diff x1 x2);
      let r = Vec.sub (Matrix.mul_vec a x1) b in
      Alcotest.(check bool) "residual small" true (Vec.norm_inf r < 1e-8);
      Alcotest.(check bool) "factor nnz at least the input diagonal" true
        (Sparse.factor_nnz f1 >= 12)
  | _ -> Alcotest.fail "well-conditioned system failed to factor"

let test_sparse_solve_with_buffer () =
  let a, b = random_dd_system 7 9 in
  match Sparse.try_factor (Sparse.Csc.of_matrix a) with
  | Error _ -> Alcotest.fail "factor failed"
  | Ok f ->
      let x = Sparse.solve f b in
      let y = Array.copy b in
      Sparse.solve_with ~work:(Array.make 9 0.0) f y;
      Alcotest.(check (float 0.0)) "solve_with = solve" 0.0
        (Vec.max_abs_diff x y);
      let z = Array.copy b in
      Sparse.solve_in_place f z;
      Alcotest.(check (float 0.0)) "solve_in_place = solve" 0.0
        (Vec.max_abs_diff x z)

let with_backend kind f =
  let prev = Backend.kind () in
  Backend.set_kind kind;
  Fun.protect ~finally:(fun () -> Backend.set_kind prev) f

let test_backend_kind_strings () =
  Alcotest.(check string) "sparse name" "sparse"
    (Backend.kind_to_string Backend.Sparse);
  Alcotest.(check string) "dense name" "dense"
    (Backend.kind_to_string Backend.Dense);
  Alcotest.(check bool) "sparse parses" true
    (Backend.kind_of_string "sparse" = Some Backend.Sparse);
  Alcotest.(check bool) "dense parses" true
    (Backend.kind_of_string "dense" = Some Backend.Dense);
  Alcotest.(check bool) "garbage rejected" true
    (Backend.kind_of_string "banded" = None)

let test_backend_solves_under_both_kinds () =
  let a, b = random_dd_system 23 10 in
  let reference = Lu.solve_matrix a b in
  List.iter
    (fun kind ->
      with_backend kind (fun () ->
          let x = Backend.solve (Backend.factor a) b in
          Alcotest.(check bool)
            (Backend.kind_to_string kind ^ " backend solves")
            true
            (Vec.max_abs_diff x reference < 1e-9)))
    [ Backend.Dense; Backend.Sparse ];
  Alcotest.(check bool) "kind restored" true (Backend.kind () = Backend.Sparse)

let test_backend_singular_parity () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  List.iter
    (fun kind ->
      with_backend kind (fun () ->
          match Backend.try_factor a with
          | Error _ -> ()
          | Ok _ ->
              Alcotest.failf "%s backend accepted a singular matrix"
                (Backend.kind_to_string kind)))
    [ Backend.Dense; Backend.Sparse ]

let suites =
  [ ( "numeric",
      [ Alcotest.test_case "vec ops" `Quick test_vec_ops;
        Alcotest.test_case "matrix basics" `Quick test_matrix_basics;
        Alcotest.test_case "matrix mul" `Quick test_matrix_mul;
        Alcotest.test_case "identity mul" `Quick test_matrix_identity_mul;
        Alcotest.test_case "mul_vec" `Quick test_mul_vec;
        Alcotest.test_case "lu known system" `Quick test_lu_known;
        Alcotest.test_case "lu pivoting" `Quick test_lu_pivoting_needed;
        Alcotest.test_case "lu singular" `Quick test_lu_singular;
        Alcotest.test_case "lu rank-deficient detection" `Quick
          test_lu_try_factor_rank_deficient;
        Alcotest.test_case "lu rcond" `Quick test_lu_rcond;
        Alcotest.test_case "lu det" `Quick test_lu_det;
        Alcotest.test_case "lu inverse" `Quick test_lu_inverse;
        Alcotest.test_case "lu update known" `Quick test_lu_update_known;
        Alcotest.test_case "lu update drops zero alpha" `Quick
          test_lu_update_zero_alpha_dropped;
        Alcotest.test_case "lu update pad" `Quick test_lu_update_pad;
        Alcotest.test_case "lu update rejects singularising term" `Quick
          test_lu_update_singularising_rejected;
        Alcotest.test_case "lu update length mismatch" `Quick
          test_lu_update_length_mismatch;
        QCheck_alcotest.to_alcotest prop_lu_residual;
        QCheck_alcotest.to_alcotest prop_lu_solve_in_place_matches;
        QCheck_alcotest.to_alcotest prop_inverse_roundtrip;
        QCheck_alcotest.to_alcotest prop_lu_transpose_solve;
        Alcotest.test_case "matrix map/scale/frobenius" `Quick
          test_matrix_map_scale_frobenius;
        Alcotest.test_case "matrix data view" `Quick test_matrix_data_is_live;
        Alcotest.test_case "vec helpers" `Quick test_vec_small_helpers;
        Alcotest.test_case "zmatrix 1x1 complex" `Quick test_zmatrix_solve;
        Alcotest.test_case "zmatrix residual" `Quick
          test_zmatrix_mul_and_roundtrip;
        Alcotest.test_case "zmatrix singular" `Quick test_zmatrix_singular;
        Alcotest.test_case "sparse triplets sum duplicates" `Quick
          test_sparse_triplets_sum;
        Alcotest.test_case "sparse zero-diagonal pivoting" `Quick
          test_sparse_zero_diagonal_pivot;
        Alcotest.test_case "sparse singular rejection" `Quick
          test_sparse_singular_rejected;
        Alcotest.test_case "sparse symbolic reuse" `Quick
          test_sparse_symbolic_reuse;
        Alcotest.test_case "sparse solve buffers agree" `Quick
          test_sparse_solve_with_buffer;
        Alcotest.test_case "backend kind strings" `Quick
          test_backend_kind_strings;
        Alcotest.test_case "backend solves under both kinds" `Quick
          test_backend_solves_under_both_kinds;
        Alcotest.test_case "backend singular parity" `Quick
          test_backend_singular_parity ] ) ]
