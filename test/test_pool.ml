(* Tests for the Domain work pool and the parallel oracle layer built
   on it: map ordering and exception determinism across worker counts,
   greedy traces identical between --jobs 1 and --jobs 4, and the
   oracle memo cache returning bit-identical values while actually
   being hit by the harness. *)

open Geom

let tech = Circuit.Technology.table1
let moment_model = Delay.Model.First_moment

exception Boom of int

(* The cache is process-global and off by default; every cache test
   must leave it that way for whoever runs next. *)
let with_cache f =
  Nontree.Oracle.Cache.reset ();
  Nontree.Oracle.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Nontree.Oracle.Cache.set_enabled false;
      Nontree.Oracle.Cache.reset ())
    f

let random_net seed pins =
  let g = Rng.create seed in
  Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins

let random_mst seed pins = Routing.mst_of_net (random_net seed pins)

(* Pool.map semantics ---------------------------------------------------- *)

let test_map_matches_list_map () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let xs = List.init 100 Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "%d jobs: 100 items in order" jobs)
            (List.map (fun x -> x * x) xs)
            (Pool.map pool (fun x -> x * x) xs);
          Alcotest.(check (list int))
            (Printf.sprintf "%d jobs: empty list" jobs)
            []
            (Pool.map pool (fun x -> x * x) []);
          Alcotest.(check (list int))
            (Printf.sprintf "%d jobs: singleton" jobs)
            [ 49 ]
            (Pool.map pool (fun x -> x * x) [ 7 ])))
    [ 1; 2; 3; 8 ]

let test_map_raises_lowest_index () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let raised =
            match
              Pool.map pool
                (fun i -> if i >= 37 then raise (Boom i) else i)
                (List.init 100 Fun.id)
            with
            | _ -> None
            | exception Boom i -> Some i
          in
          Alcotest.(check (option int))
            (Printf.sprintf "%d jobs: lowest failing index wins" jobs)
            (Some 37) raised))
    [ 1; 2; 4 ]

let test_nested_maps () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let inner i =
        Pool.map pool (fun j -> (10 * i) + j) (List.init 5 Fun.id)
      in
      Alcotest.(check (list (list int)))
        "inner maps on the same pool complete in order"
        (List.init 4 (fun i -> List.init 5 (fun j -> (10 * i) + j)))
        (Pool.map pool inner (List.init 4 Fun.id)))

let test_parallel_effects_all_land () =
  Pool.with_pool ~jobs:8 (fun pool ->
      let counter = Atomic.make 0 in
      ignore
        (Pool.map pool
           (fun _ -> Atomic.incr counter)
           (List.init 1000 Fun.id));
      Alcotest.(check int) "1000 increments, none lost" 1000
        (Atomic.get counter))

let test_map_after_shutdown () =
  let pool = Pool.create 4 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check (list int)) "caller finishes the job alone" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

(* Parallel greedy loops ------------------------------------------------- *)

let steps_of (trace : Nontree.Ldrg.trace) =
  List.map
    (fun (s : Nontree.Ldrg.step) ->
      ( s.Nontree.Ldrg.edge,
        s.Nontree.Ldrg.objective_before,
        s.Nontree.Ldrg.objective_after,
        s.Nontree.Ldrg.cost_before,
        s.Nontree.Ldrg.cost_after ))
    trace.Nontree.Ldrg.steps

let traces_identical a b =
  (* Bitwise float equality on purpose: the parallel run must evaluate
     the same candidates to the same values and pick the same winners,
     not merely land close. *)
  steps_of a = steps_of b
  && a.Nontree.Ldrg.evaluations = b.Nontree.Ldrg.evaluations
  && Routing.widths a.Nontree.Ldrg.final = Routing.widths b.Nontree.Ldrg.final

let prop_ldrg_trace_identical_under_jobs =
  QCheck.Test.make
    ~name:"LDRG: --jobs 4 trace structurally equal to sequential" ~count:10
    QCheck.(pair small_int (int_range 4 8))
    (fun (seed, pins) ->
      let mst = random_mst seed pins in
      let seq = Nontree.Ldrg.run ~model:moment_model ~tech mst in
      let par =
        Pool.with_pool ~jobs:4 (fun pool ->
            Nontree.Ldrg.run ~pool ~model:moment_model ~tech mst)
      in
      traces_identical seq par)

let test_ldrg_spice_trace_identical () =
  (* One fixed net under the SPICE oracle, where numeric noise would
     show up first if the parallel path perturbed evaluation at all. *)
  let mst = random_mst 42 8 in
  let model = Delay.Model.Spice Delay.Model.fast_spice in
  let seq = Nontree.Ldrg.run ~model ~tech mst in
  let par =
    Pool.with_pool ~jobs:4 (fun pool -> Nontree.Ldrg.run ~pool ~model ~tech mst)
  in
  Alcotest.(check bool) "SPICE traces identical" true (traces_identical seq par)

let test_h1_under_net_fanout () =
  (* H1 itself is serial; check that fanning nets out over a pool (as
     the harness does) reproduces the sequential traces. *)
  let nets = List.init 6 (fun i -> random_mst (100 + i) 6) in
  let run mst = Nontree.Heuristics.h1 ~model:moment_model ~tech mst in
  let seq = List.map run nets in
  let par = Pool.with_pool ~jobs:3 (fun pool -> Pool.map pool run nets) in
  Alcotest.(check bool) "h1 traces identical under fan-out" true
    (List.for_all2 traces_identical seq par)

let test_table_rows_identical_under_jobs () =
  let config jobs =
    { Nontree.Experiment.default with trials = 3; sizes = [ 5; 10 ]; jobs }
  in
  let rows jobs = Harness.Runs.table2 (config jobs) in
  Alcotest.(check bool) "table2 rows identical for jobs 1 and 2" true
    (rows 1 = rows 2)

(* Oracle memo cache ----------------------------------------------------- *)

let test_cache_bit_identical_and_hit () =
  with_cache (fun () ->
      let r = random_mst 7 6 in
      let direct = Delay.Robust.sink_delays_exn ~model:moment_model ~tech r in
      let first = Nontree.Oracle.Cache.sink_delays ~model:moment_model ~tech r in
      let second = Nontree.Oracle.Cache.sink_delays ~model:moment_model ~tech r in
      Alcotest.(check bool) "cached equals uncached, bit for bit" true
        (direct = first && first = second);
      let s = Nontree.Oracle.Cache.stats () in
      Alcotest.(check int) "one miss" 1 s.Nontree.Oracle.Cache.misses;
      Alcotest.(check int) "one hit" 1 s.Nontree.Oracle.Cache.hits;
      Alcotest.(check int) "one entry" 1 s.Nontree.Oracle.Cache.entries)

let test_cache_key_discriminates () =
  with_cache (fun () ->
      let r = random_mst 11 6 in
      let u, v = List.hd (Routing.candidate_edges r) in
      let grown = Routing.add_edge r u v in
      let (wu, wv), _ = List.hd (Routing.widths r) in
      let widened = Routing.set_width r wu wv 2.0 in
      ignore (Nontree.Oracle.Cache.max_delay ~model:moment_model ~tech r);
      ignore (Nontree.Oracle.Cache.max_delay ~model:moment_model ~tech grown);
      ignore (Nontree.Oracle.Cache.max_delay ~model:moment_model ~tech widened);
      ignore
        (Nontree.Oracle.Cache.max_delay
           ~model:(Delay.Model.Spice Delay.Model.fast_spice) ~tech r);
      let s = Nontree.Oracle.Cache.stats () in
      Alcotest.(check int)
        "edge set, widths and model all key separately (4 misses)" 4
        s.Nontree.Oracle.Cache.misses;
      Alcotest.(check int) "no spurious hits" 0 s.Nontree.Oracle.Cache.hits)

let test_cache_disabled_passthrough () =
  Nontree.Oracle.Cache.reset ();
  let r = random_mst 13 5 in
  ignore (Nontree.Oracle.Cache.sink_delays ~model:moment_model ~tech r);
  ignore (Nontree.Oracle.Cache.sink_delays ~model:moment_model ~tech r);
  let s = Nontree.Oracle.Cache.stats () in
  Alcotest.(check int) "disabled cache records nothing" 0
    (s.Nontree.Oracle.Cache.hits + s.Nontree.Oracle.Cache.misses
   + s.Nontree.Oracle.Cache.entries)

let test_cache_hit_by_harness () =
  with_cache (fun () ->
      let config =
        { Nontree.Experiment.default with trials = 3; sizes = [ 10 ] }
      in
      let with_cache_rows = Harness.Runs.table2 config in
      let s = Nontree.Oracle.Cache.stats () in
      Alcotest.(check bool)
        "iteration replay hits the search's cached evaluations" true
        (s.Nontree.Oracle.Cache.hits > 0);
      Nontree.Oracle.Cache.set_enabled false;
      let without_cache_rows = Harness.Runs.table2 config in
      Alcotest.(check bool) "rows identical with and without cache" true
        (with_cache_rows = without_cache_rows))

let suites =
  [ ( "pool",
      [ Alcotest.test_case "map = List.map, any worker count" `Quick
          test_map_matches_list_map;
        Alcotest.test_case "lowest-index exception" `Quick
          test_map_raises_lowest_index;
        Alcotest.test_case "nested maps" `Quick test_nested_maps;
        Alcotest.test_case "parallel effects all land" `Quick
          test_parallel_effects_all_land;
        Alcotest.test_case "map after shutdown" `Quick
          test_map_after_shutdown;
        QCheck_alcotest.to_alcotest prop_ldrg_trace_identical_under_jobs;
        Alcotest.test_case "spice trace identical under jobs" `Quick
          test_ldrg_spice_trace_identical;
        Alcotest.test_case "h1 under net fan-out" `Quick
          test_h1_under_net_fanout;
        Alcotest.test_case "table2 rows identical under jobs" `Quick
          test_table_rows_identical_under_jobs;
        Alcotest.test_case "cache bit-identical + hit" `Quick
          test_cache_bit_identical_and_hit;
        Alcotest.test_case "cache key discriminates" `Quick
          test_cache_key_discriminates;
        Alcotest.test_case "cache disabled passthrough" `Quick
          test_cache_disabled_passthrough;
        Alcotest.test_case "cache hit by harness" `Quick
          test_cache_hit_by_harness ] ) ]
