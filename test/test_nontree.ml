(* Tests for the core non-tree routing algorithms. *)

open Geom

let tech = Circuit.Technology.table1
let moment_model = Delay.Model.First_moment

let random_net seed pins =
  let g = Rng.create seed in
  Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins

let random_mst seed pins = Routing.mst_of_net (random_net seed pins)

(* Ldrg --------------------------------------------------------------- *)

let test_ldrg_no_improvement_possible () =
  (* Objective = wirelength: adding wire can only hurt, so LDRG must
     terminate immediately with the initial topology. *)
  let r = random_mst 1 8 in
  let trace = Nontree.Ldrg.run_objective ~objective:Routing.cost r in
  Alcotest.(check int) "no steps" 0 (List.length trace.Nontree.Ldrg.steps);
  Alcotest.(check (float 0.0)) "unchanged cost" (Routing.cost r)
    (Routing.cost trace.Nontree.Ldrg.final)

let test_ldrg_max_edges_cap () =
  (* Objective = negative cost: every addition "improves", so the cap
     is what stops it. *)
  let r = random_mst 2 6 in
  let trace =
    Nontree.Ldrg.run_objective ~max_edges:2
      ~objective:(fun r -> -.Routing.cost r)
      r
  in
  Alcotest.(check int) "two steps" 2 (List.length trace.Nontree.Ldrg.steps);
  Alcotest.(check int) "edges added" 2
    (Graphs.Wgraph.num_edges (Routing.graph trace.Nontree.Ldrg.final)
    - Graphs.Wgraph.num_edges (Routing.graph r))

let test_ldrg_steps_record_objective () =
  let r = random_mst 3 10 in
  let trace = Nontree.Ldrg.run ~model:moment_model ~tech r in
  List.iter
    (fun (s : Nontree.Ldrg.step) ->
      Alcotest.(check bool) "objective decreased" true
        (s.objective_after < s.objective_before);
      Alcotest.(check bool) "cost grew" true (s.cost_after > s.cost_before))
    trace.Nontree.Ldrg.steps;
  Alcotest.(check bool) "evaluations counted" true
    (trace.Nontree.Ldrg.evaluations > 0)

let test_ldrg_routing_after () =
  let r = random_mst 4 10 in
  let trace =
    Nontree.Ldrg.run_objective ~max_edges:3
      ~objective:(fun r -> -.Routing.cost r)
      r
  in
  let base_edges = Graphs.Wgraph.num_edges (Routing.graph r) in
  List.iteri
    (fun k _ ->
      let rk = Nontree.Ldrg.routing_after trace (k + 1) in
      Alcotest.(check int)
        (Printf.sprintf "after %d" (k + 1))
        (base_edges + k + 1)
        (Graphs.Wgraph.num_edges (Routing.graph rk)))
    trace.Nontree.Ldrg.steps;
  (* Beyond the step count: the final routing. *)
  let beyond = Nontree.Ldrg.routing_after trace 99 in
  Alcotest.(check (float 0.0)) "beyond = final"
    (Routing.cost trace.Nontree.Ldrg.final)
    (Routing.cost beyond)

let prop_ldrg_invariants =
  QCheck.Test.make ~name:"LDRG: delay never worse, topology stays sane"
    ~count:20
    QCheck.(pair small_int (int_range 4 12))
    (fun (seed, pins) ->
      let r = random_mst seed pins in
      let trace = Nontree.Ldrg.run ~model:moment_model ~tech r in
      let final = trace.Nontree.Ldrg.final in
      let d0 = Delay.Model.max_delay moment_model ~tech r in
      let d1 = Delay.Model.max_delay moment_model ~tech final in
      d1 <= d0 +. 1e-18
      && Graphs.Wgraph.is_connected (Routing.graph final)
      && Routing.num_vertices final = pins)

let test_ldrg_finds_improvement_somewhere () =
  (* The paper's core claim: for nets of 10+, LDRG usually beats the
     MST. Over a handful of seeds, at least one improvement of > 3 %
     must appear. *)
  let improved = ref 0 in
  for seed = 1 to 8 do
    let r = random_mst (seed * 17) 10 in
    let trace = Nontree.Ldrg.run ~model:moment_model ~tech r in
    let d0 = Delay.Model.max_delay moment_model ~tech r in
    let d1 = Delay.Model.max_delay moment_model ~tech trace.Nontree.Ldrg.final in
    if d1 < 0.97 *. d0 then incr improved
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/8 nets improved" !improved)
    true (!improved >= 4)

let test_ldrg_spice_oracle_small () =
  (* End-to-end with the real SPICE oracle on a small net. *)
  let r = random_mst 42 6 in
  let model = Delay.Model.Spice Delay.Model.fast_spice in
  let trace = Nontree.Ldrg.run ~max_edges:1 ~model ~tech r in
  let d0 = Delay.Model.max_delay model ~tech r in
  let d1 = Delay.Model.max_delay model ~tech trace.Nontree.Ldrg.final in
  Alcotest.(check bool) "not worse" true (d1 <= d0 +. 1e-15)

let test_ldrg_budgeted_respects_cap () =
  let r = random_mst 5 12 in
  let base_cost = Routing.cost r in
  List.iter
    (fun budget ->
      let trace =
        Nontree.Ldrg.run_budgeted ~max_cost_ratio:budget ~model:moment_model
          ~tech r
      in
      Alcotest.(check bool)
        (Printf.sprintf "cost within %.2fx" budget)
        true
        (Routing.cost trace.Nontree.Ldrg.final <= (budget *. base_cost) +. 1e-6))
    [ 1.0; 1.05; 1.1; 1.3 ]

let test_ldrg_budgeted_monotone () =
  (* A larger budget can only do at least as well: the looser search
     space contains the tighter one's greedy path is NOT guaranteed in
     general for greedy, but the trivial endpoints are: budget 1.0 adds
     nothing; unbounded equals plain LDRG. *)
  let r = random_mst 6 12 in
  let tight =
    Nontree.Ldrg.run_budgeted ~max_cost_ratio:1.0 ~model:moment_model ~tech r
  in
  Alcotest.(check int) "budget 1.0 adds nothing" 0
    (List.length tight.Nontree.Ldrg.steps);
  let unbounded =
    Nontree.Ldrg.run_budgeted ~max_cost_ratio:1e9 ~model:moment_model ~tech r
  in
  let plain = Nontree.Ldrg.run ~model:moment_model ~tech r in
  Alcotest.(check (float 1e-9)) "unbounded = plain"
    (Routing.cost plain.Nontree.Ldrg.final)
    (Routing.cost unbounded.Nontree.Ldrg.final)

let test_ldrg_budgeted_validation () =
  let r = random_mst 7 5 in
  Alcotest.check_raises "ratio < 1"
    (Invalid_argument "Ldrg.run_budgeted: max_cost_ratio < 1") (fun () ->
      ignore
        (Nontree.Ldrg.run_budgeted ~max_cost_ratio:0.9 ~model:moment_model
           ~tech r))

(* Prune ---------------------------------------------------------------- *)

let test_prune_mst_noop () =
  (* Every MST edge is a bridge; nothing is removable. *)
  let r = random_mst 8 10 in
  let trace = Nontree.Prune.run ~model:moment_model ~tech r in
  Alcotest.(check int) "no removals" 0
    (List.length trace.Nontree.Prune.removals);
  Alcotest.(check (float 0.0)) "unchanged" (Routing.cost r)
    (Routing.cost trace.Nontree.Prune.final)

let test_prune_reclaims_redundant_edge () =
  (* Square net with an added diagonal-ish shortcut: after adding a
     much better source wire, some edge should become removable under
     a generous tolerance. Construct explicitly: a long detour edge
     plus a direct shortcut covering the same sink. *)
  let net =
    Net.of_list
      [ Point.origin; Point.make 9000.0 0.0; Point.make 9000.0 1000.0 ]
  in
  (* Path 0-1-2 plus direct 0-2: the 0-1 edge only serves sink 1;
     but edge 1-2 becomes removable for sink 2 if delay tolerates. *)
  let r = Routing.add_edge (Routing.mst_of_net net) 0 2 in
  let trace = Nontree.Prune.run ~tolerance:0.2 ~model:moment_model ~tech r in
  Alcotest.(check bool) "some removal happened" true
    (trace.Nontree.Prune.removals <> []);
  Alcotest.(check bool) "still connected" true
    (Graphs.Wgraph.is_connected (Routing.graph trace.Nontree.Prune.final));
  Alcotest.(check bool) "cost dropped" true
    (Routing.cost trace.Nontree.Prune.final < Routing.cost r)

let test_prune_respects_tolerance () =
  let r = random_mst 9 10 in
  let ldrg = (Nontree.Ldrg.run ~model:moment_model ~tech r).Nontree.Ldrg.final in
  let d0 = Delay.Model.max_delay moment_model ~tech ldrg in
  let trace = Nontree.Prune.run ~tolerance:1e-3 ~model:moment_model ~tech ldrg in
  let d1 = Delay.Model.max_delay moment_model ~tech trace.Nontree.Prune.final in
  Alcotest.(check bool) "delay within tolerance" true
    (d1 <= d0 *. 1.001 +. 1e-18);
  Alcotest.(check bool) "cost never grows" true
    (Routing.cost trace.Nontree.Prune.final <= Routing.cost ldrg +. 1e-9)

(* Heuristics ---------------------------------------------------------- *)

let test_h1_keeps_mst_when_no_gain () =
  (* Two pins: the only possible edge already exists. *)
  let r = Routing.mst_of_net (Net.of_list [ Point.origin; Point.make 100.0 0.0 ]) in
  let trace = Nontree.Heuristics.h1 ~model:moment_model ~tech r in
  Alcotest.(check int) "no steps" 0 (List.length trace.Nontree.Ldrg.steps)

let test_h1_improves_or_stops () =
  let r = random_mst 11 12 in
  let trace = Nontree.Heuristics.h1 ~model:moment_model ~tech r in
  let d0 = Delay.Model.max_delay moment_model ~tech r in
  let d1 = Delay.Model.max_delay moment_model ~tech trace.Nontree.Ldrg.final in
  Alcotest.(check bool) "never worse" true (d1 <= d0 +. 1e-18);
  (* Every kept edge is source-incident. *)
  List.iter
    (fun (s : Nontree.Ldrg.step) ->
      Alcotest.(check int) "source edge" 0 (fst s.Nontree.Ldrg.edge))
    trace.Nontree.Ldrg.steps

let test_h1_max_iterations () =
  let r = random_mst 12 15 in
  let trace =
    Nontree.Heuristics.h1 ~max_iterations:1 ~model:moment_model ~tech r
  in
  Alcotest.(check bool) "at most one step" true
    (List.length trace.Nontree.Ldrg.steps <= 1)

let test_h2_adds_source_edge () =
  let r = random_mst 13 10 in
  match Nontree.Heuristics.h2 ~tech r with
  | r', Some (u, v) ->
      Alcotest.(check int) "from source" 0 u;
      Alcotest.(check bool) "edge present" true
        (Graphs.Wgraph.mem_edge (Routing.graph r') u v);
      Alcotest.(check bool) "cost grew" true (Routing.cost r' > Routing.cost r);
      (* H2 picks the worst Elmore sink. *)
      let delays = Delay.Elmore.delays ~tech r in
      let worst =
        List.fold_left
          (fun w s -> if delays.(s) > delays.(w) then s else w)
          1 (Routing.sinks r)
      in
      Alcotest.(check int) "worst sink" worst v
  | _, None -> Alcotest.fail "expected an edge on a 10-pin net"

let test_h2_none_when_adjacent () =
  let r = Routing.mst_of_net (Net.of_list [ Point.origin; Point.make 100.0 0.0 ]) in
  match Nontree.Heuristics.h2 ~tech r with
  | _, None -> ()
  | _, Some _ -> Alcotest.fail "no edge to add on a 2-pin net"

let test_h3_adds_source_edge () =
  let r = random_mst 14 10 in
  match Nontree.Heuristics.h3 ~tech r with
  | r', Some (u, v) ->
      Alcotest.(check int) "from source" 0 u;
      Alcotest.(check bool) "sink target" true (v >= 1 && v < 10);
      Alcotest.(check bool) "non-tree now" false (Routing.is_tree r')
  | _, None -> Alcotest.fail "expected an edge on a 10-pin net"

let test_h2_h3_unconditional () =
  (* Unlike H1, H2/H3 add their edge even when it hurts: find a net
     where the H2 edge increases first-moment delay and confirm the
     edge is still present. Over several seeds at size 5 (where the
     paper's Table 5 shows average delay ratios above 1.0) at least one
     such case must exist. *)
  let found_worse = ref false in
  for seed = 1 to 12 do
    let r = random_mst (seed * 23) 5 in
    match Nontree.Heuristics.h2 ~tech r with
    | r', Some _ ->
        let d0 = Delay.Model.max_delay moment_model ~tech r in
        let d1 = Delay.Model.max_delay moment_model ~tech r' in
        if d1 > d0 then found_worse := true
    | _, None -> ()
  done;
  Alcotest.(check bool) "H2 sometimes hurts and still applies" true
    !found_worse

(* Critical sink ------------------------------------------------------- *)

let test_critical_sink_vectors () =
  let net = random_net 15 6 in
  Alcotest.(check (array (float 0.0))) "uniform" (Array.make 5 1.0)
    (Nontree.Critical_sink.uniform net);
  let oh = Nontree.Critical_sink.one_hot net ~critical:3 in
  Alcotest.(check (float 0.0)) "hot" 1.0 oh.(2);
  Alcotest.(check (float 0.0)) "cold" 0.0 oh.(0);
  Alcotest.check_raises "bad index"
    (Invalid_argument "Critical_sink.one_hot: not a sink index") (fun () ->
      ignore (Nontree.Critical_sink.one_hot net ~critical:0))

let test_weighted_delay_reduces () =
  let net = random_net 16 10 in
  let r = Routing.mst_of_net net in
  let alphas = Nontree.Critical_sink.uniform net in
  let w0 =
    Nontree.Critical_sink.weighted_delay ~model:moment_model ~tech ~alphas r
  in
  Alcotest.(check bool) "positive" true (w0 > 0.0);
  let trace =
    Nontree.Critical_sink.ldrg ~model:moment_model ~tech ~alphas r
  in
  let w1 =
    Nontree.Critical_sink.weighted_delay ~model:moment_model ~tech ~alphas
      trace.Nontree.Ldrg.final
  in
  Alcotest.(check bool) "never worse" true (w1 <= w0 +. 1e-18)

let test_one_hot_ldrg_targets_sink () =
  (* With a one-hot objective, LDRG minimises that single sink's delay;
     the chosen sink must end up at least as fast as in the MST. *)
  let net = random_net 17 10 in
  let r = Routing.mst_of_net net in
  let critical = 4 in
  let alphas = Nontree.Critical_sink.one_hot net ~critical in
  let trace = Nontree.Critical_sink.ldrg ~model:moment_model ~tech ~alphas r in
  let d_before = (Delay.Moments.first_moments ~tech r).(critical) in
  let d_after =
    (Delay.Moments.first_moments ~tech trace.Nontree.Ldrg.final).(critical)
  in
  Alcotest.(check bool) "critical sink not slower" true
    (d_after <= d_before +. 1e-18)

(* Wire sizing --------------------------------------------------------- *)

let long_path_net () =
  (* A short source edge feeding a long downstream chain: halving the
     source edge's resistance saves Δr × C_downstream ≈ 32 ps while its
     added capacitance costs only r_d × Δc ≈ 18 ps, so greedy sizing
     must widen it. (With Table 1's 100 Ω driver, widening *long* edges
     loses: the added wire capacitance dominates.) *)
  Net.of_list
    [ Point.origin; Point.make 500.0 0.0; Point.make 6500.0 0.0;
      Point.make 12_500.0 0.0 ]

let test_wire_area () =
  let r = Routing.mst_of_net (long_path_net ()) in
  Alcotest.(check (float 1e-6)) "area = length at width 1" 12_500.0
    (Nontree.Wire_sizing.wire_area r);
  let r' = Routing.set_width r 0 1 2.0 in
  Alcotest.(check (float 1e-6)) "doubling first edge" 13_000.0
    (Nontree.Wire_sizing.wire_area r')

let test_size_greedy_improves () =
  let r = Routing.mst_of_net (long_path_net ()) in
  let model = Delay.Model.Elmore_tree in
  let d0 = Delay.Model.max_delay model ~tech r in
  let sized, changes = Nontree.Wire_sizing.size_greedy ~model ~tech r in
  let d1 = Delay.Model.max_delay model ~tech sized in
  Alcotest.(check bool) "some widening happened" true (changes <> []);
  Alcotest.(check bool) "delay reduced" true (d1 < d0);
  (* The source edge must be among the widened ones. *)
  Alcotest.(check bool) "source edge widened" true
    (Routing.width sized 0 1 > 1.0)

let test_size_greedy_validation () =
  let r = Routing.mst_of_net (long_path_net ()) in
  Alcotest.check_raises "widths must start at 1"
    (Invalid_argument "Wire_sizing: widths must start at 1") (fun () ->
      ignore
        (Nontree.Wire_sizing.size_greedy ~widths:[ 2.0; 3.0 ]
           ~model:Delay.Model.Elmore_tree ~tech r));
  Alcotest.check_raises "widths must increase"
    (Invalid_argument "Wire_sizing: widths must be strictly increasing")
    (fun () ->
      ignore
        (Nontree.Wire_sizing.size_greedy ~widths:[ 1.0; 3.0; 2.0 ]
           ~model:Delay.Model.Elmore_tree ~tech r))

let test_parallel_merge_equivalence () =
  (* Section 5.2: two parallel width-1 wires behave exactly like one
     width-2 wire. Verify with the simulator: an explicitly duplicated
     pi-network matches the width-2 lumped model. *)
  let open Circuit in
  let build ~parallel =
    let nl = Netlist.create () in
    let a = Netlist.node nl "a" in
    let b = Netlist.node nl "b" in
    Netlist.vsource nl a Netlist.ground
      (Waveform.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 });
    let drv = Netlist.node nl "drv" in
    Netlist.resistor nl ~name:"Rd" a drv 100.0;
    let r_wire = 60.0 and c_wire = 0.7e-12 in
    if parallel then begin
      (* Two identical RC pi wires drv->b. *)
      Netlist.resistor nl ~name:"Rw1" drv b r_wire;
      Netlist.resistor nl ~name:"Rw2" drv b r_wire;
      Netlist.capacitor nl ~name:"Cw1a" drv Netlist.ground (c_wire /. 2.0);
      Netlist.capacitor nl ~name:"Cw1b" b Netlist.ground (c_wire /. 2.0);
      Netlist.capacitor nl ~name:"Cw2a" drv Netlist.ground (c_wire /. 2.0);
      Netlist.capacitor nl ~name:"Cw2b" b Netlist.ground (c_wire /. 2.0)
    end
    else begin
      (* One width-2 wire: half resistance, double capacitance. *)
      Netlist.resistor nl ~name:"Rw" drv b (r_wire /. 2.0);
      Netlist.capacitor nl ~name:"Cwa" drv Netlist.ground c_wire;
      Netlist.capacitor nl ~name:"Cwb" b Netlist.ground c_wire
    end;
    Netlist.capacitor nl ~name:"Cl" b Netlist.ground 15.3e-15;
    nl
  in
  let delay nl =
    match Spice.Engine.threshold_delays nl ~probes:[ "b" ] ~horizon:1e-9 with
    | [ (_, Some t) ] -> t
    | _ -> Alcotest.fail "no crossing"
  in
  let t_par = delay (build ~parallel:true) in
  let t_wide = delay (build ~parallel:false) in
  Alcotest.(check bool)
    (Printf.sprintf "parallel %.4g = wide %.4g" t_par t_wide)
    true
    (abs_float (t_par -. t_wide) /. t_wide < 1e-9)

let test_merge_parallel_delay () =
  let r = Routing.mst_of_net (long_path_net ()) in
  let model = Delay.Model.Elmore_tree in
  let merged = Nontree.Wire_sizing.merge_parallel_delay ~model ~tech r (0, 1) in
  let direct =
    Delay.Model.max_delay model ~tech (Routing.set_width r 0 1 2.0)
  in
  Alcotest.(check (float 0.0)) "same as width 2" direct merged

(* Stats --------------------------------------------------------------- *)

let s d c = { Nontree.Stats.delay_ratio = d; cost_ratio = c }

let test_stats_summarize () =
  let row = Nontree.Stats.summarize [ s 0.8 1.2; s 1.0 1.0; s 0.9 1.1; s 1.1 1.3 ] in
  Alcotest.(check int) "n" 4 row.Nontree.Stats.n;
  Alcotest.(check (float 1e-9)) "all delay" 0.95 row.Nontree.Stats.all_delay;
  Alcotest.(check (float 1e-9)) "all cost" 1.15 row.Nontree.Stats.all_cost;
  Alcotest.(check (float 1e-9)) "pct" 50.0 row.Nontree.Stats.pct_winners;
  (match row.Nontree.Stats.win_delay with
  | Some d -> Alcotest.(check (float 1e-9)) "winners delay" 0.85 d
  | None -> Alcotest.fail "expected winners");
  match row.Nontree.Stats.win_cost with
  | Some c -> Alcotest.(check (float 1e-9)) "winners cost" 1.15 c
  | None -> Alcotest.fail "expected winners"

let test_stats_no_winners () =
  let row = Nontree.Stats.summarize [ s 1.0 1.0; s 1.2 1.5 ] in
  Alcotest.(check (float 0.0)) "pct 0" 0.0 row.Nontree.Stats.pct_winners;
  Alcotest.(check bool) "NA" true (row.Nontree.Stats.win_delay = None);
  let str = Format.asprintf "%a" Nontree.Stats.pp_row row in
  let contains_na s =
    let n = String.length s in
    let rec scan i = i + 2 <= n && (String.sub s i 2 = "NA" || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "prints NA" true (contains_na str)

let test_stats_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: no samples")
    (fun () -> ignore (Nontree.Stats.summarize []))

(* Experiment ----------------------------------------------------------- *)

let small_config =
  { Nontree.Experiment.default with
    trials = 4;
    sizes = [ 5 ];
    eval_model = moment_model;
    search_model = moment_model }

let test_experiment_nets_reproducible () =
  let a = Nontree.Experiment.nets small_config ~size:5 in
  let b = Nontree.Experiment.nets small_config ~size:5 in
  Alcotest.(check int) "count" 4 (Array.length a);
  Array.iteri
    (fun i net ->
      Alcotest.(check bool) "same pins" true (Net.pins net = Net.pins b.(i)))
    a

let test_experiment_sample () =
  let net = random_net 18 8 in
  let mst = Routing.mst_of_net net in
  let trace = Nontree.Ldrg.run ~model:moment_model ~tech mst in
  let sample =
    Nontree.Experiment.sample small_config ~baseline:mst
      ~routing:trace.Nontree.Ldrg.final
  in
  Alcotest.(check bool) "delay ratio <= 1" true
    (sample.Nontree.Stats.delay_ratio <= 1.0 +. 1e-9);
  Alcotest.(check bool) "cost ratio >= 1" true
    (sample.Nontree.Stats.cost_ratio >= 1.0 -. 1e-9)

let test_experiment_per_size_multi_padding () =
  (* Nets alternate between one and two samples; both rows must
     aggregate over every net. *)
  let i = ref 0 in
  let rows =
    Nontree.Experiment.per_size_multi small_config ~size:5 (fun _ ->
        incr i;
        if !i mod 2 = 0 then [ s 0.9 1.1 ] else [ s 0.8 1.2; s 0.7 1.3 ])
  in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (row : Nontree.Stats.row) ->
      Alcotest.(check int) "all nets" 4 row.Nontree.Stats.n)
    rows

let suites =
  [ ( "nontree",
      [ Alcotest.test_case "ldrg stops without gain" `Quick
          test_ldrg_no_improvement_possible;
        Alcotest.test_case "ldrg max_edges" `Quick test_ldrg_max_edges_cap;
        Alcotest.test_case "ldrg step records" `Quick
          test_ldrg_steps_record_objective;
        Alcotest.test_case "ldrg routing_after" `Quick test_ldrg_routing_after;
        QCheck_alcotest.to_alcotest prop_ldrg_invariants;
        Alcotest.test_case "ldrg finds improvements" `Quick
          test_ldrg_finds_improvement_somewhere;
        Alcotest.test_case "ldrg spice oracle" `Quick
          test_ldrg_spice_oracle_small;
        Alcotest.test_case "ldrg budgeted cap" `Quick
          test_ldrg_budgeted_respects_cap;
        Alcotest.test_case "ldrg budgeted endpoints" `Quick
          test_ldrg_budgeted_monotone;
        Alcotest.test_case "ldrg budgeted validation" `Quick
          test_ldrg_budgeted_validation;
        Alcotest.test_case "prune mst noop" `Quick test_prune_mst_noop;
        Alcotest.test_case "prune reclaims edge" `Quick
          test_prune_reclaims_redundant_edge;
        Alcotest.test_case "prune tolerance" `Quick test_prune_respects_tolerance;
        Alcotest.test_case "h1 keeps mst" `Quick test_h1_keeps_mst_when_no_gain;
        Alcotest.test_case "h1 improves or stops" `Quick
          test_h1_improves_or_stops;
        Alcotest.test_case "h1 max iterations" `Quick test_h1_max_iterations;
        Alcotest.test_case "h2 adds source edge" `Quick test_h2_adds_source_edge;
        Alcotest.test_case "h2 none when adjacent" `Quick
          test_h2_none_when_adjacent;
        Alcotest.test_case "h3 adds source edge" `Quick test_h3_adds_source_edge;
        Alcotest.test_case "h2/h3 unconditional" `Quick test_h2_h3_unconditional;
        Alcotest.test_case "critical sink vectors" `Quick
          test_critical_sink_vectors;
        Alcotest.test_case "weighted delay reduces" `Quick
          test_weighted_delay_reduces;
        Alcotest.test_case "one-hot ldrg targets sink" `Quick
          test_one_hot_ldrg_targets_sink;
        Alcotest.test_case "wire area" `Quick test_wire_area;
        Alcotest.test_case "size greedy improves" `Quick
          test_size_greedy_improves;
        Alcotest.test_case "size greedy validation" `Quick
          test_size_greedy_validation;
        Alcotest.test_case "parallel merge equivalence" `Quick
          test_parallel_merge_equivalence;
        Alcotest.test_case "merge parallel delay" `Quick
          test_merge_parallel_delay;
        Alcotest.test_case "stats summarize" `Quick test_stats_summarize;
        Alcotest.test_case "stats no winners" `Quick test_stats_no_winners;
        Alcotest.test_case "stats empty" `Quick test_stats_empty_rejected;
        Alcotest.test_case "experiment nets reproducible" `Quick
          test_experiment_nets_reproducible;
        Alcotest.test_case "experiment sample" `Quick test_experiment_sample;
        Alcotest.test_case "experiment multi padding" `Quick
          test_experiment_per_size_multi_padding ] ) ]
