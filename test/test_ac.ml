(* Tests for AC analysis against closed-form frequency responses. *)

open Circuit

let rc_lowpass () =
  (* R = 1 kΩ, C = 1 pF: f3dB = 1/(2 pi RC) ~ 159.155 MHz. *)
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl ~name:"Vin" inp Netlist.ground
    (Waveform.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 });
  Netlist.resistor nl inp out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  nl

let test_log_frequencies () =
  let fs = Spice.Ac.log_frequencies ~f_start:1.0 ~f_stop:1000.0 ~points_per_decade:1 in
  Alcotest.(check int) "4 points" 4 (List.length fs);
  Alcotest.(check (float 1e-9)) "first" 1.0 (List.hd fs);
  Alcotest.(check bool) "bad args rejected" true
    (try
       ignore (Spice.Ac.log_frequencies ~f_start:0.0 ~f_stop:1.0 ~points_per_decade:5);
       false
     with Invalid_argument _ -> true)

let test_rc_magnitude_analytic () =
  let nl = rc_lowpass () in
  let rc = 1e3 *. 1e-12 in
  let freqs = Spice.Ac.log_frequencies ~f_start:1e6 ~f_stop:1e10 ~points_per_decade:5 in
  let sweep = Spice.Ac.analyze nl ~source:"Vin" ~probe:"out" ~frequencies:freqs in
  List.iter
    (fun (p : Spice.Ac.point) ->
      let omega = 2.0 *. Float.pi *. p.Spice.Ac.freq_hz in
      let expected = 1.0 /. sqrt (1.0 +. ((omega *. rc) ** 2.0)) in
      let got = Complex.norm p.Spice.Ac.response in
      Alcotest.(check bool)
        (Printf.sprintf "|H| at %.3g Hz: %.5f vs %.5f" p.Spice.Ac.freq_hz got expected)
        true
        (abs_float (got -. expected) < 1e-9))
    sweep

let test_rc_phase_analytic () =
  let nl = rc_lowpass () in
  let rc = 1e3 *. 1e-12 in
  (* At the pole frequency the phase is -45 degrees. *)
  let f_pole = 1.0 /. (2.0 *. Float.pi *. rc) in
  match Spice.Ac.analyze nl ~source:"Vin" ~probe:"out" ~frequencies:[ f_pole ] with
  | [ p ] ->
      Alcotest.(check bool) "phase -45" true
        (abs_float (Spice.Ac.phase_deg p -. -45.0) < 0.01)
  | _ -> Alcotest.fail "one point expected"

let test_rc_bandwidth () =
  let nl = rc_lowpass () in
  let rc = 1e3 *. 1e-12 in
  let f3 = 1.0 /. (2.0 *. Float.pi *. rc) in
  let freqs =
    Spice.Ac.log_frequencies ~f_start:1e6 ~f_stop:1e10 ~points_per_decade:20
  in
  let sweep = Spice.Ac.analyze nl ~source:"Vin" ~probe:"out" ~frequencies:freqs in
  match Spice.Ac.bandwidth_3db sweep with
  | Some bw ->
      Alcotest.(check bool)
        (Printf.sprintf "bw %.4g vs %.4g" bw f3)
        true
        (abs_float (bw -. f3) /. f3 < 0.02)
  | None -> Alcotest.fail "expected a 3 dB point"

let test_rlc_resonance_peak () =
  (* Series RLC, underdamped: |H| peaks near the resonant frequency
     1/(2 pi sqrt(LC)) ~ 503 MHz, well above 1 (0 dB). *)
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let mid = Netlist.node nl "mid" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl ~name:"Vin" inp Netlist.ground (Waveform.Dc 0.0);
  Netlist.resistor nl inp mid 0.6324555;
  Netlist.inductor nl mid out 1e-9;
  Netlist.capacitor nl out Netlist.ground 1e-10;
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (1e-9 *. 1e-10)) in
  let freqs =
    Spice.Ac.log_frequencies ~f_start:(f0 /. 100.0) ~f_stop:(f0 *. 100.0)
      ~points_per_decade:40
  in
  let sweep = Spice.Ac.analyze nl ~source:"Vin" ~probe:"out" ~frequencies:freqs in
  let peak_f, peak_db =
    List.fold_left
      (fun (bf, bm) p ->
        let m = Spice.Ac.magnitude_db p in
        if m > bm then (p.Spice.Ac.freq_hz, m) else (bf, bm))
      (0.0, neg_infinity) sweep
  in
  (* Q = 1/(2 zeta) = 5 -> peak ~ 14 dB. *)
  Alcotest.(check bool)
    (Printf.sprintf "peak %.1f dB at %.3g Hz" peak_db peak_f)
    true
    (abs_float (peak_db -. 14.0) < 0.5 && abs_float (peak_f -. f0) /. f0 < 0.05)

let test_unknown_source_and_probe () =
  let nl = rc_lowpass () in
  Alcotest.(check bool) "unknown source" true
    (try
       ignore (Spice.Ac.analyze nl ~source:"Vxx" ~probe:"out" ~frequencies:[ 1e6 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown probe" true
    (try
       ignore (Spice.Ac.analyze nl ~source:"Vin" ~probe:"nope" ~frequencies:[ 1e6 ]);
       false
     with Invalid_argument _ -> true)

let test_other_sources_silenced () =
  (* A second source must be zeroed during the sweep of the first: the
     response equals the single-source case. *)
  let build extra =
    let nl = Netlist.create () in
    let inp = Netlist.node nl "in" in
    let out = Netlist.node nl "out" in
    Netlist.vsource nl ~name:"Vin" inp Netlist.ground (Waveform.Dc 0.0);
    Netlist.resistor nl inp out 1e3;
    Netlist.capacitor nl out Netlist.ground 1e-12;
    if extra then begin
      let aux = Netlist.node nl "aux" in
      Netlist.vsource nl ~name:"Vaux" aux Netlist.ground (Waveform.Dc 5.0);
      Netlist.resistor nl aux out 2e3
    end
    else begin
      (* Same resistive loading, grounded. *)
      let aux = Netlist.node nl "aux" in
      Netlist.resistor nl ~name:"Rload" aux out 2e3;
      Netlist.resistor nl ~name:"Rshort" aux Netlist.ground 1e-3
    end;
    nl
  in
  let f = [ 1e8 ] in
  let with_src = Spice.Ac.analyze (build true) ~source:"Vin" ~probe:"out" ~frequencies:f in
  let without = Spice.Ac.analyze (build false) ~source:"Vin" ~probe:"out" ~frequencies:f in
  match (with_src, without) with
  | [ a ], [ b ] ->
      Alcotest.(check bool) "zeroed source acts as short" true
        (Complex.norm (Complex.sub a.Spice.Ac.response b.Spice.Ac.response)
        < 1e-3)
  | _ -> Alcotest.fail "one point each"

let test_csv () =
  let nl = rc_lowpass () in
  let sweep = Spice.Ac.analyze nl ~source:"Vin" ~probe:"out" ~frequencies:[ 1e6; 1e7 ] in
  let csv = Spice.Ac.to_csv sweep in
  Alcotest.(check bool) "header + 2 rows" true
    (List.length (String.split_on_char '\n' (String.trim csv)) = 3)

(* The routing angle: a non-tree LDRG topology should have at least the
   bandwidth of the MST at its slowest sink (lower resistance, faster
   settling => wider band). *)
let test_routing_bandwidth_improves () =
  let tech = Circuit.Technology.table1 in
  let g = Rng.create 1721 in
  let net = Geom.Netgen.uniform g ~region:(Geom.Rect.square 10_000.0) ~pins:10 in
  let mst = Routing.mst_of_net net in
  let trace = Nontree.Ldrg.run ~model:Delay.Model.First_moment ~tech mst in
  let graph = trace.Nontree.Ldrg.final in
  if trace.Nontree.Ldrg.steps = [] then ()
  else begin
    (* Slowest MST sink by first moment. *)
    let worst =
      List.fold_left
        (fun (bv, bd) (v, d) -> if d > bd then (v, d) else (bv, bd))
        (1, 0.0)
        (Delay.Moments.sink_delays ~tech mst)
      |> fst
    in
    let bandwidth r =
      let nl, _ = Delay.Lumping.circuit_of_routing ~tech r in
      let freqs =
        Spice.Ac.log_frequencies ~f_start:1e6 ~f_stop:1e11 ~points_per_decade:10
      in
      let sweep =
        Spice.Ac.analyze nl ~source:"Vin"
          ~probe:(Delay.Lumping.vertex_node_name worst) ~frequencies:freqs
      in
      match Spice.Ac.bandwidth_3db sweep with
      | Some bw -> bw
      | None -> Alcotest.fail "no 3dB point"
    in
    let bw_mst = bandwidth mst and bw_graph = bandwidth graph in
    Alcotest.(check bool)
      (Printf.sprintf "bw %.3g -> %.3g" bw_mst bw_graph)
      true
      (bw_graph >= 0.95 *. bw_mst)
  end

let suites =
  [ ( "ac",
      [ Alcotest.test_case "log frequencies" `Quick test_log_frequencies;
        Alcotest.test_case "rc magnitude analytic" `Quick
          test_rc_magnitude_analytic;
        Alcotest.test_case "rc phase -45 at pole" `Quick test_rc_phase_analytic;
        Alcotest.test_case "rc 3dB bandwidth" `Quick test_rc_bandwidth;
        Alcotest.test_case "rlc resonance peak" `Quick test_rlc_resonance_peak;
        Alcotest.test_case "unknown source/probe" `Quick
          test_unknown_source_and_probe;
        Alcotest.test_case "other sources silenced" `Quick
          test_other_sources_silenced;
        Alcotest.test_case "csv" `Quick test_csv;
        Alcotest.test_case "routing bandwidth improves" `Quick
          test_routing_bandwidth_improves ] ) ]
