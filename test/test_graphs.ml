(* Tests for union-find, weighted graphs, MSTs, shortest paths and
   rooted-tree utilities. *)

open Graphs

let test_uf_basics () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union again" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "sets after union" 4 (Union_find.count uf)

let test_uf_transitive () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  Alcotest.(check bool) "0~2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "3~4" true (Union_find.same uf 3 4);
  Alcotest.(check bool) "0!~3" false (Union_find.same uf 0 3);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "0~4 after link" true (Union_find.same uf 0 4);
  Alcotest.(check int) "two sets left" 2 (Union_find.count uf)

let prop_uf_count_matches_components =
  QCheck.Test.make ~name:"union-find count = components" ~count:100
    QCheck.(pair (int_range 1 20) (small_list (pair (int_range 0 19) (int_range 0 19))))
    (fun (n, pairs) ->
      let pairs = List.filter (fun (a, b) -> a < n && b < n && a <> b) pairs in
      let uf = Union_find.create n in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* Count components by brute force on representative labels. *)
      let reps = List.sort_uniq compare (List.init n (Union_find.find uf)) in
      List.length reps = Union_find.count uf)

let test_wgraph_basics () =
  let g = Wgraph.of_edges 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0) ] in
  Alcotest.(check int) "vertices" 4 (Wgraph.num_vertices g);
  Alcotest.(check int) "edges" 3 (Wgraph.num_edges g);
  Alcotest.(check bool) "mem 1-2" true (Wgraph.mem_edge g 1 2);
  Alcotest.(check bool) "mem 2-1 symmetric" true (Wgraph.mem_edge g 2 1);
  Alcotest.(check bool) "no 0-3" false (Wgraph.mem_edge g 0 3);
  Alcotest.(check (float 0.0)) "weight" 2.0 (Wgraph.weight g 2 1);
  Alcotest.(check (float 0.0)) "total" 6.0 (Wgraph.total_weight g);
  Alcotest.(check int) "degree 1" 2 (Wgraph.degree g 1);
  Alcotest.(check bool) "connected" true (Wgraph.is_connected g);
  Alcotest.(check bool) "spanning tree" true (Wgraph.is_spanning_tree g)

let test_wgraph_rejects () =
  let g = Wgraph.of_edges 3 [ (0, 1, 1.0) ] in
  Alcotest.check_raises "self loop" (Invalid_argument "Wgraph.add_edge: self-loop")
    (fun () -> ignore (Wgraph.add_edge g 1 1 1.0));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Wgraph.add_edge: duplicate edge") (fun () ->
      ignore (Wgraph.add_edge g 1 0 1.0));
  Alcotest.check_raises "range" (Invalid_argument "Wgraph: vertex out of range")
    (fun () -> ignore (Wgraph.add_edge g 0 3 1.0))

let test_wgraph_remove () =
  let g = Wgraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0) ] in
  let g' = Wgraph.remove_edge g 0 2 in
  Alcotest.(check int) "edge removed" 2 (Wgraph.num_edges g');
  Alcotest.(check int) "original intact" 3 (Wgraph.num_edges g);
  Alcotest.check_raises "absent" Not_found (fun () ->
      ignore (Wgraph.remove_edge g' 0 2))

let test_wgraph_disconnected () =
  let g = Wgraph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check bool) "disconnected" false (Wgraph.is_connected g);
  Alcotest.(check bool) "not spanning tree" false (Wgraph.is_spanning_tree g)

(* A deterministic pseudo-random complete graph for MST cross checks. *)
let random_complete_weights seed n =
  let g = Rng.create seed in
  let w = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = 1.0 +. Rng.float g 100.0 in
      w.(i).(j) <- x;
      w.(j).(i) <- x
    done
  done;
  fun i j -> w.(i).(j)

let complete_graph n weight =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j, weight i j) :: !edges
    done
  done;
  Wgraph.of_edges n !edges

let test_mst_known () =
  (* Square with one diagonal: MST must avoid the heavy diagonal. *)
  let g =
    Wgraph.of_edges 4
      [ (0, 1, 1.0); (1, 2, 1.0); (2, 3, 1.0); (3, 0, 5.0); (0, 2, 4.0) ]
  in
  let t = Mst.kruskal g in
  Alcotest.(check bool) "spanning tree" true (Wgraph.is_spanning_tree t);
  Alcotest.(check (float 0.0)) "cost 3" 3.0 (Wgraph.total_weight t)

let prop_mst_algorithms_agree =
  QCheck.Test.make ~name:"prim = kruskal = prim_complete cost" ~count:50
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, n) ->
      let weight = random_complete_weights seed n in
      let g = complete_graph n weight in
      let c1 = Wgraph.total_weight (Mst.kruskal g) in
      let c2 = Wgraph.total_weight (Mst.prim g) in
      let c3 = Wgraph.total_weight (Mst.prim_complete ~n ~weight) in
      abs_float (c1 -. c2) < 1e-9 && abs_float (c1 -. c3) < 1e-9)

let prop_mst_leq_random_spanning_tree =
  QCheck.Test.make ~name:"MST cost <= random spanning tree cost" ~count:50
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let weight = random_complete_weights seed n in
      let mst_cost =
        Wgraph.total_weight (Mst.prim_complete ~n ~weight)
      in
      (* Random spanning tree: random permutation, attach each vertex to a
         random earlier vertex. *)
      let g = Rng.create (seed + 1) in
      let perm = Array.init n Fun.id in
      Rng.shuffle g perm;
      let cost = ref 0.0 in
      for i = 1 to n - 1 do
        let j = Rng.int g i in
        cost := !cost +. weight perm.(i) perm.(j)
      done;
      mst_cost <= !cost +. 1e-9)

let test_mst_disconnected_rejected () =
  let g = Wgraph.of_edges 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.check_raises "kruskal" (Invalid_argument "Mst.kruskal: graph is disconnected")
    (fun () -> ignore (Mst.kruskal g));
  Alcotest.check_raises "prim" (Invalid_argument "Mst.prim: graph is disconnected")
    (fun () -> ignore (Mst.prim g))

let test_dijkstra_known () =
  let g =
    Wgraph.of_edges 5
      [ (0, 1, 2.0); (1, 2, 2.0); (0, 3, 1.0); (3, 4, 1.0); (4, 2, 1.0) ]
  in
  let dist, _ = Paths.dijkstra g 0 in
  Alcotest.(check (float 1e-12)) "to 2 via bottom" 3.0 dist.(2);
  Alcotest.(check (float 1e-12)) "to 1" 2.0 dist.(1);
  Alcotest.(check (list int)) "path" [ 0; 3; 4; 2 ] (Paths.shortest_path g 0 2)

let test_dijkstra_unreachable () =
  let g = Wgraph.of_edges 3 [ (0, 1, 1.0) ] in
  let dist, _ = Paths.dijkstra g 0 in
  Alcotest.(check bool) "unreachable = inf" true (dist.(2) = infinity);
  Alcotest.check_raises "path raises" Not_found (fun () ->
      ignore (Paths.shortest_path g 0 2))

let test_hops () =
  let g = Wgraph.of_edges 4 [ (0, 1, 5.0); (1, 2, 5.0); (0, 3, 100.0) ] in
  let h = Paths.hops g 0 in
  Alcotest.(check int) "hop to 2" 2 h.(2);
  Alcotest.(check int) "hop to 3" 1 h.(3)

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"dijkstra distances obey edge relaxation" ~count:40
    QCheck.(pair small_int (int_range 2 15))
    (fun (seed, n) ->
      let weight = random_complete_weights seed n in
      let g = complete_graph n weight in
      let dist, _ = Paths.dijkstra g 0 in
      (* No edge can shortcut a computed distance. *)
      List.for_all
        (fun (e : Wgraph.edge) ->
          dist.(e.v) <= dist.(e.u) +. e.w +. 1e-9
          && dist.(e.u) <= dist.(e.v) +. e.w +. 1e-9)
        (Wgraph.edges g))

let test_rooted_structure () =
  (* Path 0-1-2 plus branch 1-3. *)
  let t =
    Wgraph.of_edges 4 [ (0, 1, 1.0); (1, 2, 2.0); (1, 3, 3.0) ]
  in
  let r = Rooted.of_tree t ~root:0 in
  Alcotest.(check int) "parent of 2" 1 r.Rooted.parent.(2);
  Alcotest.(check int) "parent of 0" (-1) r.Rooted.parent.(0);
  Alcotest.(check (float 0.0)) "depth of 3" 4.0 r.Rooted.depth.(3);
  Alcotest.(check (float 0.0)) "edge weight of 2" 2.0 r.Rooted.edge_weight.(2);
  Alcotest.(check (list int)) "path to root" [ 2; 1; 0 ]
    (Rooted.path_to_root r 2)

let test_rooted_subtree_sums () =
  let t =
    Wgraph.of_edges 5
      [ (0, 1, 1.0); (1, 2, 1.0); (1, 3, 1.0); (3, 4, 1.0) ]
  in
  let r = Rooted.of_tree t ~root:0 in
  let s = Rooted.fold_subtree_sums r (fun _ -> 1.0) in
  Alcotest.(check (float 0.0)) "whole tree" 5.0 s.(0);
  Alcotest.(check (float 0.0)) "subtree of 1" 4.0 s.(1);
  Alcotest.(check (float 0.0)) "leaf" 1.0 s.(2);
  Alcotest.(check (float 0.0)) "subtree of 3" 2.0 s.(3)

let test_rooted_rejects_nontree () =
  let g = Wgraph.of_edges 3 [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0) ] in
  Alcotest.check_raises "cycle" (Invalid_argument "Rooted.of_tree: not a spanning tree")
    (fun () -> ignore (Rooted.of_tree g ~root:0))

let prop_rooted_depth_is_dijkstra =
  QCheck.Test.make ~name:"rooted depth = tree shortest path" ~count:40
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let weight = random_complete_weights seed n in
      let t = Mst.prim_complete ~n ~weight in
      let r = Rooted.of_tree t ~root:0 in
      let dist, _ = Paths.dijkstra t 0 in
      Array.for_all Fun.id
        (Array.init n (fun v -> abs_float (dist.(v) -. r.Rooted.depth.(v)) < 1e-9)))

let test_fold_edges_and_tree_path () =
  let g = Wgraph.of_edges 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0) ] in
  let total = Wgraph.fold_edges (fun e acc -> acc +. e.Wgraph.w) g 0.0 in
  Alcotest.(check (float 0.0)) "fold sums weights" 6.0 total;
  Alcotest.(check (list int)) "tree path" [ 0; 1; 2; 3 ] (Paths.tree_path g 0 3)

let test_path_length () =
  let g = Wgraph.of_edges 3 [ (0, 1, 5.0); (1, 2, 7.0) ] in
  Alcotest.(check (float 0.0)) "length" 12.0 (Paths.path_length g 0 2)

let suites =
  [ ( "graphs",
      [ Alcotest.test_case "union-find basics" `Quick test_uf_basics;
        Alcotest.test_case "union-find transitive" `Quick test_uf_transitive;
        QCheck_alcotest.to_alcotest prop_uf_count_matches_components;
        Alcotest.test_case "wgraph basics" `Quick test_wgraph_basics;
        Alcotest.test_case "wgraph rejects bad edges" `Quick test_wgraph_rejects;
        Alcotest.test_case "wgraph remove" `Quick test_wgraph_remove;
        Alcotest.test_case "wgraph disconnected" `Quick test_wgraph_disconnected;
        Alcotest.test_case "mst known" `Quick test_mst_known;
        QCheck_alcotest.to_alcotest prop_mst_algorithms_agree;
        QCheck_alcotest.to_alcotest prop_mst_leq_random_spanning_tree;
        Alcotest.test_case "mst disconnected rejected" `Quick
          test_mst_disconnected_rejected;
        Alcotest.test_case "dijkstra known" `Quick test_dijkstra_known;
        Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
        Alcotest.test_case "hops" `Quick test_hops;
        QCheck_alcotest.to_alcotest prop_dijkstra_triangle;
        Alcotest.test_case "rooted structure" `Quick test_rooted_structure;
        Alcotest.test_case "rooted subtree sums" `Quick test_rooted_subtree_sums;
        Alcotest.test_case "rooted rejects non-tree" `Quick
          test_rooted_rejects_nontree;
        QCheck_alcotest.to_alcotest prop_rooted_depth_is_dijkstra;
        Alcotest.test_case "fold_edges + tree_path" `Quick
          test_fold_edges_and_tree_path;
        Alcotest.test_case "path_length" `Quick test_path_length ] ) ]
