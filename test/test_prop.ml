(* Property-based differential tests for the incremental (Woodbury)
   scoring stack.

   A small shrink-free harness on [lib/rng]: [check ~trials name prop]
   runs [prop] against [trials] independent seeded generators and, on
   the first failure, reports the trial index and the exact seed that
   reproduces it. No shrinking — the generators are parameterised
   small enough (n <= 9) that failing cases are directly readable. *)

let tech = Circuit.Technology.table1

let check ?(seed = 0xD1FF) ~trials name prop =
  for t = 0 to trials - 1 do
    let trial_seed = seed + (1_000_003 * t) in
    try prop (Rng.create trial_seed)
    with e ->
      Alcotest.failf "%s: trial %d failed (seed %d): %s" name t trial_seed
        (Printexc.to_string e)
  done

(* Seeded generators ---------------------------------------------------- *)

(* A random SPD-ish conductance matrix: the Laplacian of a random
   connected graph (spanning tree plus a few extra edges, conductances
   in [0.5, 2]) grounded by a positive diagonal load at every node —
   exactly the shape [Delay.Moments.conductance_matrix] produces, and
   comfortably well-conditioned at these sizes. *)
let gen_spd g n =
  let a = Numeric.Matrix.create n n in
  let connect i j =
    let c = Rng.float_in g 0.5 2.0 in
    Numeric.Matrix.add_to a i i c;
    Numeric.Matrix.add_to a j j c;
    Numeric.Matrix.add_to a i j (-.c);
    Numeric.Matrix.add_to a j i (-.c)
  in
  for i = 1 to n - 1 do
    connect i (Rng.int g i)
  done;
  for _ = 1 to n do
    let i = Rng.int g n and j = Rng.int g n in
    if i <> j then connect i j
  done;
  for i = 0 to n - 1 do
    Numeric.Matrix.add_to a i i (Rng.float_in g 0.1 1.0)
  done;
  a

let gen_vec g n = Array.init n (fun _ -> Rng.float_in g (-1.0) 1.0)

(* A rank-1 term with a magnitude away from zero, either sign. *)
let gen_term g n =
  let alpha = Rng.float_in g 0.1 2.0 in
  let alpha = if Rng.bool g then alpha else -.alpha in
  (alpha, gen_vec g n, gen_vec g n)

let gen_net g =
  let pins = Rng.int_in g 4 9 in
  Geom.Netgen.uniform g ~region:(Geom.Rect.square 10_000.0) ~pins

(* Dense reference: the represented matrix, built explicitly. *)
let dense_of base_matrix ~pad terms =
  let n0 = Numeric.Matrix.rows base_matrix in
  let nt = n0 + pad in
  let m = Numeric.Matrix.create nt nt in
  for i = 0 to n0 - 1 do
    for j = 0 to n0 - 1 do
      Numeric.Matrix.set m i j (Numeric.Matrix.get base_matrix i j)
    done
  done;
  List.iter
    (fun (alpha, u, v) ->
      for i = 0 to nt - 1 do
        for j = 0 to nt - 1 do
          Numeric.Matrix.add_to m i j (alpha *. u.(i) *. v.(j))
        done
      done)
    terms;
  m

let rel_err x y =
  let scale = Float.max 1.0 (Numeric.Vec.norm_inf y) in
  Numeric.Vec.max_abs_diff x y /. scale

(* Differential properties ---------------------------------------------- *)

(* Woodbury solve vs a fresh LU of the summed matrix: 200 random
   (SPD-ish matrix, rank-1..3 update) pairs must agree to 1e-9
   relative. A degenerate [make] (None) is the documented fallback
   trigger, not a disagreement — the fresh path remains the oracle. *)
let prop_woodbury_matches_fresh g =
  let n = Rng.int_in g 2 8 in
  let a = gen_spd g n in
  let k = Rng.int_in g 1 3 in
  let terms = List.init k (fun _ -> gen_term g n) in
  let b = gen_vec g n in
  match Numeric.Lu.Update.make (Numeric.Lu.factor a) terms with
  | None -> ()
  | Some up ->
      let x = Numeric.Lu.Update.solve up b in
      let fresh = Numeric.Lu.solve_matrix (dense_of a ~pad:0 terms) b in
      let err = rel_err x fresh in
      if err > 1e-9 then
        Alcotest.failf "woodbury vs fresh: n=%d k=%d rel err %.3e" n k err

(* Same, with padded unknowns: the added terms chain through [pad]
   fresh unknowns the base matrix knows nothing about — the identity
   trick inside [Update.make] must be invisible in the solution. *)
let prop_woodbury_pad_matches_fresh g =
  let n = Rng.int_in g 2 6 in
  let pad = Rng.int_in g 1 3 in
  let nt = n + pad in
  let a = gen_spd g n in
  (* Chain n-1 -> p0 -> ... -> p_{pad-1} -> 0 with random conductances
     plus a ground load on every padded node, so the extended matrix is
     nonsingular. *)
  let terms = ref [] in
  let connect i j =
    let c = Rng.float_in g 0.5 2.0 in
    let w = Array.make nt 0.0 in
    w.(i) <- 1.0;
    w.(j) <- -1.0;
    terms := (c, w, Array.copy w) :: !terms
  in
  let chain = Array.init (pad + 2) (fun s ->
      if s = 0 then n - 1 else if s = pad + 1 then 0 else n + s - 1)
  in
  for s = 0 to pad do
    connect chain.(s) chain.(s + 1)
  done;
  for p = n to nt - 1 do
    let w = Array.make nt 0.0 in
    w.(p) <- 1.0;
    terms := (Rng.float_in g 0.1 1.0, w, Array.copy w) :: !terms
  done;
  let terms = !terms in
  let b = gen_vec g nt in
  match Numeric.Lu.Update.make ~pad (Numeric.Lu.factor a) terms with
  | None -> ()
  | Some up ->
      let x = Numeric.Lu.Update.solve up b in
      let fresh = Numeric.Lu.solve_matrix (dense_of a ~pad terms) b in
      let err = rel_err x fresh in
      if err > 1e-9 then
        Alcotest.failf "padded woodbury vs fresh: n=%d pad=%d rel err %.3e" n
          pad err

(* The deterministic near-singular construction: alpha = -1/(A⁻¹)ᵢᵢ
   makes the capacitance matrix S exactly zero at k=1, which [make]
   must detect and refuse — the fallback trigger of the scorer. *)
let prop_near_singular_rejected g =
  let n = Rng.int_in g 2 6 in
  let a = gen_spd g n in
  let lu = Numeric.Lu.factor a in
  let i = Rng.int g n in
  let e = Array.make n 0.0 in
  e.(i) <- 1.0;
  let x = Numeric.Lu.solve lu e in
  let alpha = -1.0 /. x.(i) in
  match Numeric.Lu.Update.make lu [ (alpha, e, Array.copy e) ] with
  | None -> ()
  | Some _ ->
      Alcotest.failf "singularising update accepted: n=%d i=%d alpha=%h" n i
        alpha

(* The moment stamp algebra end to end on random point nets: first
   moments of (MST + one candidate edge) computed through the
   incremental update must match [Delay.Moments.first_moments] of the
   rebuilt trial routing. *)
let prop_incremental_moments_match_rebuild g =
  let net = gen_net g in
  let r = Routing.mst_of_net net in
  match Routing.candidate_edges r with
  | [] -> ()
  | cands ->
      let u, v = List.nth cands (Rng.int g (List.length cands)) in
      let trial = Routing.add_edge r u v in
      let direct = Delay.Moments.first_moments ~tech trial in
      let lu =
        Numeric.Lu.factor (Delay.Moments.conductance_matrix ~tech r)
      in
      let n = Routing.num_vertices r in
      let length =
        Geom.Point.manhattan (Routing.point r u) (Routing.point r v)
      in
      let cond =
        1.0
        /. Circuit.Technology.wire_resistance_of tech ~length ~width:1.0
      in
      let cap =
        Circuit.Technology.wire_capacitance_of tech ~length ~width:1.0
      in
      let w = Array.make n 0.0 in
      w.(u) <- 1.0;
      w.(v) <- -1.0;
      let c = Delay.Moments.node_capacitances ~tech r in
      c.(u) <- c.(u) +. (cap /. 2.0);
      c.(v) <- c.(v) +. (cap /. 2.0);
      (match Numeric.Lu.Update.make lu [ (cond, w, Array.copy w) ] with
      | None -> Alcotest.fail "moment update unexpectedly degenerate"
      | Some up ->
          let m1 = Numeric.Lu.Update.solve up c in
          let err = rel_err m1 direct in
          if err > 1e-9 then
            Alcotest.failf "incremental m1 vs rebuild: edge (%d,%d) rel err %.3e"
              u v err)

(* Trace equality: LDRG with incremental scoring on picks the identical
   edge sequence, identical rounded objectives and the same evaluation
   count as with it off — on table-2-style nets under every supported
   model. *)

let with_incremental enabled f =
  let prev = Nontree.Incremental.enabled () in
  Nontree.Incremental.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Nontree.Incremental.set_enabled prev) f

let run_ldrg ~model r =
  Nontree.Oracle.Cache.reset ();
  Nontree.Ldrg.run ~model ~tech r

let trace_signature (t : Nontree.Ldrg.trace) =
  ( List.map (fun s -> s.Nontree.Ldrg.edge) t.Nontree.Ldrg.steps,
    List.map
      (fun s -> Printf.sprintf "%.6g" s.Nontree.Ldrg.objective_after)
      t.Nontree.Ldrg.steps,
    t.Nontree.Ldrg.evaluations )

let sig_testable =
  Alcotest.(triple (list (pair int int)) (list string) int)

let test_trace_equality model () =
  Fault.disable ();
  (* The table-2 size-5 batch: same seed derivation as the experiment
     harness (seed + 1_000_003 * size). *)
  let nets =
    Geom.Netgen.uniform_batch
      ~seed:(1994 + (1_000_003 * 5))
      ~region:(Geom.Rect.square tech.Circuit.Technology.layout_side)
      ~pins:5 ~trials:2
  in
  Array.iter
    (fun net ->
      let r = Routing.mst_of_net net in
      let off = with_incremental false (fun () -> run_ldrg ~model r) in
      let on = with_incremental true (fun () -> run_ldrg ~model r) in
      Alcotest.check sig_testable "identical trace" (trace_signature off)
        (trace_signature on))
    nets

(* Backend trace equality: the sparse and dense matrix backends pick
   the identical LDRG edge sequence, rounded objectives and evaluation
   count on table-2 nets — the in-process form of the byte-identical
   stdout guarantee behind [--matrix-backend]. *)

let with_backend kind f =
  let prev = Numeric.Backend.kind () in
  Numeric.Backend.set_kind kind;
  Fun.protect ~finally:(fun () -> Numeric.Backend.set_kind prev) f

let test_backend_trace_equality model () =
  Fault.disable ();
  let nets =
    Geom.Netgen.uniform_batch
      ~seed:(1994 + (1_000_003 * 5))
      ~region:(Geom.Rect.square tech.Circuit.Technology.layout_side)
      ~pins:5 ~trials:2
  in
  Array.iter
    (fun net ->
      let r = Routing.mst_of_net net in
      let dense =
        with_backend Numeric.Backend.Dense (fun () -> run_ldrg ~model r)
      in
      let sparse =
        with_backend Numeric.Backend.Sparse (fun () -> run_ldrg ~model r)
      in
      Alcotest.check sig_testable "identical trace across backends"
        (trace_signature dense) (trace_signature sparse))
    nets

(* The incremental path must actually engage (and not fall back) on a
   clean run — otherwise the trace tests above compare the plain path
   to itself. *)
let test_incremental_engages () =
  Fault.disable ();
  let net =
    Geom.Netgen.uniform (Rng.create 41)
      ~region:(Geom.Rect.square 10_000.0) ~pins:5
  in
  let r = Routing.mst_of_net net in
  let hits = Obs.Counter.make "oracle.incremental_hits" in
  let fallbacks = Obs.Counter.make "oracle.incremental_fallbacks" in
  let updates = Obs.Counter.make "lu.rank1_updates" in
  let h0 = Obs.Counter.value hits
  and f0 = Obs.Counter.value fallbacks
  and u0 = Obs.Counter.value updates in
  let model = Delay.Model.Spice Delay.Model.fast_spice in
  let trace = with_incremental true (fun () -> run_ldrg ~model r) in
  Alcotest.(check bool) "evaluated something" true (trace.evaluations > 0);
  Alcotest.(check bool) "incremental hits recorded" true
    (Obs.Counter.value hits - h0 > 0);
  Alcotest.(check int) "no fallbacks on a clean run" 0
    (Obs.Counter.value fallbacks - f0);
  Alcotest.(check bool) "rank-1 updates recorded" true
    (Obs.Counter.value updates - u0 > 0)

(* Sparse vs dense kernel differentials ---------------------------------- *)

(* A random stamped system, built through the triplet log the way [Mna]
   and [Moments] stamp: a random connected Laplacian plus ground loads.
   Duplicate stamps are deliberate — summation order is part of the
   contract. *)
let gen_stamped g n =
  let t = Numeric.Sparse.Triplets.create () in
  let connect i j =
    let c = Rng.float_in g 0.5 2.0 in
    Numeric.Sparse.Triplets.add t i i c;
    Numeric.Sparse.Triplets.add t j j c;
    Numeric.Sparse.Triplets.add t i j (-.c);
    Numeric.Sparse.Triplets.add t j i (-.c)
  in
  for i = 1 to n - 1 do
    connect i (Rng.int g i)
  done;
  for _ = 1 to n do
    let i = Rng.int g n and j = Rng.int g n in
    if i <> j then connect i j
  done;
  for i = 0 to n - 1 do
    Numeric.Sparse.Triplets.add t i i (Rng.float_in g 0.1 1.0)
  done;
  t

let materialize_triplets n t =
  let m = Numeric.Matrix.create n n in
  Numeric.Sparse.Triplets.iter t (fun i j v -> Numeric.Matrix.add_to m i j v);
  m

(* 200 random stamped systems through both kernels. Most trials are
   well-conditioned and must agree to 1e-9 relative; a slice injects an
   exactly-singular system (a node with no stamps at all — an empty
   row and column) or a non-finite stamp, where both kernels must
   refuse. Exact constructions only: borderline cases where threshold
   pivoting gives up but dense full pivoting does not are the
   documented job of [Backend]'s fallback, not a kernel property. *)
let prop_sparse_matches_dense g =
  let n = Rng.int_in g 2 9 in
  let roll = Rng.int g 8 in
  let stamped_n = if roll = 0 then n - 1 else n in
  let t = gen_stamped g (max 1 stamped_n) in
  if roll = 1 then
    Numeric.Sparse.Triplets.add t (Rng.int g stamped_n) (Rng.int g stamped_n)
      Float.nan;
  let csc = Numeric.Sparse.Csc.of_triplets ~n t in
  let dense = materialize_triplets n t in
  let dense_r = Numeric.Lu.try_factor dense in
  let sparse_r = Numeric.Sparse.try_factor csc in
  match (dense_r, sparse_r) with
  | Error dk, Error sk ->
      if roll > 1 then
        Alcotest.failf "both kernels rejected a clean system: n=%d" n;
      if roll = 1 && (dk <> -1 || sk <> -1) then
        Alcotest.failf "non-finite flags disagree: dense %d sparse %d" dk sk
  | Ok df, Ok sf ->
      if roll <= 1 then
        Alcotest.failf "both kernels accepted a defective system: n=%d roll=%d"
          n roll;
      let b = gen_vec g n in
      let xd = Numeric.Lu.solve df b in
      let xs = Numeric.Sparse.solve sf b in
      let err = rel_err xs xd in
      if err > 1e-9 then
        Alcotest.failf "sparse vs dense solve: n=%d rel err %.3e" n err
  | Ok _, Error k ->
      Alcotest.failf "sparse rejected (column %d) what dense accepted: n=%d" k n
  | Error k, Ok _ ->
      Alcotest.failf "sparse accepted what dense rejected (column %d): n=%d" k n

(* The fill-reducing ordering is a permutation of the columns for any
   pattern — asymmetric stamps, empty rows, disconnected components. *)
let prop_ordering_is_permutation g =
  let n = Rng.int_in g 1 12 in
  let t = Numeric.Sparse.Triplets.create () in
  let entries = Rng.int g (3 * n) in
  for _ = 1 to entries do
    Numeric.Sparse.Triplets.add t (Rng.int g n) (Rng.int g n)
      (Rng.float_in g (-1.0) 1.0)
  done;
  let sym = Numeric.Sparse.analyze (Numeric.Sparse.Csc.of_triplets ~n t) in
  let order = Numeric.Sparse.Symbolic.order sym in
  if Array.length order <> n then
    Alcotest.failf "order length %d <> n=%d" (Array.length order) n;
  let seen = Array.make n false in
  Array.iter
    (fun c ->
      if c < 0 || c >= n || seen.(c) then
        Alcotest.failf "not a permutation at column %d (n=%d)" c n;
      seen.(c) <- true)
    order

(* Incremental results land in the oracle cache under the same key the
   plain path uses: an incremental run followed by a cached plain run
   must be all hits. *)
let test_incremental_feeds_cache () =
  Fault.disable ();
  let net =
    Geom.Netgen.uniform (Rng.create 43)
      ~region:(Geom.Rect.square 10_000.0) ~pins:5
  in
  let r = Routing.mst_of_net net in
  let model = Delay.Model.First_moment in
  Nontree.Oracle.Cache.reset ();
  Nontree.Oracle.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Nontree.Oracle.Cache.set_enabled false;
      Nontree.Oracle.Cache.reset ())
    (fun () ->
      let on =
        with_incremental true (fun () -> Nontree.Ldrg.run ~model ~tech r)
      in
      let s1 = Nontree.Oracle.Cache.stats () in
      let off =
        with_incremental false (fun () -> Nontree.Ldrg.run ~model ~tech r)
      in
      let s2 = Nontree.Oracle.Cache.stats () in
      Alcotest.check sig_testable "same trace" (trace_signature on)
        (trace_signature off);
      Alcotest.(check int) "replay is all cache hits" 0
        (s2.Nontree.Oracle.Cache.misses - s1.Nontree.Oracle.Cache.misses))

let suites =
  [ ( "prop",
      [ Alcotest.test_case "woodbury matches fresh LU (200 pairs)" `Quick
          (fun () ->
            check ~trials:200 "woodbury-vs-fresh" prop_woodbury_matches_fresh);
        Alcotest.test_case "padded woodbury matches fresh LU" `Quick
          (fun () ->
            check ~trials:100 "padded-woodbury" prop_woodbury_pad_matches_fresh);
        Alcotest.test_case "near-singular updates rejected" `Quick
          (fun () ->
            check ~trials:100 "near-singular" prop_near_singular_rejected);
        Alcotest.test_case "incremental moments match rebuild" `Quick
          (fun () ->
            check ~trials:60 "moments-differential"
              prop_incremental_moments_match_rebuild);
        Alcotest.test_case "sparse matches dense (200 stamped systems)" `Quick
          (fun () ->
            check ~trials:200 "sparse-vs-dense" prop_sparse_matches_dense);
        Alcotest.test_case "sparse ordering is a permutation" `Quick
          (fun () ->
            check ~trials:200 "ordering-permutation"
              prop_ordering_is_permutation);
        Alcotest.test_case "backend trace equal, first-moment" `Quick
          (test_backend_trace_equality Delay.Model.First_moment);
        Alcotest.test_case "backend trace equal, two-pole" `Quick
          (test_backend_trace_equality Delay.Model.Two_pole);
        Alcotest.test_case "backend trace equal, spice" `Slow
          (test_backend_trace_equality
             (Delay.Model.Spice Delay.Model.fast_spice));
        Alcotest.test_case "ldrg trace equal, first-moment" `Quick
          (test_trace_equality Delay.Model.First_moment);
        Alcotest.test_case "ldrg trace equal, two-pole" `Quick
          (test_trace_equality Delay.Model.Two_pole);
        Alcotest.test_case "ldrg trace equal, spice" `Slow
          (test_trace_equality (Delay.Model.Spice Delay.Model.fast_spice));
        Alcotest.test_case "incremental path engages" `Slow
          test_incremental_engages;
        Alcotest.test_case "incremental feeds the oracle cache" `Quick
          test_incremental_feeds_cache ] ) ]
