(* Tests for the deterministic SplitMix64 generator. *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independent () =
  let g = Rng.create 7 in
  let g1 = Rng.split g in
  (* The split stream must not simply replay the parent stream. *)
  let parent = Array.init 32 (fun _ -> Rng.bits64 g) in
  let child = Array.init 32 (fun _ -> Rng.bits64 g1) in
  Alcotest.(check bool) "split differs from parent" true (parent <> child)

let test_copy_replays () =
  let g = Rng.create 99 in
  ignore (Rng.bits64 g);
  let h = Rng.copy g in
  Alcotest.(check int64) "copy replays" (Rng.bits64 g) (Rng.bits64 h)

let test_int_bounds () =
  let g = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int g 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let g = Rng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0))

let test_int_in_inclusive () =
  let g = Rng.create 5 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 2000 do
    let v = Rng.int_in g 3 5 in
    Alcotest.(check bool) "in range" true (v >= 3 && v <= 5);
    if v = 3 then seen_lo := true;
    if v = 5 then seen_hi := true
  done;
  Alcotest.(check bool) "endpoints reachable" true (!seen_lo && !seen_hi)

let test_float_bounds () =
  let g = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float g 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_float_mean () =
  let g = Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float g 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_shuffle_permutation () =
  let g = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_bool_balanced () =
  let g = Rng.create 17 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool g then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "balanced" true (abs_float (frac -. 0.5) < 0.03)

(* Regression guard for bin/netgen determinism: the same seed must
   yield a byte-identical net file (the CLI is Rng.create seed piped
   straight into the generator and Netfile.to_string). *)
let test_netgen_deterministic () =
  let region = Geom.Rect.square 10_000.0 in
  let render_uniform seed =
    Geom.Netfile.to_string
      (Geom.Netgen.uniform (Rng.create seed) ~region ~pins:10)
  in
  let render_clustered seed =
    Geom.Netfile.to_string
      (Geom.Netgen.clustered (Rng.create seed) ~region ~clusters:3 ~pins:12)
  in
  Alcotest.(check string) "uniform: same seed, same bytes"
    (render_uniform 3) (render_uniform 3);
  Alcotest.(check string) "clustered: same seed, same bytes"
    (render_clustered 7) (render_clustered 7);
  Alcotest.(check bool) "different seeds differ" true
    (render_uniform 3 <> render_uniform 4)

let prop_int_uniformish =
  QCheck.Test.make ~name:"rng: int covers all residues" ~count:50
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let g = Rng.create seed in
      let seen = Array.make n false in
      for _ = 1 to 200 * n do
        seen.(Rng.int g n) <- true
      done;
      Array.for_all Fun.id seen)

let suites =
  [ ( "rng",
      [ Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
        Alcotest.test_case "split independent" `Quick test_split_independent;
        Alcotest.test_case "copy replays" `Quick test_copy_replays;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int rejects bad bound" `Quick
          test_int_rejects_nonpositive;
        Alcotest.test_case "int_in inclusive" `Quick test_int_in_inclusive;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "float mean" `Quick test_float_mean;
        Alcotest.test_case "shuffle is permutation" `Quick
          test_shuffle_permutation;
        Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
        Alcotest.test_case "netgen output deterministic" `Quick
          test_netgen_deterministic;
        QCheck_alcotest.to_alcotest prop_int_uniformish ] ) ]
