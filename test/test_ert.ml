(* Tests for Elmore Routing Tree construction. *)

open Geom

let tech = Circuit.Technology.table1

let random_net seed pins =
  let g = Rng.create seed in
  Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins

let test_ert_two_pins () =
  let net = Net.of_list [ Point.origin; Point.make 500.0 0.0 ] in
  let t = Ert.construct ~tech net in
  Alcotest.(check bool) "tree" true (Routing.is_tree t);
  Alcotest.(check (float 1e-9)) "single wire" 500.0 (Routing.cost t)

let test_ert_star_is_mst () =
  (* Sinks in different quadrants around a central source: both MST and
     ERT must be the star. *)
  let net =
    Net.of_list
      [ Point.origin; Point.make 1000.0 0.0; Point.make (-1000.0) 10.0;
        Point.make 5.0 1000.0; Point.make (-3.0) (-1000.0) ]
  in
  let t = Ert.construct ~tech net in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "edge 0-%d" v)
        true
        (Graphs.Wgraph.mem_edge (Routing.graph t) 0 v))
    (Routing.sinks t)

let prop_ert_is_spanning_tree =
  QCheck.Test.make ~name:"ERT is a spanning tree over the net" ~count:40
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, pins) ->
      let net = random_net seed pins in
      let t = Ert.construct ~tech net in
      Routing.is_tree t && Routing.num_vertices t = pins)

let test_ert_beats_mst_elmore_on_average () =
  (* Boese et al.: ERT delay is well below MST delay on random nets,
     with the gap growing with size (Table 6: 0.94 at 5 pins down to
     0.71 at 30). Check the mean Elmore ratio over a batch. *)
  let trials = 15 in
  let sum = ref 0.0 in
  for seed = 1 to trials do
    let net = random_net (seed * 7) 15 in
    let mst = Routing.mst_of_net net in
    let ert = Ert.construct ~tech net in
    sum :=
      !sum
      +. (Delay.Elmore.max_delay ~tech ert /. Delay.Elmore.max_delay ~tech mst)
  done;
  let avg = !sum /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "avg ERT/MST elmore = %.3f" avg)
    true (avg < 0.95)

let test_ert_cost_above_mst () =
  (* ERT trades wire for delay: its cost is >= MST cost by definition
     of the MST, typically by ~20-30 %. *)
  let net = random_net 3 20 in
  let mst = Routing.mst_of_net net in
  let ert = Ert.construct ~tech net in
  Alcotest.(check bool) "cost >= MST" true
    (Routing.cost ert >= Routing.cost mst -. 1e-6);
  Alcotest.(check bool) "cost < 2x MST" true
    (Routing.cost ert < 2.0 *. Routing.cost mst)

let test_weighted_validation () =
  let net = random_net 5 6 in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Ert.construct_weighted: need one weight per sink")
    (fun () -> ignore (Ert.construct_weighted ~tech ~alphas:[| 1.0 |] net));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Ert.construct_weighted: negative criticality")
    (fun () ->
      ignore
        (Ert.construct_weighted ~tech
           ~alphas:[| 1.0; 1.0; -1.0; 1.0; 1.0 |]
           net))

let test_weighted_uniform_close_to_max () =
  (* With uniform weights the weighted ERT optimises average delay;
     it must still be a sane spanning tree with bounded cost. *)
  let net = random_net 9 12 in
  let alphas = Array.make (Net.num_sinks net) 1.0 in
  let t = Ert.construct_weighted ~tech ~alphas net in
  Alcotest.(check bool) "tree" true (Routing.is_tree t);
  let mst_cost = Routing.cost (Routing.mst_of_net net) in
  Alcotest.(check bool) "cost sane" true (Routing.cost t < 2.0 *. mst_cost)

let test_weighted_critical_sink_favoured () =
  (* A one-hot criticality should give that sink a delay no worse than
     it gets from the max-objective ERT, averaged over nets. *)
  let trials = 10 in
  let improved = ref 0 in
  for seed = 1 to trials do
    let net = random_net (seed * 13) 10 in
    let critical = 1 + (seed mod Net.num_sinks net) in
    let alphas = Array.make (Net.num_sinks net) 0.0 in
    alphas.(critical - 1) <- 1.0;
    let weighted = Ert.construct_weighted ~tech ~alphas net in
    let plain = Ert.construct ~tech net in
    let delay_of r v = (Delay.Moments.first_moments ~tech r).(v) in
    if delay_of weighted critical <= delay_of plain critical +. 1e-15 then
      incr improved
  done;
  Alcotest.(check bool)
    (Printf.sprintf "critical sink at least as fast in %d/%d nets" !improved trials)
    true
    (!improved >= 7)

let test_sert_c_direct_edge () =
  let net = random_net 21 10 in
  let critical = 4 in
  let t = Ert.construct_critical ~tech ~critical net in
  Alcotest.(check bool) "tree" true (Routing.is_tree t);
  Alcotest.(check bool) "critical wired to source" true
    (Graphs.Wgraph.mem_edge (Routing.graph t) 0 critical)

let test_sert_c_critical_fast () =
  (* The critical sink's delay under SERT-C should beat its delay under
     the plain max-objective ERT in most nets (it gets a direct wire
     plus attachments chosen in its favour). *)
  let trials = 10 in
  let wins = ref 0 in
  for seed = 1 to trials do
    let net = random_net (seed * 41) 12 in
    let critical = 1 + (seed mod Net.num_sinks net) in
    let sert = Ert.construct_critical ~tech ~critical net in
    let plain = Ert.construct ~tech net in
    let d r = (Delay.Moments.first_moments ~tech r).(critical) in
    if d sert <= d plain +. 1e-15 then incr wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "critical faster in %d/%d" !wins trials)
    true
    (!wins >= 7)

let test_sert_c_validation () =
  let net = random_net 22 6 in
  Alcotest.check_raises "bad index"
    (Invalid_argument "Ert.construct_critical: not a sink index") (fun () ->
      ignore (Ert.construct_critical ~tech ~critical:0 net))

let suites =
  [ ( "ert",
      [ Alcotest.test_case "two pins" `Quick test_ert_two_pins;
        Alcotest.test_case "star net" `Quick test_ert_star_is_mst;
        QCheck_alcotest.to_alcotest prop_ert_is_spanning_tree;
        Alcotest.test_case "beats MST elmore on average" `Quick
          test_ert_beats_mst_elmore_on_average;
        Alcotest.test_case "cost above MST" `Quick test_ert_cost_above_mst;
        Alcotest.test_case "weighted validation" `Quick test_weighted_validation;
        Alcotest.test_case "weighted uniform" `Quick
          test_weighted_uniform_close_to_max;
        Alcotest.test_case "weighted favours critical sink" `Quick
          test_weighted_critical_sink_favoured;
        Alcotest.test_case "sert-c direct edge" `Quick test_sert_c_direct_edge;
        Alcotest.test_case "sert-c critical fast" `Quick
          test_sert_c_critical_fast;
        Alcotest.test_case "sert-c validation" `Quick test_sert_c_validation
      ] ) ]
