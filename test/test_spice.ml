(* Tests validating the simulator against closed-form circuit theory. *)

open Circuit

let step01 = Waveform.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 }

(* A 1 kΩ / 1 pF low-pass: v(t) = 1 - exp(-t/RC), tau = 1 ns. *)
let rc_circuit () =
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl inp Netlist.ground step01;
  Netlist.resistor nl inp out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  nl

let test_dc_divider () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  let b = Netlist.node nl "b" in
  Netlist.vsource nl a Netlist.ground (Waveform.Dc 10.0);
  Netlist.resistor nl a b 3e3;
  Netlist.resistor nl b Netlist.ground 7e3;
  let v = List.assoc "b" (Spice.Engine.dc nl) in
  Alcotest.(check (float 1e-9)) "divider" 7.0 v

let test_dc_current_source () =
  (* 1 mA into 2 kΩ gives 2 V. *)
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.isource nl Netlist.ground a (Waveform.Dc 1e-3);
  Netlist.resistor nl a Netlist.ground 2e3;
  let v = List.assoc "a" (Spice.Engine.dc nl) in
  Alcotest.(check (float 1e-9)) "IR" 2.0 v

let test_dc_inductor_short () =
  (* At DC an inductor is a short: the divider sees only R2. *)
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  let b = Netlist.node nl "b" in
  Netlist.vsource nl a Netlist.ground (Waveform.Dc 4.0);
  Netlist.inductor nl a b 1e-9;
  Netlist.resistor nl b Netlist.ground 1e3;
  let v = List.assoc "b" (Spice.Engine.dc nl) in
  Alcotest.(check (float 1e-9)) "inductor shorts" 4.0 v

let check_against_analytic trace analytic tolerance label =
  let v = Spice.Trace.signal trace "out" in
  let worst = ref 0.0 in
  Array.iteri
    (fun i t ->
      let expected = analytic t in
      worst := Float.max !worst (abs_float (v.(i) -. expected)))
    trace.Spice.Trace.times;
  Alcotest.(check bool)
    (Printf.sprintf "%s (worst err %.2e)" label !worst)
    true (!worst < tolerance)

let test_rc_charging_trapezoidal () =
  let nl = rc_circuit () in
  let trace =
    Spice.Engine.transient nl ~tstop:5e-9 ~probes:[ "out" ]
      ~options:Spice.Engine.accurate_options
  in
  (* An ideal step is discontinuous, so the integrator effectively sees
     it smeared over the first dt/2; the residual error is O(dt/tau). *)
  check_against_analytic trace
    (fun t -> 1.0 -. exp (-.t /. 1e-9))
    2.5e-3 "trapezoidal RC step"

(* RC response to a finite ramp is smooth, so both integrators converge
   at their theoretical orders. Closed form with tau = RC, rise Tr:
   t <= Tr:  v = (t - tau(1 - e^{-t/tau})) / Tr
   t >  Tr:  v = 1 - (tau/Tr)(1 - e^{-Tr/tau}) e^{-(t-Tr)/tau}. *)
let rc_ramp_circuit tr =
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl inp Netlist.ground
    (Waveform.Ramp { t0 = 0.0; t1 = tr; v0 = 0.0; v1 = 1.0 });
  Netlist.resistor nl inp out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  nl

let rc_ramp_analytic ~tau ~tr t =
  if t <= tr then (t -. (tau *. (1.0 -. exp (-.t /. tau)))) /. tr
  else
    1.0 -. (tau /. tr *. (1.0 -. exp (-.tr /. tau)) *. exp (-.(t -. tr) /. tau))

let test_rc_ramp_trapezoidal () =
  let tr = 0.5e-9 in
  let nl = rc_ramp_circuit tr in
  let trace =
    Spice.Engine.transient nl ~tstop:5e-9 ~probes:[ "out" ]
      ~options:Spice.Engine.accurate_options
  in
  check_against_analytic trace
    (rc_ramp_analytic ~tau:1e-9 ~tr)
    1e-5 "trapezoidal RC ramp"

let test_trapezoidal_beats_euler () =
  let tr = 0.5e-9 in
  let nl = rc_ramp_circuit tr in
  let run method_ =
    let options =
      { Spice.Engine.default_options with method_; steps_per_chunk = 200 }
    in
    let trace = Spice.Engine.transient nl ~tstop:5e-9 ~probes:[ "out" ] ~options in
    let v = Spice.Trace.signal trace "out" in
    let err = ref 0.0 in
    Array.iteri
      (fun i t ->
        err := Float.max !err (abs_float (v.(i) -. rc_ramp_analytic ~tau:1e-9 ~tr t)))
      trace.Spice.Trace.times;
    !err
  in
  let e_trap = run Spice.Transient.Trapezoidal in
  let e_be = run Spice.Transient.Backward_euler in
  Alcotest.(check bool)
    (Printf.sprintf "trap %.2e << euler %.2e" e_trap e_be)
    true (e_trap < 0.2 *. e_be)

let test_rc_50_delay () =
  (* 50 % crossing of a first-order RC step is RC·ln 2 ≈ 0.693 ns. *)
  let nl = rc_circuit () in
  let delays =
    Spice.Engine.threshold_delays nl ~probes:[ "out" ] ~horizon:5e-9
      ~options:Spice.Engine.accurate_options
  in
  match delays with
  | [ ("out", Some t) ] ->
      Alcotest.(check bool)
        (Printf.sprintf "t50 = %.4g ns" (t *. 1e9))
        true
        (abs_float (t -. (1e-9 *. log 2.0)) < 5e-12)
  | _ -> Alcotest.fail "expected one crossing"

let test_horizon_extension () =
  (* Deliberately underestimate the horizon: tau = 1 ns but start the
     search window at 10 ps; the engine must extend until crossing. *)
  let nl = rc_circuit () in
  let delays = Spice.Engine.threshold_delays nl ~probes:[ "out" ] ~horizon:1e-11 in
  match delays with
  | [ ("out", Some t) ] ->
      Alcotest.(check bool) "extended past horizon" true (t > 1e-11);
      Alcotest.(check bool) "roughly ln2 ns" true
        (abs_float (t -. 0.693e-9) < 0.05e-9)
  | _ -> Alcotest.fail "expected crossing after extension"

(* Series RLC with L = 1 nH, C = 100 pF: characteristic impedance
   Z0 = sqrt(L/C) = 3.162 Ω, so R = 0.632 Ω gives zeta = R/(2·Z0) = 0.1
   — distinctly underdamped. A pure RC response cannot overshoot, so
   these two tests exercise the inductor stamps specifically. *)
let underdamped_rlc () =
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let mid = Netlist.node nl "mid" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl inp Netlist.ground step01;
  Netlist.resistor nl inp mid 0.6324555;
  Netlist.inductor nl mid out 1e-9;
  Netlist.capacitor nl out Netlist.ground 1e-10;
  nl

let test_rlc_underdamped () =
  let nl = underdamped_rlc () in
  let trace =
    Spice.Engine.transient nl ~tstop:1e-8 ~probes:[ "out" ]
      ~options:Spice.Engine.accurate_options
  in
  let v = Spice.Trace.signal trace "out" in
  let overshoot = Spice.Measure.overshoot ~values:v ~vfinal:1.0 in
  (* Analytic peak overshoot = exp(-pi*zeta/sqrt(1-zeta^2)) ~ 0.729. *)
  Alcotest.(check bool)
    (Printf.sprintf "overshoot %.3f" overshoot)
    true
    (abs_float (overshoot -. 0.729) < 0.03)

let test_rlc_oscillation_period () =
  (* Damped ringing period 2π/(ω_n·sqrt(1−ζ²)) ≈ 1.996 ns: measure the
     spacing of the first two response peaks. *)
  let nl = underdamped_rlc () in
  let trace =
    Spice.Engine.transient nl ~tstop:1e-8 ~probes:[ "out" ]
      ~options:Spice.Engine.accurate_options
  in
  let v = Spice.Trace.signal trace "out" in
  let times = trace.Spice.Trace.times in
  (* Find successive maxima by sign change of the discrete derivative. *)
  let peaks = ref [] in
  for i = 1 to Array.length v - 2 do
    if v.(i) > v.(i - 1) && v.(i) >= v.(i + 1) && v.(i) > 1.0 then
      peaks := times.(i) :: !peaks
  done;
  match List.rev !peaks with
  | t1 :: t2 :: _ ->
      let period = t2 -. t1 in
      let zeta = 0.1 in
      let expected =
        2.0 *. Float.pi *. sqrt (1e-9 *. 1e-10) /. sqrt (1.0 -. (zeta *. zeta))
      in
      Alcotest.(check bool)
        (Printf.sprintf "period %.3g vs %.3g" period expected)
        true
        (abs_float (period -. expected) < 0.05 *. expected)
  | _ -> Alcotest.fail "expected at least two ringing peaks"

let test_transient_continuation () =
  (* Running 2 x 2.5ns in chunks must equal one 5ns run at the chunk
     boundary (continuation passes exact state). *)
  let nl = rc_circuit () in
  let sys = Spice.Mna.build nl in
  let x0 = Spice.Transient.dc_operating_point sys in
  let probes = [| 1 |] in
  let dt = 5e-9 /. 1000.0 in
  let full =
    Spice.Transient.run sys ~method_:Spice.Transient.Trapezoidal ~x0 ~t0:0.0
      ~dt ~steps:1000 ~probes
  in
  let first =
    Spice.Transient.run sys ~method_:Spice.Transient.Trapezoidal ~x0 ~t0:0.0
      ~dt ~steps:500 ~probes
  in
  let second =
    Spice.Transient.run sys ~method_:Spice.Transient.Trapezoidal
      ~x0:first.Spice.Transient.final ~t0:2.5e-9 ~dt ~steps:500 ~probes
  in
  let v_full = full.Spice.Transient.states.(0) in
  let v_cat =
    Array.append first.Spice.Transient.states.(0)
      second.Spice.Transient.states.(0)
  in
  let worst = ref 0.0 in
  Array.iteri
    (fun i x -> worst := Float.max !worst (abs_float (x -. v_cat.(i))))
    v_full;
  Alcotest.(check bool)
    (Printf.sprintf "chunked = full (err %.2e)" !worst)
    true (!worst < 1e-12)

let test_floating_node_rejected () =
  (* A capacitor-only node has no DC path: G is singular. *)
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  let b = Netlist.node nl "b" in
  Netlist.vsource nl a Netlist.ground (Waveform.Dc 1.0);
  Netlist.capacitor nl a b 1e-12;
  Netlist.capacitor nl b Netlist.ground 1e-12;
  (match Spice.Engine.dc nl with
  | exception Nontree_error.Error (Nontree_error.Singular_matrix _) -> ()
  | _ -> Alcotest.fail "expected singular matrix");
  match Spice.Engine.dc_result nl with
  | Error (Nontree_error.Singular_matrix _) -> ()
  | _ -> Alcotest.fail "expected Singular_matrix from dc_result"

let test_engine_argument_validation () =
  let nl = rc_circuit () in
  Alcotest.check_raises "bad tstop"
    (Invalid_argument "Engine.transient: tstop must be positive") (fun () ->
      ignore (Spice.Engine.transient nl ~tstop:0.0 ~probes:[ "out" ]));
  Alcotest.check_raises "unknown probe"
    (Invalid_argument "Engine: unknown probe node nope") (fun () ->
      ignore (Spice.Engine.transient nl ~tstop:1e-9 ~probes:[ "nope" ]));
  Alcotest.check_raises "ground probe"
    (Invalid_argument "Engine: cannot probe ground") (fun () ->
      ignore (Spice.Engine.transient nl ~tstop:1e-9 ~probes:[ "0" ]));
  Alcotest.check_raises "bad horizon"
    (Invalid_argument "Engine.threshold_delays: horizon must be positive")
    (fun () ->
      ignore (Spice.Engine.threshold_delays nl ~probes:[ "out" ] ~horizon:0.0))

let test_max_delay_failure_path () =
  (* tau = 1 s but the search window tops out after two doublings of a
     1 ns horizon: the threshold is unreachable and max_delay must fail
     loudly rather than return garbage. *)
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl inp Netlist.ground step01;
  Netlist.resistor nl inp out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-3;
  let options = { Spice.Engine.fast_options with max_extensions = 2 } in
  (match
     Spice.Engine.max_delay ~options nl ~probes:[ "out" ] ~horizon:1e-9
   with
  | exception Nontree_error.Error (Nontree_error.Probe_never_settled _) -> ()
  | _ -> Alcotest.fail "expected Probe_never_settled");
  match
    Spice.Engine.max_delay_result ~options nl ~probes:[ "out" ] ~horizon:1e-9
  with
  | Error (Nontree_error.Probe_never_settled { probe; _ }) ->
      Alcotest.(check string) "failing probe named" "out" probe
  | _ -> Alcotest.fail "expected Probe_never_settled from max_delay_result"

let test_threshold_already_settled () =
  (* A DC source: every node is at its final value from t=0, so the
     threshold is crossed at time zero by convention. *)
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl inp Netlist.ground (Waveform.Dc 1.0);
  Netlist.resistor nl inp out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  match Spice.Engine.threshold_delays nl ~probes:[ "out" ] ~horizon:1e-9 with
  | [ (_, Some t) ] -> Alcotest.(check (float 0.0)) "zero delay" 0.0 t
  | _ -> Alcotest.fail "expected an immediate crossing"

(* Measure ------------------------------------------------------------ *)

let test_first_crossing_interpolates () =
  let times = [| 0.0; 1.0; 2.0 |] and values = [| 0.0; 0.4; 0.8 |] in
  match Spice.Measure.first_crossing ~times ~values ~level:0.6 with
  | Some t -> Alcotest.(check (float 1e-12)) "interp" 1.5 t
  | None -> Alcotest.fail "expected crossing"

let test_first_crossing_none () =
  let times = [| 0.0; 1.0 |] and values = [| 0.0; 0.3 |] in
  Alcotest.(check bool) "no crossing" true
    (Spice.Measure.first_crossing ~times ~values ~level:0.5 = None)

let test_first_crossing_exact_sample () =
  let times = [| 0.0; 1.0; 2.0 |] and values = [| 0.0; 0.5; 1.0 |] in
  match Spice.Measure.first_crossing ~times ~values ~level:0.5 with
  | Some t -> Alcotest.(check (float 0.0)) "exact" 1.0 t
  | None -> Alcotest.fail "expected crossing"

let test_rise_time () =
  (* Linear ramp 0..1 over [0,1]: 10-90 rise time is 0.8. *)
  let n = 101 in
  let times = Array.init n (fun i -> float_of_int i /. 100.0) in
  let values = Array.copy times in
  match Spice.Measure.rise_time ~times ~values ~vfinal:1.0 with
  | Some rt -> Alcotest.(check (float 1e-9)) "rise" 0.8 rt
  | None -> Alcotest.fail "expected rise time"

(* Trace -------------------------------------------------------------- *)

let test_trace_csv_and_append () =
  let t1 =
    { Spice.Trace.times = [| 0.0; 1.0 |]; names = [| "a" |];
      data = [| [| 0.1; 0.2 |] |] }
  in
  let t2 =
    { Spice.Trace.times = [| 2.0 |]; names = [| "a" |]; data = [| [| 0.3 |] |] }
  in
  let t = Spice.Trace.append t1 t2 in
  Alcotest.(check int) "length" 3 (Spice.Trace.length t);
  let csv = Spice.Trace.to_csv t in
  Alcotest.(check bool) "header" true
    (String.length csv > 7 && String.sub csv 0 7 = "time,a\n");
  let mismatched =
    { Spice.Trace.times = [| 0.0 |]; names = [| "b" |]; data = [| [| 0.0 |] |] }
  in
  Alcotest.check_raises "probe mismatch"
    (Invalid_argument "Trace.append: probe mismatch") (fun () ->
      ignore (Spice.Trace.append t1 mismatched))

(* Stamp deltas: an added element as rank-1 terms vs the extended
   system. *)
let test_delta_extend_matches_stamps () =
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl inp Netlist.ground step01;
  Netlist.resistor nl inp out 1e3;
  Netlist.capacitor nl out Netlist.ground 1e-12;
  let sys = Spice.Mna.build nl in
  let out_u = sys.Spice.Mna.unknown_of_node.(out) in
  let d = Spice.Mna.Delta.create sys in
  let p = Spice.Mna.Delta.fresh_unknown d in
  Spice.Mna.Delta.add_conductance d out_u p 1e-3;
  Spice.Mna.Delta.add_conductance d p (-1) 5e-4;
  Spice.Mna.Delta.add_capacitance d p (-1) 2e-12;
  let ext = Spice.Mna.Delta.extend sys d in
  let nt = ext.Spice.Mna.size in
  Alcotest.(check int) "one appended unknown" (sys.Spice.Mna.size + 1) nt;
  (* Extended G must equal the embedded base plus the same stamps
     g_terms renders as rank-1 outer products. *)
  let expect = Numeric.Matrix.create nt nt in
  for i = 0 to sys.Spice.Mna.size - 1 do
    for j = 0 to sys.Spice.Mna.size - 1 do
      Numeric.Matrix.set expect i j (Numeric.Matrix.get sys.Spice.Mna.g i j)
    done
  done;
  List.iter
    (fun (alpha, u, v) ->
      for i = 0 to nt - 1 do
        for j = 0 to nt - 1 do
          Numeric.Matrix.add_to expect i j (alpha *. u.(i) *. v.(j))
        done
      done)
    (Spice.Mna.Delta.g_terms d);
  Alcotest.(check (float 1e-15)) "G matches rank-1 rendering" 0.0
    (Numeric.Matrix.max_abs (Numeric.Matrix.sub ext.Spice.Mna.g expect));
  Alcotest.(check (float 0.0)) "C stamped on pad diagonal" 2e-12
    (Numeric.Matrix.get ext.Spice.Mna.c p p);
  let b = ext.Spice.Mna.rhs 0.5 in
  Alcotest.(check int) "rhs grows" nt (Array.length b);
  Alcotest.(check (float 0.0)) "rhs pad is zero" 0.0 b.(p);
  (* And the DC state through the Woodbury update equals a fresh solve
     of the extended matrix. *)
  match Numeric.Lu.try_factor sys.Spice.Mna.g with
  | Error _ -> Alcotest.fail "base G did not factor"
  | Ok base -> (
      match
        Numeric.Lu.Update.make ~pad:1 base (Spice.Mna.Delta.g_terms d)
      with
      | None -> Alcotest.fail "delta update degenerate"
      | Some up ->
          let x_upd = Numeric.Lu.Update.solve up b in
          let x_fresh = Numeric.Lu.solve_matrix ext.Spice.Mna.g b in
          Alcotest.(check (float 1e-9)) "DC states agree" 0.0
            (Numeric.Vec.max_abs_diff x_upd x_fresh))

let suites =
  [ ( "spice",
      [ Alcotest.test_case "dc divider" `Quick test_dc_divider;
        Alcotest.test_case "dc current source" `Quick test_dc_current_source;
        Alcotest.test_case "dc inductor short" `Quick test_dc_inductor_short;
        Alcotest.test_case "rc charging (trap)" `Quick
          test_rc_charging_trapezoidal;
        Alcotest.test_case "rc ramp (trap)" `Quick test_rc_ramp_trapezoidal;
        Alcotest.test_case "trap beats euler" `Quick test_trapezoidal_beats_euler;
        Alcotest.test_case "rc 50% delay = RC ln2" `Quick test_rc_50_delay;
        Alcotest.test_case "horizon extension" `Quick test_horizon_extension;
        Alcotest.test_case "rlc overshoot" `Quick test_rlc_underdamped;
        Alcotest.test_case "rlc ringing period" `Quick
          test_rlc_oscillation_period;
        Alcotest.test_case "transient continuation" `Quick
          test_transient_continuation;
        Alcotest.test_case "floating node rejected" `Quick
          test_floating_node_rejected;
        Alcotest.test_case "engine validation" `Quick
          test_engine_argument_validation;
        Alcotest.test_case "max_delay failure path" `Quick
          test_max_delay_failure_path;
        Alcotest.test_case "threshold already settled" `Quick
          test_threshold_already_settled;
        Alcotest.test_case "crossing interpolates" `Quick
          test_first_crossing_interpolates;
        Alcotest.test_case "crossing none" `Quick test_first_crossing_none;
        Alcotest.test_case "crossing exact sample" `Quick
          test_first_crossing_exact_sample;
        Alcotest.test_case "delta extend matches stamps" `Quick
          test_delta_extend_matches_stamps;
        Alcotest.test_case "rise time" `Quick test_rise_time;
        Alcotest.test_case "trace csv/append" `Quick test_trace_csv_and_append
      ] ) ]
