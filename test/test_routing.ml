(* Tests for routing topologies over nets. *)

open Geom

let square_net () =
  (* Unit square: source at origin, sinks at the other corners. *)
  Net.of_list
    [ Point.origin; Point.make 100.0 0.0; Point.make 0.0 100.0;
      Point.make 100.0 100.0 ]

let test_mst_of_net () =
  let r = Routing.mst_of_net (square_net ()) in
  Alcotest.(check bool) "tree" true (Routing.is_tree r);
  Alcotest.(check int) "vertices" 4 (Routing.num_vertices r);
  Alcotest.(check (float 1e-9)) "cost 300" 300.0 (Routing.cost r)

let test_add_edge_cycle () =
  let r = Routing.mst_of_net (square_net ()) in
  (* Any added edge creates a cycle; topology must stay connected. *)
  match Routing.candidate_edges r with
  | [] -> Alcotest.fail "expected candidates"
  | (u, v) :: _ ->
      let r' = Routing.add_edge r u v in
      Alcotest.(check bool) "no longer a tree" false (Routing.is_tree r');
      Alcotest.(check bool) "cost grew" true (Routing.cost r' > Routing.cost r);
      Alcotest.(check bool) "original untouched" true (Routing.is_tree r)

let test_candidate_count () =
  let r = Routing.mst_of_net (square_net ()) in
  (* Complete graph on 4 vertices has 6 edges; tree has 3. *)
  Alcotest.(check int) "candidates" 3 (List.length (Routing.candidate_edges r))

let test_remove_edge_guard () =
  let r = Routing.mst_of_net (square_net ()) in
  let (e : Graphs.Wgraph.edge) = List.hd (Graphs.Wgraph.edges (Routing.graph r)) in
  Alcotest.check_raises "would disconnect"
    (Invalid_argument "Routing.remove_edge: would disconnect") (fun () ->
      ignore (Routing.remove_edge r e.u e.v))

let test_remove_added_edge () =
  let r = Routing.mst_of_net (square_net ()) in
  let u, v = List.hd (Routing.candidate_edges r) in
  let r' = Routing.remove_edge (Routing.add_edge r u v) u v in
  Alcotest.(check (float 1e-9)) "back to MST cost" (Routing.cost r)
    (Routing.cost r')

let test_of_net_validates_weights () =
  let net = square_net () in
  let bad =
    Graphs.Wgraph.of_edges 4 [ (0, 1, 42.0); (1, 3, 100.0); (3, 2, 100.0) ]
  in
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Routing: edge weight disagrees with Manhattan distance")
    (fun () -> ignore (Routing.of_net net bad))

let test_with_points_steiner () =
  let pts =
    [| Point.origin; Point.make 100.0 0.0; Point.make 0.0 100.0;
       Point.make 50.0 50.0 |]
  in
  let r =
    Routing.with_points ~source:0 ~num_terminals:3 pts
      [ (0, 3); (1, 3); (2, 3) ]
  in
  Alcotest.(check int) "terminals" 3 (Routing.num_terminals r);
  Alcotest.(check int) "vertices" 4 (Routing.num_vertices r);
  Alcotest.(check (list int)) "sinks" [ 1; 2 ] (Routing.sinks r)

let test_widths_default_and_set () =
  let r = Routing.mst_of_net (square_net ()) in
  let (e : Graphs.Wgraph.edge) = List.hd (Graphs.Wgraph.edges (Routing.graph r)) in
  Alcotest.(check (float 0.0)) "default width" 1.0 (Routing.width r e.u e.v);
  let r' = Routing.set_width r e.u e.v 2.0 in
  Alcotest.(check (float 0.0)) "set width" 2.0 (Routing.width r' e.u e.v);
  Alcotest.(check (float 0.0)) "original width" 1.0 (Routing.width r e.u e.v);
  Alcotest.check_raises "bad width"
    (Invalid_argument "Routing.set_width: width must be positive") (fun () ->
      ignore (Routing.set_width r e.u e.v 0.0))

let test_width_absent_edge () =
  let r = Routing.mst_of_net (square_net ()) in
  let u, v = List.hd (Routing.candidate_edges r) in
  Alcotest.check_raises "absent" Not_found (fun () ->
      ignore (Routing.width r u v))

let test_rooted_view () =
  let r = Routing.mst_of_net (square_net ()) in
  let rt = Routing.rooted r in
  Alcotest.(check int) "rooted at source" 0 rt.Graphs.Rooted.root;
  let u, v = List.hd (Routing.candidate_edges r) in
  let r' = Routing.add_edge r u v in
  Alcotest.check_raises "non-tree rejected"
    (Invalid_argument "Routing.rooted: not a tree") (fun () ->
      ignore (Routing.rooted r'))

let prop_mst_routing_sane =
  QCheck.Test.make ~name:"MST routing: tree, spans, cost positive" ~count:50
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, pins) ->
      let g = Rng.create seed in
      let net = Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins in
      let r = Routing.mst_of_net net in
      Routing.is_tree r
      && Routing.num_vertices r = pins
      && Routing.cost r > 0.0)

let prop_add_edge_cost_increases_by_length =
  QCheck.Test.make ~name:"add_edge adds exactly its Manhattan length" ~count:50
    QCheck.(pair small_int (int_range 3 20))
    (fun (seed, pins) ->
      let g = Rng.create seed in
      let net = Netgen.uniform g ~region:(Rect.square 10_000.0) ~pins in
      let r = Routing.mst_of_net net in
      match Routing.candidate_edges r with
      | [] -> true
      | candidates ->
          let u, v =
            List.nth candidates (Rng.int g (List.length candidates))
          in
          let r' = Routing.add_edge r u v in
          let expected =
            Routing.cost r
            +. Point.manhattan (Routing.point r u) (Routing.point r v)
          in
          abs_float (Routing.cost r' -. expected) < 1e-6)

let test_svg_render () =
  let r = Routing.mst_of_net (square_net ()) in
  let svg = Routing_svg.render ~title:"test" ~highlight:[ (0, 1) ] r in
  Alcotest.(check bool) "has svg tag" true
    (String.length svg > 0
    && String.sub svg 0 4 = "<svg"
    && String.length svg > 100);
  (* One circle per pin plus polylines for the 3 edges. *)
  let count_sub s sub =
    let n = String.length s and m = String.length sub in
    let c = ref 0 in
    for i = 0 to n - m do
      if String.sub s i m = sub then incr c
    done;
    !c
  in
  Alcotest.(check int) "circles" 4 (count_sub svg "<circle");
  Alcotest.(check int) "edges" 3 (count_sub svg "<polyline")

let suites =
  [ ( "routing",
      [ Alcotest.test_case "mst of net" `Quick test_mst_of_net;
        Alcotest.test_case "add edge makes cycle" `Quick test_add_edge_cycle;
        Alcotest.test_case "candidate count" `Quick test_candidate_count;
        Alcotest.test_case "remove-edge guard" `Quick test_remove_edge_guard;
        Alcotest.test_case "remove added edge" `Quick test_remove_added_edge;
        Alcotest.test_case "of_net validates weights" `Quick
          test_of_net_validates_weights;
        Alcotest.test_case "with_points steiner" `Quick test_with_points_steiner;
        Alcotest.test_case "widths" `Quick test_widths_default_and_set;
        Alcotest.test_case "width absent edge" `Quick test_width_absent_edge;
        Alcotest.test_case "rooted view" `Quick test_rooted_view;
        QCheck_alcotest.to_alcotest prop_mst_routing_sane;
        QCheck_alcotest.to_alcotest prop_add_edge_cost_increases_by_length;
        Alcotest.test_case "svg render" `Quick test_svg_render ] ) ]
