(* Tests for waveforms, netlists, technology constants and deck I/O. *)

open Circuit

(* Waveforms ---------------------------------------------------------- *)

let test_dc () =
  Alcotest.(check (float 0.0)) "dc" 3.3 (Waveform.value (Waveform.Dc 3.3) 17.0)

let test_step () =
  let w = Waveform.Step { t0 = 1.0; v0 = 0.0; v1 = 5.0 } in
  Alcotest.(check (float 0.0)) "before" 0.0 (Waveform.value w 0.5);
  Alcotest.(check (float 0.0)) "at t0 still v0" 0.0 (Waveform.value w 1.0);
  Alcotest.(check (float 0.0)) "after" 5.0 (Waveform.value w 1.0001)

let test_ramp () =
  let w = Waveform.Ramp { t0 = 0.0; t1 = 2.0; v0 = 0.0; v1 = 4.0 } in
  Alcotest.(check (float 1e-12)) "mid" 2.0 (Waveform.value w 1.0);
  Alcotest.(check (float 0.0)) "clamped" 4.0 (Waveform.value w 10.0)

let test_pulse () =
  let w =
    Waveform.Pulse
      { v0 = 0.0; v1 = 1.0; delay = 1.0; rise = 1.0; fall = 1.0; width = 2.0;
        period = 10.0 }
  in
  Alcotest.(check (float 0.0)) "before delay" 0.0 (Waveform.value w 0.5);
  Alcotest.(check (float 1e-12)) "mid rise" 0.5 (Waveform.value w 1.5);
  Alcotest.(check (float 0.0)) "plateau" 1.0 (Waveform.value w 3.0);
  Alcotest.(check (float 1e-12)) "mid fall" 0.5 (Waveform.value w 4.5);
  Alcotest.(check (float 0.0)) "off" 0.0 (Waveform.value w 6.0);
  Alcotest.(check (float 1e-12)) "periodic" 0.5 (Waveform.value w 11.5)

let test_pwl () =
  let w = Waveform.Pwl [ (0.0, 0.0); (1.0, 1.0); (3.0, 0.0) ] in
  Alcotest.(check (float 1e-12)) "rising" 0.5 (Waveform.value w 0.5);
  Alcotest.(check (float 1e-12)) "falling" 0.5 (Waveform.value w 2.0);
  Alcotest.(check (float 0.0)) "before" 0.0 (Waveform.value w (-1.0));
  Alcotest.(check (float 0.0)) "after" 0.0 (Waveform.value w 99.0)

let test_waveform_validate () =
  let bad = Waveform.Pwl [ (1.0, 0.0); (0.5, 1.0) ] in
  Alcotest.(check bool) "decreasing pwl rejected" true
    (Result.is_error (Waveform.validate bad));
  let bad_pulse =
    Waveform.Pulse
      { v0 = 0.0; v1 = 1.0; delay = 0.0; rise = 5.0; fall = 5.0; width = 5.0;
        period = 10.0 }
  in
  Alcotest.(check bool) "overfull pulse rejected" true
    (Result.is_error (Waveform.validate bad_pulse));
  Alcotest.(check bool) "good ramp ok" true
    (Result.is_ok
       (Waveform.validate (Waveform.Ramp { t0 = 0.0; t1 = 1.0; v0 = 0.0; v1 = 1.0 })))

(* Netlist ------------------------------------------------------------ *)

let test_netlist_nodes () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  let a' = Netlist.node nl "a" in
  let b = Netlist.node nl "b" in
  Alcotest.(check int) "same name same node" a a';
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "ground is 0" 0 (Netlist.node nl "0");
  Alcotest.(check string) "name back" "a" (Netlist.node_name nl a);
  Alcotest.(check int) "count" 3 (Netlist.num_nodes nl)

let test_netlist_fresh () =
  let nl = Netlist.create () in
  let x = Netlist.fresh_node nl "w" in
  let y = Netlist.fresh_node nl "w" in
  Alcotest.(check bool) "fresh distinct" true (x <> y)

let test_netlist_elements () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Netlist.resistor nl ~name:"R1" a Netlist.ground 100.0;
  Netlist.capacitor nl a Netlist.ground 1e-12;
  Netlist.vsource nl a Netlist.ground (Waveform.Dc 1.0);
  Alcotest.(check int) "three elements" 3 (List.length (Netlist.elements nl));
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Netlist.add: duplicate element name R1") (fun () ->
      Netlist.resistor nl ~name:"R1" a Netlist.ground 50.0)

let test_netlist_rejects_bad_element () =
  let nl = Netlist.create () in
  let a = Netlist.node nl "a" in
  Alcotest.check_raises "negative R"
    (Invalid_argument "Netlist.add: resistor: non-positive resistance")
    (fun () -> Netlist.resistor nl a Netlist.ground (-5.0));
  Alcotest.check_raises "shorted C"
    (Invalid_argument "Netlist.add: capacitor: shorted terminals") (fun () ->
      Netlist.capacitor nl a a 1e-12)

(* Technology --------------------------------------------------------- *)

let test_table1_values () =
  let t = Technology.table1 in
  Alcotest.(check (float 0.0)) "driver" 100.0 t.Technology.driver_resistance;
  Alcotest.(check (float 0.0)) "r/um" 0.03 t.Technology.wire_resistance;
  Alcotest.(check (float 1e-25)) "c/um" 0.352e-15 t.Technology.wire_capacitance;
  Alcotest.(check (float 1e-25)) "l/um" 492e-18 t.Technology.wire_inductance;
  Alcotest.(check (float 1e-22)) "sink load" 15.3e-15 t.Technology.sink_capacitance;
  Alcotest.(check (float 0.0)) "layout side um" 10_000.0 t.Technology.layout_side

let test_wire_formulas () =
  let t = Technology.table1 in
  Alcotest.(check (float 1e-9)) "R of 1mm" 30.0
    (Technology.wire_resistance_of t ~length:1000.0 ~width:1.0);
  Alcotest.(check (float 1e-9)) "R halves when wide" 15.0
    (Technology.wire_resistance_of t ~length:1000.0 ~width:2.0);
  Alcotest.(check (float 1e-22)) "C of 1mm" 0.352e-12
    (Technology.wire_capacitance_of t ~length:1000.0 ~width:1.0);
  Alcotest.(check (float 1e-22)) "C doubles when wide" 0.704e-12
    (Technology.wire_capacitance_of t ~length:1000.0 ~width:2.0)

(* Deck numbers ------------------------------------------------------- *)

let check_parse s expected =
  match Deck.parse_number s with
  | Ok v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s = %g" s expected)
        true
        (abs_float (v -. expected) <= 1e-9 *. abs_float expected)
  | Error e -> Alcotest.fail (s ^ ": " ^ e)

let test_parse_numbers () =
  check_parse "100" 100.0;
  check_parse "4.7k" 4.7e3;
  check_parse "15.3f" 15.3e-15;
  check_parse "3meg" 3e6;
  check_parse "1e-9" 1e-9;
  check_parse "10pF" 10e-12;
  check_parse "0.03" 0.03;
  check_parse "2.5u" 2.5e-6;
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Deck.parse_number "abc"));
  Alcotest.(check bool) "bad suffix rejected" true
    (Result.is_error (Deck.parse_number "1x"))

let test_number_roundtrip () =
  List.iter
    (fun x ->
      match Deck.parse_number (Deck.number_to_string x) with
      | Ok v ->
          Alcotest.(check bool)
            (Printf.sprintf "%g roundtrips" x)
            true
            (abs_float (v -. x) <= 1e-6 *. abs_float x)
      | Error e -> Alcotest.fail e)
    [ 100.0; 0.03; 15.3e-15; 492e-18 *. 1e3; 1e-12; 4.7e3; 2.2e6; 0.5 ]

(* Deck I/O ----------------------------------------------------------- *)

let sample_netlist () =
  let nl = Netlist.create () in
  let inp = Netlist.node nl "in" in
  let out = Netlist.node nl "out" in
  Netlist.vsource nl ~name:"V1" inp Netlist.ground
    (Waveform.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 });
  Netlist.resistor nl ~name:"R1" inp out 100.0;
  Netlist.capacitor nl ~name:"C1" out Netlist.ground 15.3e-15;
  Netlist.inductor nl ~name:"L1" out Netlist.ground 1e-9;
  Netlist.isource nl ~name:"I1" Netlist.ground out (Waveform.Dc 1e-6);
  nl

let test_deck_roundtrip () =
  let nl = sample_netlist () in
  let text = Deck.to_string ~title:"sample" nl in
  match Deck.of_string text with
  | Error e -> Alcotest.fail e
  | Ok nl' ->
      Alcotest.(check int) "node count" (Netlist.num_nodes nl)
        (Netlist.num_nodes nl');
      let es = Netlist.elements nl and es' = Netlist.elements nl' in
      Alcotest.(check int) "element count" (List.length es) (List.length es');
      List.iter2
        (fun a b ->
          Alcotest.(check string) "element name" (Element.name a)
            (Element.name b))
        es es';
      (* The rendered decks must agree exactly. *)
      Alcotest.(check string) "idempotent render" text
        (Deck.to_string ~title:"sample" nl')

let test_deck_parse_classic () =
  let text =
    "RC tree example\n\
     * comment line\n\
     V1 in 0 PULSE(0 1 0 1p 1p 1n 2n)\n\
     R1 in mid 4.7k\n\
     + \n\
     C1 mid 0 10p\n\
     .tran 1p 10n\n\
     .end\n"
  in
  match Deck.of_string text with
  | Error e -> Alcotest.fail e
  | Ok nl ->
      Alcotest.(check int) "elements" 3 (List.length (Netlist.elements nl));
      Alcotest.(check bool) "node mid exists" true
        (Netlist.find_node nl "mid" <> None)

let test_deck_parse_bare_dc () =
  match Deck.of_string "* t\nV1 a 0 5\nR1 a 0 1k\n.end\n" with
  | Error e -> Alcotest.fail e
  | Ok nl -> (
      match Netlist.elements nl with
      | [ Element.Vsource { wave = Waveform.Dc v; _ }; _ ] ->
          Alcotest.(check (float 0.0)) "dc 5" 5.0 v
      | _ -> Alcotest.fail "expected V then R")

let test_deck_parse_errors () =
  Alcotest.(check bool) "bad value" true
    (Result.is_error (Deck.of_string "* t\nR1 a 0 oops\n.end\n"));
  Alcotest.(check bool) "unknown element" true
    (Result.is_error (Deck.of_string "* t\nQ1 a b c model\n.end\n"));
  Alcotest.(check bool) "bad arity" true
    (Result.is_error (Deck.of_string "* t\nR1 a 0\n.end\n"))

let test_deck_waveform_roundtrips () =
  (* Every waveform constructor must survive print -> parse exactly
     (value-wise at sample times). *)
  let waveforms =
    [ Waveform.Dc 2.5;
      Waveform.Step { t0 = 1e-9; v0 = 0.2; v1 = 1.8 };
      Waveform.Ramp { t0 = 0.0; t1 = 2e-9; v0 = 0.0; v1 = 3.3 };
      Waveform.Pulse
        { v0 = 0.0; v1 = 1.0; delay = 1e-9; rise = 0.1e-9; fall = 0.2e-9;
          width = 2e-9; period = 10e-9 };
      Waveform.Pwl [ (0.0, 0.0); (1e-9, 1.0); (5e-9, 0.25) ] ]
  in
  List.iteri
    (fun i wave ->
      let nl = Netlist.create () in
      let a = Netlist.node nl "a" in
      Netlist.vsource nl ~name:"V1" a Netlist.ground wave;
      Netlist.resistor nl ~name:"R1" a Netlist.ground 1e3;
      match Deck.of_string (Deck.to_string nl) with
      | Error e -> Alcotest.fail e
      | Ok nl' -> (
          match Netlist.elements nl' with
          | Element.Vsource { wave = wave'; _ } :: _ ->
              (* Compare sampled values across the interesting range. *)
              for s = 0 to 100 do
                let t = float_of_int s *. 0.15e-9 in
                Alcotest.(check bool)
                  (Printf.sprintf "waveform %d at %g" i t)
                  true
                  (abs_float (Waveform.value wave t -. Waveform.value wave' t)
                  < 1e-9)
              done
          | _ -> Alcotest.fail "expected a V source first"))
    waveforms

let test_deck_directives () =
  let text =
    "* directives\n\
     V1 in 0 1\n\
     R1 in out 1k\n\
     C1 out 0 1p\n\
     .tran 10p 5n\n\
     .ac dec 10 1meg 10g\n\
     .probe v(out) in\n\
     .options reltol=1e-4\n\
     .end\n"
  in
  match Deck.of_string_full text with
  | Error e -> Alcotest.fail e
  | Ok (nl, d) ->
      Alcotest.(check int) "elements" 3 (List.length (Netlist.elements nl));
      Alcotest.(check (list string)) "probes unwrapped" [ "out"; "in" ]
        d.Deck.probes;
      (match d.Deck.analyses with
      | [ Deck.Tran { step; stop }; Deck.Ac { points_per_decade; f_start; f_stop } ] ->
          Alcotest.(check (float 1e-18)) "tstep" 10e-12 step;
          Alcotest.(check (float 1e-15)) "tstop" 5e-9 stop;
          Alcotest.(check int) "ppd" 10 points_per_decade;
          Alcotest.(check (float 1e-3)) "fstart" 1e6 f_start;
          Alcotest.(check (float 1e3)) "fstop" 10e9 f_stop
      | _ -> Alcotest.fail "expected tran then ac")

let test_deck_bad_directive_rejected () =
  Alcotest.(check bool) "bad .tran" true
    (Result.is_error
       (Deck.of_string_full "* t\nR1 a 0 1k\n.tran oops 5n\n.end\n"))

let test_deck_probe_with_analysis_type () =
  match Deck.of_string_full "* t\nR1 a 0 1k\n.print tran v(a)\n.end\n" with
  | Error e -> Alcotest.fail e
  | Ok (_, d) ->
      Alcotest.(check (list string)) "probe after 'tran'" [ "a" ] d.Deck.probes

let test_netlist_stats () =
  let nl = sample_netlist () in
  let s = Netlist.stats nl in
  Alcotest.(check bool) "mentions counts" true
    (String.length s > 0 && String.contains s 'R')

let test_deck_file_roundtrip () =
  let nl = sample_netlist () in
  let path = Filename.temp_file "nontree" ".cir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Deck.write_file ~title:"file test" path nl;
      match Deck.read_file path with
      | Error e -> Alcotest.fail e
      | Ok nl' ->
          Alcotest.(check int) "elements" 5 (List.length (Netlist.elements nl')))

let suites =
  [ ( "circuit",
      [ Alcotest.test_case "dc waveform" `Quick test_dc;
        Alcotest.test_case "step waveform" `Quick test_step;
        Alcotest.test_case "ramp waveform" `Quick test_ramp;
        Alcotest.test_case "pulse waveform" `Quick test_pulse;
        Alcotest.test_case "pwl waveform" `Quick test_pwl;
        Alcotest.test_case "waveform validate" `Quick test_waveform_validate;
        Alcotest.test_case "netlist nodes" `Quick test_netlist_nodes;
        Alcotest.test_case "netlist fresh nodes" `Quick test_netlist_fresh;
        Alcotest.test_case "netlist elements" `Quick test_netlist_elements;
        Alcotest.test_case "netlist rejects bad" `Quick
          test_netlist_rejects_bad_element;
        Alcotest.test_case "table1 values" `Quick test_table1_values;
        Alcotest.test_case "wire formulas" `Quick test_wire_formulas;
        Alcotest.test_case "parse numbers" `Quick test_parse_numbers;
        Alcotest.test_case "number roundtrip" `Quick test_number_roundtrip;
        Alcotest.test_case "deck roundtrip" `Quick test_deck_roundtrip;
        Alcotest.test_case "deck parse classic" `Quick test_deck_parse_classic;
        Alcotest.test_case "deck bare dc" `Quick test_deck_parse_bare_dc;
        Alcotest.test_case "deck parse errors" `Quick test_deck_parse_errors;
        Alcotest.test_case "deck file roundtrip" `Quick test_deck_file_roundtrip;
        Alcotest.test_case "deck waveform roundtrips" `Quick
          test_deck_waveform_roundtrips;
        Alcotest.test_case "deck directives" `Quick test_deck_directives;
        Alcotest.test_case "deck bad directive" `Quick
          test_deck_bad_directive_rejected;
        Alcotest.test_case "deck .print tran" `Quick
          test_deck_probe_with_analysis_type;
        Alcotest.test_case "netlist stats" `Quick test_netlist_stats ] ) ]
