(* netgen: emit random signal nets as net files.

     dune exec bin/netgen.exe -- --pins 10 --seed 3 > net.txt
     dune exec bin/netgen.exe -- --pins 20 --clusters 3 -o net.txt *)

open Cmdliner

let run pins seed side clusters output =
  if pins < 2 then `Error (false, "--pins must be at least 2")
  else begin
    let rng = Rng.create seed in
    let region = Geom.Rect.square side in
    let net =
      match clusters with
      | None -> Geom.Netgen.uniform rng ~region ~pins
      | Some clusters -> Geom.Netgen.clustered rng ~region ~clusters ~pins
    in
    let text = Geom.Netfile.to_string net in
    (match output with
    | None -> print_string text
    | Some path -> Geom.Netfile.write path net);
    `Ok ()
  end

let pins =
  Arg.(value & opt int 10 & info [ "pins" ] ~docv:"N" ~doc:"Number of pins.")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")

let side =
  Arg.(
    value
    & opt float Circuit.Technology.table1.Circuit.Technology.layout_side
    & info [ "side" ] ~docv:"UM"
        ~doc:"Side of the square layout region in µm (default: Table 1).")

let clusters =
  Arg.(
    value
    & opt (some int) None
    & info [ "clusters" ] ~docv:"K"
        ~doc:"Draw pins around $(docv) cluster centres instead of uniformly.")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to file instead of stdout.")

let cmd =
  let doc = "generate a random signal net" in
  Cmd.v
    (Cmd.info "netgen" ~doc)
    Term.(ret (const run $ pins $ seed $ side $ clusters $ output))

let () = exit (Cmd.eval cmd)
