(* route: construct a routing topology for a net and report its delay.

     bin/netgen.exe --pins 10 > net.txt
     bin/route.exe net.txt --algorithm ldrg --svg out.svg
     bin/route.exe net.txt --algorithm h3 --model elmore
     bin/route.exe net.txt --algorithm wsorg --deck out.cir *)

open Cmdliner

let parse_model = function
  | "elmore" -> Ok Delay.Model.Elmore_tree
  | "moment" -> Ok Delay.Model.First_moment
  | "two-pole" -> Ok Delay.Model.Two_pole
  | "spice" -> Ok (Delay.Model.Spice Delay.Model.default_spice)
  | "spice-fast" -> Ok (Delay.Model.Spice Delay.Model.fast_spice)
  | "spice-accurate" -> Ok (Delay.Model.Spice Delay.Model.accurate_spice)
  | "spice-rlc" -> Ok (Delay.Model.Spice Delay.Model.rlc_spice)
  | m -> Error ("unknown model " ^ m)

let eval_model_for_report model =
  (* Elmore cannot evaluate non-tree outputs; report with the exact
     first moment instead. *)
  match model with Delay.Model.Elmore_tree -> Delay.Model.First_moment | m -> m

let build_routing ~tech ~model net = function
  | "mst" -> Ok (Routing.mst_of_net net)
  | "ert" -> Ok (Ert.construct ~tech net)
  | "steiner" -> Ok (Steiner.Iterated_1steiner.construct net)
  | "ldrg" ->
      Ok (Nontree.Ldrg.run ~model ~tech (Routing.mst_of_net net)).Nontree.Ldrg.final
  | "ldrg-prune" ->
      let graph =
        (Nontree.Ldrg.run ~model ~tech (Routing.mst_of_net net))
          .Nontree.Ldrg.final
      in
      Ok (Nontree.Prune.run ~model ~tech graph).Nontree.Prune.final
  | "ldrg-ert" ->
      Ok (Nontree.Ldrg.run ~model ~tech (Ert.construct ~tech net)).Nontree.Ldrg.final
  | "sldrg" -> Ok (Nontree.Sldrg.run ~model ~tech net).Nontree.Ldrg.final
  | "h1" ->
      Ok
        (Nontree.Heuristics.h1 ~model ~tech (Routing.mst_of_net net))
          .Nontree.Ldrg.final
  | "h2" -> Ok (fst (Nontree.Heuristics.h2 ~tech (Routing.mst_of_net net)))
  | "h3" -> Ok (fst (Nontree.Heuristics.h3 ~tech (Routing.mst_of_net net)))
  | "csorg" ->
      let alphas = Nontree.Critical_sink.uniform net in
      Ok
        (Nontree.Critical_sink.ldrg ~model ~tech ~alphas
           (Routing.mst_of_net net))
          .Nontree.Ldrg.final
  | "wsorg" ->
      let base =
        (Nontree.Ldrg.run ~model ~tech (Routing.mst_of_net net))
          .Nontree.Ldrg.final
      in
      Ok (fst (Nontree.Wire_sizing.size_greedy ~model ~tech base))
  | a -> Error ("unknown algorithm " ^ a)

let run net_file algorithm model_name svg deck =
  match Geom.Netfile.read net_file with
  | Error e -> `Error (false, net_file ^ ": " ^ e)
  | Ok net -> (
      let tech = Circuit.Technology.table1 in
      match parse_model model_name with
      | Error e -> `Error (false, e)
      | Ok search_model -> (
          match build_routing ~tech ~model:search_model net algorithm with
          | Error e -> `Error (false, e)
          | Ok routing ->
              let mst = Routing.mst_of_net net in
              let report = eval_model_for_report search_model in
              let delay = Delay.Model.max_delay report ~tech routing in
              let mst_delay = Delay.Model.max_delay report ~tech mst in
              Printf.printf "net: %d pins, algorithm %s, search model %s\n"
                (Geom.Net.size net) algorithm
                (Delay.Model.name search_model);
              Printf.printf
                "topology: %d vertices, %d edges%s, wirelength %.0f um\n"
                (Routing.num_vertices routing)
                (Graphs.Wgraph.num_edges (Routing.graph routing))
                (if Routing.is_tree routing then " (tree)" else " (non-tree)")
                (Routing.cost routing);
              Printf.printf "max source-sink delay: %.4g ns (%s)\n"
                (delay *. 1e9) (Delay.Model.name report);
              Printf.printf "vs MST: delay %.3f, wirelength %.3f\n"
                (delay /. mst_delay)
                (Routing.cost routing /. Routing.cost mst);
              List.iter
                (fun (v, d) ->
                  Printf.printf "  sink n%-2d delay %.4g ns\n" v (d *. 1e9))
                (Delay.Model.sink_delays report ~tech routing);
              (match svg with
              | Some path ->
                  Routing_svg.render_to_file ~title:algorithm path routing;
                  Printf.printf "svg written to %s\n" path
              | None -> ());
              (match deck with
              | Some path ->
                  let nl, sink_nodes =
                    Delay.Lumping.circuit_of_routing ~tech routing
                  in
                  (* Self-describing deck: a .tran horizon generous
                     enough for the slowest sink, and the sinks as
                     probes. *)
                  let stop = 4.0 *. Delay.Model.spice_horizon ~tech routing in
                  Circuit.Deck.write_file
                    ~title:(Printf.sprintf "%s routing" algorithm)
                    ~directive_cards:
                      [ Circuit.Deck.tran_card ~step:(stop /. 1000.0) ~stop;
                        Circuit.Deck.probe_card sink_nodes ]
                    path nl;
                  Printf.printf "SPICE deck written to %s\n" path
              | None -> ());
              `Ok ()))

let net_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"NET" ~doc:"Net file (see bin/netgen.exe).")

let algorithm =
  Arg.(
    value & opt string "ldrg"
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:
          "One of mst, ert, steiner, ldrg, ldrg-prune, ldrg-ert, sldrg, h1, \
           h2, h3, csorg, wsorg.")

let model =
  Arg.(
    value & opt string "spice-fast"
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:
          "Delay oracle: elmore, moment, two-pole, spice, spice-fast, \
           spice-accurate, spice-rlc.")

let svg =
  Arg.(
    value
    & opt (some string) None
    & info [ "svg" ] ~docv:"FILE" ~doc:"Render the routing as SVG.")

let deck =
  Arg.(
    value
    & opt (some string) None
    & info [ "deck" ] ~docv:"FILE" ~doc:"Write the lumped circuit as a SPICE deck.")

let cmd =
  let doc = "route a signal net with the non-tree routing algorithms" in
  Cmd.v
    (Cmd.info "route" ~doc)
    Term.(ret (const run $ net_file $ algorithm $ model $ svg $ deck))

let () = exit (Cmd.eval cmd)
