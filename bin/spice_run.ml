(* spice_run: simulate a SPICE deck with the built-in engine.

     bin/spice_run.exe circuit.cir --probe out --tstop 5n
     bin/spice_run.exe circuit.cir --probe out --csv wave.csv
     bin/spice_run.exe circuit.cir --probe out --delay *)

open Cmdliner

let run_ac nl probes source =
  let freqs =
    Spice.Ac.log_frequencies ~f_start:1e5 ~f_stop:1e11 ~points_per_decade:10
  in
  List.iter
    (fun probe ->
      let sweep = Spice.Ac.analyze nl ~source ~probe ~frequencies:freqs in
      (match Spice.Ac.bandwidth_3db sweep with
      | Some bw ->
          Printf.printf "  %-12s 3dB bandwidth %.4g MHz\n" probe (bw /. 1e6)
      | None -> Printf.printf "  %-12s no 3dB point in sweep\n" probe);
      let path = Printf.sprintf "ac_%s.csv" probe in
      let oc = open_out path in
      output_string oc (Spice.Ac.to_csv sweep);
      close_out oc;
      Printf.printf "  sweep written to %s\n" path)
    probes

let simulate deck_file probes tstop_s csv delay plot ac =
  match Circuit.Deck.read_file_full deck_file with
  | Error e -> `Error (false, deck_file ^ ": " ^ e)
  | Ok (nl, directives) -> (
      (* The deck's own .probe and .tran cards are the defaults; the
         command line overrides them. *)
      let probes =
        if probes <> [] then probes else directives.Circuit.Deck.probes
      in
      let tstop_result =
        match tstop_s with
        | Some s -> Circuit.Deck.parse_number s
        | None -> (
            match
              List.find_map
                (function
                  | Circuit.Deck.Tran { stop; _ } -> Some stop
                  | Circuit.Deck.Ac _ -> None)
                directives.Circuit.Deck.analyses
            with
            | Some stop -> Ok stop
            | None -> Ok 10e-9)
      in
      match tstop_result with
      | Error e -> `Error (false, "--tstop: " ^ e)
      | Ok tstop ->
          if probes = [] then
            `Error (false, "need at least one --probe (or a .probe card)")
          else begin
            Printf.printf "deck: %s\n" (Circuit.Netlist.stats nl);
            (match ac with
            | Some source -> run_ac nl probes source
            | None -> ());
            let delay_result =
              if not delay then Ok ()
              else
                match
                  Spice.Engine.threshold_delays_result nl ~probes
                    ~horizon:tstop
                with
                | Error e -> Error e
                | Ok delays ->
                    List.iter
                      (fun (name, d) ->
                        match d with
                        | Some t ->
                            Printf.printf "  %-12s 50%% delay %.4g ns\n" name
                              (t *. 1e9)
                        | None ->
                            Printf.printf "  %-12s never crossed 50%%\n" name)
                      delays;
                    Ok ()
            in
            match delay_result with
            | Error e ->
                `Error (false, "simulation failed: " ^ Nontree_error.to_string e)
            | Ok () -> (
                match Spice.Engine.transient_result nl ~tstop ~probes with
                | Error e ->
                    `Error
                      (false, "simulation failed: " ^ Nontree_error.to_string e)
                | Ok trace ->
                    List.iter
                      (fun p ->
                        let v = Spice.Trace.signal trace p in
                        Printf.printf "  %-12s final %.4g V\n" p
                          (Spice.Measure.final_value ~values:v))
                      probes;
                    (match csv with
                    | Some path ->
                        Spice.Trace.write_csv path trace;
                        Printf.printf "waveforms written to %s\n" path
                    | None -> ());
                    if plot then
                      List.iter
                        (fun p -> print_string (Spice.Trace.ascii_plot trace p))
                        probes;
                    `Ok ())
          end)

(* The AC path still raises; fold every typed failure into one
   diagnostic line and a nonzero exit. *)
let run deck_file probes tstop_s csv delay plot ac =
  try simulate deck_file probes tstop_s csv delay plot ac
  with
  | Nontree_error.Error e ->
      `Error (false, "simulation failed: " ^ Nontree_error.to_string e)
  | Invalid_argument msg ->
      (* Bad probe names / horizons arrive from the command line here. *)
      `Error (false, msg)

let deck_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"DECK" ~doc:"SPICE deck file.")

let probes =
  Arg.(
    value & opt_all string []
    & info [ "p"; "probe" ] ~docv:"NODE" ~doc:"Node to record (repeatable).")

let tstop =
  Arg.(
    value
    & opt (some string) None
    & info [ "tstop" ] ~docv:"TIME"
        ~doc:
          "Simulation horizon, SPICE units accepted (e.g. 5n); defaults to \
           the deck's .tran card, or 10 ns.")

let csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Dump waveforms as CSV.")

let delay =
  Arg.(value & flag & info [ "delay" ] ~doc:"Report 50 %% threshold delays.")

let plot =
  Arg.(value & flag & info [ "plot" ] ~doc:"ASCII-plot each probe.")

let ac =
  Arg.(
    value
    & opt (some string) None
    & info [ "ac" ] ~docv:"VSRC"
        ~doc:
          "Run an AC sweep (100 kHz - 100 GHz) driving the named voltage \
           source; writes ac_<probe>.csv per probe.")

let cmd =
  let doc = "transient-simulate a SPICE deck" in
  Cmd.v
    (Cmd.info "spice_run" ~doc)
    Term.(ret (const run $ deck_file $ probes $ tstop $ csv $ delay $ plot $ ac))

let () = exit (Cmd.eval cmd)
