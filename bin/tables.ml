(* tables: regenerate one paper artefact (table, figure or extension).

     bin/tables.exe --table 6 --trials 20
     bin/tables.exe --figure 2
     bin/tables.exe --ext rlc *)

open Cmdliner

let config_of trials sizes seed jobs =
  { Nontree.Experiment.default with trials; sizes; seed; jobs }

let dispatch config table figure ext svg_dir =
  match (table, figure, ext) with
  | Some t, None, None -> (
      match t with
      | 1 -> print_string (Harness.Runs.table1 config); `Ok ()
      | 2 ->
          print_string
            (Harness.Table.render ~title:"Table 2: LDRG Algorithm Statistics"
               ~baseline:"the MST routing" (Harness.Runs.table2 config));
          `Ok ()
      | 3 ->
          print_string
            (Harness.Table.render ~title:"Table 3: SLDRG Algorithm Statistics"
               ~baseline:"the Iterated-1-Steiner tree"
               (Harness.Runs.table3 config));
          `Ok ()
      | 4 ->
          print_string
            (Harness.Table.render ~title:"Table 4: H1 Heuristic Statistics"
               ~baseline:"the MST routing" (Harness.Runs.table4 config));
          `Ok ()
      | 5 ->
          let h2, h3 = Harness.Runs.table5 config in
          print_string
            (Harness.Table.render ~title:"Table 5a: H2 Heuristic Statistics"
               ~baseline:"the MST routing" h2);
          print_string
            (Harness.Table.render ~title:"Table 5b: H3 Heuristic Statistics"
               ~baseline:"the MST routing" h3);
          `Ok ()
      | 6 ->
          print_string
            (Harness.Table.render
               ~title:"Table 6: Elmore Routing Tree Statistics"
               ~baseline:"the MST routing" (Harness.Runs.table6 config));
          `Ok ()
      | 7 ->
          print_string
            (Harness.Table.render
               ~title:"Table 7: ERT-Based LDRG Algorithm Statistics"
               ~baseline:"the ERT routing" (Harness.Runs.table7 config));
          `Ok ()
      | n -> `Error (false, Printf.sprintf "no table %d in the paper" n))
  | None, Some f, None -> (
      let pick =
        match f with
        | 1 -> Some Harness.Runs.figure1
        | 2 -> Some Harness.Runs.figure2
        | 3 -> Some Harness.Runs.figure3
        | 5 -> Some Harness.Runs.figure5
        | _ -> None
      in
      match pick with
      | None -> `Error (false, Printf.sprintf "no figure %d (1, 2, 3 or 5)" f)
      | Some fig ->
          let result = fig config in
          print_string (Harness.Runs.render_figure result);
          (try Unix.mkdir svg_dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          List.iter (Printf.printf "svg: %s\n")
            (Harness.Runs.save_figure_svgs ~dir:svg_dir result);
          `Ok ())
  | None, None, Some e -> (
      match e with
      | "csorg" -> print_string (Harness.Runs.ext_csorg config); `Ok ()
      | "wsorg" -> print_string (Harness.Runs.ext_wsorg config); `Ok ()
      | "oracle" -> print_string (Harness.Runs.ext_oracle config); `Ok ()
      | "rlc" -> print_string (Harness.Runs.ext_rlc config); `Ok ()
      | "trees" -> print_string (Harness.Runs.ext_trees config); `Ok ()
      | "budget" -> print_string (Harness.Runs.ext_budget config); `Ok ()
      | "prune" -> print_string (Harness.Runs.ext_prune config); `Ok ()
      | "sensitivity" -> print_string (Harness.Runs.ext_sensitivity config); `Ok ()
      | e -> `Error (false, "unknown extension " ^ e))
  | None, None, None ->
      `Error (true, "pick one of --table, --figure or --ext")
  | _ -> `Error (true, "--table, --figure and --ext are mutually exclusive")

(* Everything the manifest needs to reproduce the run: the knobs that
   feed [config_of] plus the fault and cache switches. *)
let manifest_meta ~trials ~sizes ~seed ~jobs ~fault_rate ~no_cache
    ~no_incremental ~matrix_backend =
  Obs.Json.
    [ ("seed", Int seed);
      ("jobs", Int jobs);
      ("trials", Int trials);
      ("sizes", List (List.map (fun s -> Int s) sizes));
      ("fault_rate", Float fault_rate);
      ("cache_enabled", Bool (not no_cache));
      ("incremental_enabled", Bool (not no_incremental));
      ( "matrix_backend",
        String (Numeric.Backend.kind_to_string matrix_backend) ) ]

let write_manifest ~path ~meta =
  let s = Nontree.Oracle.Cache.stats () in
  Obs.Manifest.write ~path
    ~argv:(Array.to_list Sys.argv)
    ~meta
    ~extra:
      [ ( "cache",
          Obs.Json.Obj
            [ ("hits", Obs.Json.Int s.Nontree.Oracle.Cache.hits);
              ("misses", Obs.Json.Int s.Nontree.Oracle.Cache.misses);
              ("entries", Obs.Json.Int s.Nontree.Oracle.Cache.entries);
              ("enabled", Obs.Json.Bool (Nontree.Oracle.Cache.enabled ())) ] )
      ]
    ();
  Printf.eprintf "wrote metrics manifest %s\n%!" path

let run table figure ext trials sizes seed svg_dir fault_rate fault_seed
    jobs no_cache no_incremental matrix_backend metrics_json trace log_level =
  Logs.set_reporter (Logs.format_reporter ~dst:Format.err_formatter ());
  Logs.set_level log_level;
  if jobs < 1 then `Error (false, "--jobs must be >= 1")
  else begin
    if trace || metrics_json <> None then Obs.set_enabled true;
    Numeric.Backend.set_kind matrix_backend;
    Nontree_error.Counters.reset ();
    Nontree.Oracle.Cache.reset ();
    Nontree.Oracle.Cache.set_enabled (not no_cache);
    Nontree.Incremental.set_enabled (not no_incremental);
    if fault_rate > 0.0 then
      (* Derive the fault schedule from the experiment seed unless pinned,
         so --seed alone reproduces the whole run, faults included. *)
      Fault.enable_uniform ~rate:fault_rate
        ~seed:(match fault_seed with Some s -> s | None -> seed + 0x5EED)
    else Fault.disable ();
    let config = config_of trials sizes seed jobs in
    let result =
      try dispatch config table figure ext svg_dir
      with Nontree_error.Error e ->
        `Error (false, "oracle failure: " ^ Nontree_error.to_string e)
    in
    (match Harness.Runs.robustness_summary () with
    | Some line -> Printf.eprintf "%s\n%!" line
    | None -> ());
    (match Nontree.Oracle.Cache.summary () with
    | Some line -> Printf.eprintf "%s\n%!" line
    | None -> ());
    if trace then (
      match Obs.span_summary () with
      | Some s -> Printf.eprintf "%s%!" s
      | None -> ());
    (* Write the manifest even when dispatch errored: a partial run's
       counters are exactly what post-mortems want. *)
    (match metrics_json with
    | Some path ->
        write_manifest ~path
          ~meta:
            (manifest_meta ~trials ~sizes ~seed ~jobs ~fault_rate ~no_cache
               ~no_incremental ~matrix_backend)
    | None -> ());
    result
  end

let table =
  Arg.(
    value
    & opt (some int) None
    & info [ "table" ] ~docv:"N" ~doc:"Regenerate Table $(docv) (1-7).")

let figure =
  Arg.(
    value
    & opt (some int) None
    & info [ "figure" ] ~docv:"N" ~doc:"Regenerate Figure $(docv) (1, 2, 3, 5).")

let ext =
  Arg.(
    value
    & opt (some string) None
    & info [ "ext" ] ~docv:"NAME"
        ~doc:"Extension experiment: csorg, wsorg, oracle, rlc, trees, budget, prune, sensitivity.")

let trials =
  Arg.(value & opt int 50 & info [ "trials" ] ~docv:"N" ~doc:"Trials per size.")

let sizes =
  Arg.(
    value
    & opt (list int) [ 5; 10; 20; 30 ]
    & info [ "sizes" ] ~docv:"CSV" ~doc:"Net sizes.")

let seed =
  Arg.(value & opt int 1994 & info [ "seed" ] ~docv:"N" ~doc:"Experiment seed.")

let svg_dir =
  Arg.(
    value & opt string "figures"
    & info [ "svg-dir" ] ~docv:"DIR" ~doc:"Figure SVG output directory.")

let fault_rate =
  Arg.(
    value & opt float 0.0
    & info [ "fault-rate" ] ~docv:"P"
        ~doc:
          "Inject oracle faults with total probability $(docv) per \
           evaluation (split evenly over singular-stamp, NaN-waveform and \
           stalled-probe faults). 0 disables injection.")

let fault_seed =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:
          "Seed for the fault schedule; defaults to a value derived from \
           --seed.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for per-net fan-out and candidate scoring. 1 \
           (the default) runs the sequential path; any value produces the \
           same table contents — only wall time changes.")

let no_cache =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the oracle memo cache (enabled by default; cached runs \
           print the same bytes, a hit/miss summary goes to stderr).")

let no_incremental =
  Arg.(
    value & flag
    & info [ "no-incremental" ]
        ~doc:
          "Disable incremental (rank-1 Woodbury) candidate scoring in the \
           greedy loops (enabled by default; incremental runs print the \
           same bytes, only factorisation counts change).")

let matrix_backend =
  Arg.(
    value
    & opt
        (enum [ ("sparse", Numeric.Backend.Sparse); ("dense", Numeric.Backend.Dense) ])
        Numeric.Backend.Sparse
    & info [ "matrix-backend" ] ~docv:"KIND"
        ~doc:
          "Linear-algebra backend for MNA factorisations: sparse (CSC + \
           fill-reducing ordering, the default) or dense LU. Either backend \
           prints the same bytes; only wall time and factorisation counters \
           change.")

let metrics_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"PATH"
        ~doc:
          "Write a nontree-obs-v1 run manifest (git describe, argv, run \
           parameters, counters, histograms, trace spans, cache stats) to \
           $(docv). Enables span recording; table output on stdout is \
           unchanged.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record tracing spans and print a per-span summary (call count, \
           total wall time) to stderr after the run.")

let log_level =
  let levels =
    [ ("quiet", None);
      ("error", Some Logs.Error);
      ("warning", Some Logs.Warning);
      ("info", Some Logs.Info);
      ("debug", Some Logs.Debug) ]
  in
  Arg.(
    value
    & opt (enum levels) (Some Logs.Warning)
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Diagnostic verbosity on stderr: quiet, error, warning, info or \
           debug. Retries log at info, degradations at warning.")

let cmd =
  let doc = "regenerate a single table or figure of the paper" in
  Cmd.v
    (Cmd.info "tables" ~doc)
    Term.(
      ret
        (const run $ table $ figure $ ext $ trials $ sizes $ seed $ svg_dir
        $ fault_rate $ fault_seed $ jobs $ no_cache $ no_incremental
        $ matrix_backend $ metrics_json $ trace $ log_level))

let () = exit (Cmd.eval cmd)
