(* obs_check: validate a nontree-obs-v1 run manifest.

     bin/obs_check.exe run.obs.json

   Exit 0 when the manifest parses and every required section has the
   right shape; 1 on a validation failure; 2 on usage/IO errors. Used
   by scripts/check.sh after the observability smoke run. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("obs_check: " ^ s); exit 1) fmt

let get name json =
  match Obs.Json.member name json with
  | Some v -> v
  | None -> fail "missing top-level key %S" name

let expect_string name = function
  | Obs.Json.String s -> s
  | _ -> fail "%S is not a string" name

let expect_obj name = function
  | Obs.Json.Obj kvs -> kvs
  | _ -> fail "%S is not an object" name

let expect_list name = function
  | Obs.Json.List vs -> vs
  | _ -> fail "%S is not a list" name

let expect_int name = function
  | Obs.Json.Int i -> i
  | _ -> fail "%S is not an integer" name

let expect_number name = function
  | Obs.Json.Int i -> float_of_int i
  | Obs.Json.Float f -> f
  | _ -> fail "%S is not a number" name

let check_span i sp =
  let ctx = Printf.sprintf "spans[%d]" i in
  let m k =
    match Obs.Json.member k sp with
    | Some v -> v
    | None -> fail "%s missing %S" ctx k
  in
  ignore (expect_int (ctx ^ ".id") (m "id"));
  (match m "parent" with
  | Obs.Json.Null | Obs.Json.Int _ -> ()
  | _ -> fail "%s.parent is neither null nor an integer" ctx);
  ignore (expect_string (ctx ^ ".name") (m "name"));
  ignore (expect_int (ctx ^ ".domain") (m "domain"));
  let start_s = expect_number (ctx ^ ".start_s") (m "start_s") in
  let dur_s = expect_number (ctx ^ ".dur_s") (m "dur_s") in
  if start_s < 0.0 then fail "%s.start_s is negative" ctx;
  if dur_s < 0.0 then fail "%s.dur_s is negative" ctx

let check_histogram (name, h) =
  let m k =
    match Obs.Json.member k h with
    | Some v -> v
    | None -> fail "histogram %S missing %S" name k
  in
  let buckets = expect_list (name ^ ".buckets") (m "buckets") in
  let counts = expect_list (name ^ ".counts") (m "counts") in
  if List.length counts <> List.length buckets + 1 then
    fail "histogram %S: %d counts for %d buckets (want buckets+1)" name
      (List.length counts) (List.length buckets);
  let count = expect_int (name ^ ".count") (m "count") in
  let sum_of_counts =
    List.fold_left (fun acc c -> acc + expect_int (name ^ ".counts[]") c) 0 counts
  in
  if count <> sum_of_counts then
    fail "histogram %S: count %d but counts sum to %d" name count sum_of_counts;
  ignore (expect_number (name ^ ".sum") (m "sum"))

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: obs_check MANIFEST.json";
        exit 2
  in
  let text =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error e ->
      prerr_endline ("obs_check: " ^ e);
      exit 2
  in
  let json =
    match Obs.Json.of_string text with
    | Ok j -> j
    | Error e -> fail "invalid JSON: %s" e
  in
  let schema = expect_string "schema" (get "schema" json) in
  if schema <> Obs.Manifest.schema_version then
    fail "schema %S, want %S" schema Obs.Manifest.schema_version;
  ignore (expect_string "git" (get "git" json));
  List.iteri
    (fun i v -> ignore (expect_string (Printf.sprintf "argv[%d]" i) v))
    (expect_list "argv" (get "argv" json));
  ignore (expect_obj "meta" (get "meta" json));
  let counters = expect_obj "counters" (get "counters" json) in
  List.iter
    (fun (name, v) ->
      if expect_int ("counters." ^ name) v < 0 then
        fail "counter %S is negative" name)
    counters;
  let histograms = expect_obj "histograms" (get "histograms" json) in
  List.iter check_histogram histograms;
  let spans = expect_list "spans" (get "spans" json) in
  List.iteri check_span spans;
  (match Obs.Json.member "cache" json with
  | None -> ()
  | Some cache ->
      let kvs = expect_obj "cache" cache in
      List.iter
        (fun k ->
          match List.assoc_opt k kvs with
          | Some v -> ignore (expect_int ("cache." ^ k) v)
          | None -> fail "cache missing %S" k)
        [ "hits"; "misses"; "entries" ]);
  Printf.printf "ok: %d counters, %d histograms, %d spans\n"
    (List.length counters) (List.length histograms) (List.length spans)
