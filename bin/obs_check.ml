(* obs_check: validate a nontree-obs-v1 run manifest or a
   nontree-bench-v1 benchmark baseline (dispatched on the "schema"
   field).

     bin/obs_check.exe run.obs.json
     bin/obs_check.exe BENCH_nontree.json

   Exit 0 when the file parses and every required section has the
   right shape; 1 on a validation failure; 2 on usage/IO errors. Used
   by scripts/check.sh after the observability smoke run and on the
   committed benchmark baseline. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("obs_check: " ^ s); exit 1) fmt

let get name json =
  match Obs.Json.member name json with
  | Some v -> v
  | None -> fail "missing top-level key %S" name

let expect_string name = function
  | Obs.Json.String s -> s
  | _ -> fail "%S is not a string" name

let expect_obj name = function
  | Obs.Json.Obj kvs -> kvs
  | _ -> fail "%S is not an object" name

let expect_list name = function
  | Obs.Json.List vs -> vs
  | _ -> fail "%S is not a list" name

let expect_int name = function
  | Obs.Json.Int i -> i
  | _ -> fail "%S is not an integer" name

let expect_number name = function
  | Obs.Json.Int i -> float_of_int i
  | Obs.Json.Float f -> f
  | _ -> fail "%S is not a number" name

let check_span i sp =
  let ctx = Printf.sprintf "spans[%d]" i in
  let m k =
    match Obs.Json.member k sp with
    | Some v -> v
    | None -> fail "%s missing %S" ctx k
  in
  ignore (expect_int (ctx ^ ".id") (m "id"));
  (match m "parent" with
  | Obs.Json.Null | Obs.Json.Int _ -> ()
  | _ -> fail "%s.parent is neither null nor an integer" ctx);
  ignore (expect_string (ctx ^ ".name") (m "name"));
  ignore (expect_int (ctx ^ ".domain") (m "domain"));
  let start_s = expect_number (ctx ^ ".start_s") (m "start_s") in
  let dur_s = expect_number (ctx ^ ".dur_s") (m "dur_s") in
  if start_s < 0.0 then fail "%s.start_s is negative" ctx;
  if dur_s < 0.0 then fail "%s.dur_s is negative" ctx

let check_histogram (name, h) =
  let m k =
    match Obs.Json.member k h with
    | Some v -> v
    | None -> fail "histogram %S missing %S" name k
  in
  let buckets = expect_list (name ^ ".buckets") (m "buckets") in
  let counts = expect_list (name ^ ".counts") (m "counts") in
  if List.length counts <> List.length buckets + 1 then
    fail "histogram %S: %d counts for %d buckets (want buckets+1)" name
      (List.length counts) (List.length buckets);
  let count = expect_int (name ^ ".count") (m "count") in
  let sum_of_counts =
    List.fold_left (fun acc c -> acc + expect_int (name ^ ".counts[]") c) 0 counts
  in
  if count <> sum_of_counts then
    fail "histogram %S: count %d but counts sum to %d" name count sum_of_counts;
  ignore (expect_number (name ^ ".sum") (m "sum"))

let bench_schema_version = "nontree-bench-v1"

let check_bench_section i s =
  let ctx = Printf.sprintf "sections[%d]" i in
  let m k =
    match Obs.Json.member k s with
    | Some v -> v
    | None -> fail "%s missing %S" ctx k
  in
  ignore (expect_string (ctx ^ ".name") (m "name"));
  if expect_number (ctx ^ ".wall_s") (m "wall_s") < 0.0 then
    fail "%s.wall_s is negative" ctx;
  List.iter
    (fun k ->
      if expect_int (ctx ^ "." ^ k) (m k) < 0 then
        fail "%s.%s is negative" ctx k)
    [ "oracle_calls"; "cache_hits"; "cache_misses" ];
  let rate = expect_number (ctx ^ ".cache_hit_rate") (m "cache_hit_rate") in
  if rate < 0.0 || rate > 1.0 then fail "%s.cache_hit_rate not in [0,1]" ctx

let check_bench json =
  List.iter
    (fun k -> ignore (expect_int k (get k json)))
    [ "jobs"; "seed"; "trials" ];
  (match get "cache_enabled" json with
  | Obs.Json.Bool _ -> ()
  | _ -> fail "\"cache_enabled\" is not a boolean");
  let backend = expect_string "matrix_backend" (get "matrix_backend" json) in
  if backend <> "sparse" && backend <> "dense" then
    fail "matrix_backend %S, want \"sparse\" or \"dense\"" backend;
  List.iteri
    (fun i v -> ignore (expect_int (Printf.sprintf "sizes[%d]" i) v))
    (expect_list "sizes" (get "sizes" json));
  if expect_number "total_wall_s" (get "total_wall_s" json) < 0.0 then
    fail "total_wall_s is negative";
  let inc = get "incremental" json in
  ignore (expect_obj "incremental" inc);
  (match Obs.Json.member "enabled" inc with
  | Some (Obs.Json.Bool _) -> ()
  | _ -> fail "incremental.enabled is not a boolean");
  List.iter
    (fun k ->
      match Obs.Json.member k inc with
      | Some v ->
          if expect_int ("incremental." ^ k) v < 0 then
            fail "incremental.%s is negative" k
      | None -> fail "incremental missing %S" k)
    [ "rank1_updates"; "hits"; "fallbacks"; "lu_factorizations";
      "sparse_factorizations" ];
  (match Obs.Json.member "backend_comparison" json with
  | None -> ()
  | Some cmp ->
      ignore (expect_obj "backend_comparison" cmp);
      let m k =
        match Obs.Json.member k cmp with
        | Some v -> v
        | None -> fail "backend_comparison missing %S" k
      in
      ignore (expect_string "backend_comparison.model" (m "model"));
      List.iter
        (fun k ->
          if expect_int ("backend_comparison." ^ k) (m k) < 0 then
            fail "backend_comparison.%s is negative" k)
        [ "net_size"; "nets"; "dense_lu_factorizations";
          "sparse_factorizations" ];
      List.iter
        (fun k ->
          if expect_number ("backend_comparison." ^ k) (m k) < 0.0 then
            fail "backend_comparison.%s is negative" k)
        [ "dense_wall_s"; "sparse_wall_s"; "speedup" ]);
  let sections = expect_list "sections" (get "sections" json) in
  List.iteri check_bench_section sections;
  Printf.printf "ok: bench baseline, %d sections, backend %s\n"
    (List.length sections) backend

let check_manifest json =
  ignore (expect_string "git" (get "git" json));
  List.iteri
    (fun i v -> ignore (expect_string (Printf.sprintf "argv[%d]" i) v))
    (expect_list "argv" (get "argv" json));
  ignore (expect_obj "meta" (get "meta" json));
  let counters = expect_obj "counters" (get "counters" json) in
  List.iter
    (fun (name, v) ->
      if expect_int ("counters." ^ name) v < 0 then
        fail "counter %S is negative" name)
    counters;
  let histograms = expect_obj "histograms" (get "histograms" json) in
  List.iter check_histogram histograms;
  let spans = expect_list "spans" (get "spans" json) in
  List.iteri check_span spans;
  (match Obs.Json.member "cache" json with
  | None -> ()
  | Some cache ->
      let kvs = expect_obj "cache" cache in
      List.iter
        (fun k ->
          match List.assoc_opt k kvs with
          | Some v -> ignore (expect_int ("cache." ^ k) v)
          | None -> fail "cache missing %S" k)
        [ "hits"; "misses"; "entries" ]);
  Printf.printf "ok: %d counters, %d histograms, %d spans\n"
    (List.length counters) (List.length histograms) (List.length spans)

let () =
  let path =
    match Sys.argv with
    | [| _; p |] -> p
    | _ ->
        prerr_endline "usage: obs_check MANIFEST.json";
        exit 2
  in
  let text =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error e ->
      prerr_endline ("obs_check: " ^ e);
      exit 2
  in
  let json =
    match Obs.Json.of_string text with
    | Ok j -> j
    | Error e -> fail "invalid JSON: %s" e
  in
  let schema = expect_string "schema" (get "schema" json) in
  if schema = Obs.Manifest.schema_version then check_manifest json
  else if schema = bench_schema_version then check_bench json
  else
    fail "schema %S, want %S or %S" schema Obs.Manifest.schema_version
      bench_schema_version
