(* compare: run every routing construction on one net, side by side.

     bin/netgen.exe --pins 15 --seed 4 > net.txt
     bin/compare.exe net.txt
     bin/compare.exe net.txt --model spice *)

open Cmdliner

let algorithms tech model net =
  let mst = Routing.mst_of_net net in
  [ ("MST", mst);
    ("PD (c=0.25)", Trees.Pd.construct ~c:0.25 net);
    ("PD (c=0.75)", Trees.Pd.construct ~c:0.75 net);
    ("BRBC (eps=0.5)", Trees.Brbc.construct ~epsilon:0.5 net);
    ("1-Steiner", Steiner.Iterated_1steiner.construct net);
    ("ERT", Ert.construct ~tech net);
    ("H2", fst (Nontree.Heuristics.h2 ~tech mst));
    ("H3", fst (Nontree.Heuristics.h3 ~tech mst));
    ("H1", (Nontree.Heuristics.h1 ~model ~tech mst).Nontree.Ldrg.final);
    ("LDRG", (Nontree.Ldrg.run ~model ~tech mst).Nontree.Ldrg.final);
    ("SLDRG", (Nontree.Sldrg.run ~model ~tech net).Nontree.Ldrg.final);
    ( "ERT+LDRG",
      (Nontree.Ldrg.run ~model ~tech (Ert.construct ~tech net))
        .Nontree.Ldrg.final ) ]

let finish_observability ~model_name ~matrix_backend ~metrics_json ~trace =
  if trace then (
    match Obs.span_summary () with
    | Some s -> Printf.eprintf "%s%!" s
    | None -> ());
  match metrics_json with
  | None -> ()
  | Some path ->
      Obs.Manifest.write ~path
        ~argv:(Array.to_list Sys.argv)
        ~meta:
          [ ("model", Obs.Json.String model_name);
            ( "matrix_backend",
              Obs.Json.String (Numeric.Backend.kind_to_string matrix_backend)
            ) ]
        ();
      Printf.eprintf "wrote metrics manifest %s\n%!" path

let run net_file model_name matrix_backend metrics_json trace =
  if trace || metrics_json <> None then Obs.set_enabled true;
  Numeric.Backend.set_kind matrix_backend;
  match Geom.Netfile.read net_file with
  | Error e -> `Error (false, net_file ^ ": " ^ e)
  | Ok net ->
      let tech = Circuit.Technology.table1 in
      let search, eval =
        match model_name with
        | "moment" -> (Delay.Model.First_moment, Delay.Model.First_moment)
        | "spice" ->
            ( Delay.Model.Spice Delay.Model.fast_spice,
              Delay.Model.Spice Delay.Model.default_spice )
        | _ -> (Delay.Model.First_moment, Delay.Model.Spice Delay.Model.fast_spice)
      in
      let rows = algorithms tech search net in
      let mst = List.assoc "MST" rows in
      let base_delay = Delay.Model.max_delay eval ~tech mst in
      let base_cost = Routing.cost mst in
      Printf.printf
        "net %s: %d pins; delays via %s; normalised to MST\n\n" net_file
        (Geom.Net.size net) (Delay.Model.name eval);
      Printf.printf "  %-16s %9s %7s %9s %7s %8s %s\n" "algorithm" "delay/ns"
        "ratio" "wire/mm" "ratio" "radius" "kind";
      List.iter
        (fun (name, r) ->
          let d = Delay.Model.max_delay eval ~tech r in
          Printf.printf "  %-16s %9.3f %7.3f %9.2f %7.3f %8.2f %s\n" name
            (d *. 1e9) (d /. base_delay)
            (Routing.cost r /. 1e3)
            (Routing.cost r /. base_cost)
            (Trees.Metrics.radius r /. 1e3)
            (if Routing.is_tree r then "tree" else "graph"))
        rows;
      finish_observability ~model_name ~matrix_backend ~metrics_json ~trace;
      `Ok ()

let net_file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"NET" ~doc:"Net file (see bin/netgen.exe).")

let model =
  Arg.(
    value & opt string "mixed"
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:
          "moment (all first-moment), spice (SPICE search and eval), or \
           mixed (first-moment search, SPICE eval; default).")

let matrix_backend =
  Arg.(
    value
    & opt
        (enum [ ("sparse", Numeric.Backend.Sparse); ("dense", Numeric.Backend.Dense) ])
        Numeric.Backend.Sparse
    & info [ "matrix-backend" ] ~docv:"KIND"
        ~doc:
          "Linear-algebra backend for MNA factorisations: sparse (the \
           default) or dense. Either prints the same bytes.")

let metrics_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"PATH"
        ~doc:
          "Write a nontree-obs-v1 run manifest (counters, histograms, trace \
           spans) to $(docv). Stdout is unchanged.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record tracing spans and print a per-span summary to stderr after \
           the run.")

let cmd =
  let doc = "compare all routing constructions on one net" in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(
      ret (const run $ net_file $ model $ matrix_backend $ metrics_json $ trace))

let () = exit (Cmd.eval cmd)
